//! # adc-bist
//!
//! Umbrella crate for the reproduction of R. de Vries, T. Zwemstra,
//! E.M.J.G. Bruls and P.P.L. Regtien, *Built-In Self-Test Methodology
//! for A/D Converters*, ED&TC/DATE 1997 — re-exporting the workspace
//! members under one roof for the examples and integration tests.
//!
//! * [`dsp`] — FFT/spectral/statistics substrate.
//! * [`adc`] — behavioural converter models, stimuli, noise, metrics.
//! * [`rtl`] — cycle-accurate on-chip BIST circuitry and area model.
//! * [`core`] — the BIST method, error theory and harnesses.
//! * [`mc`] — Monte-Carlo batches and experiment drivers.
//! * [`serve`] — the resident fleet-screening service (backpressured
//!   ingest, streamed verdicts, live telemetry).
//!
//! See the repository README for the architecture overview and
//! EXPERIMENTS.md for paper-vs-reproduced results.
//!
//! ## Example
//!
//! ```
//! use adc_bist::adc::flash::FlashConfig;
//! use adc_bist::adc::spec::LinearitySpec;
//! use adc_bist::adc::types::Resolution;
//! use adc_bist::core::config::BistConfig;
//! use adc_bist::core::screener::{Screener, Workload};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), adc_bist::core::limits::PlanLimitsError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let device = FlashConfig::paper_device().sample(&mut rng);
//! let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
//!     .counter_bits(4)
//!     .build()?;
//! let mut screener = Screener::new(Workload::static_ramp(config));
//! let verdict = screener.screen_one(&device, &mut rng);
//! let outcome = screener.take_static_outcome(&verdict).expect("static workload");
//! println!("{outcome}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use bist_adc as adc;
pub use bist_core as core;
pub use bist_dsp as dsp;
pub use bist_mc as mc;
pub use bist_rtl as rtl;
pub use bist_serve as serve;
