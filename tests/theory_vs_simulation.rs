//! Integration: the §3 closed-form theory, the Monte-Carlo engine and
//! the full counting simulation must tell the same story — the pillars
//! behind Tables 1–2 and Figure 7.

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::analytic::{acceptance_probability, WidthDistribution};
use bist_core::config::BistConfig;
use bist_core::limits::{plan_delta_s, CountLimits};
use bist_core::yield_model::YieldModel;
use bist_mc::batch::Batch;
use bist_mc::experiment::Experiment;
use bist_mc::parallel::run_parallel;
use bist_mc::tables::{analytic_point, JUDGED_CODES};

#[test]
fn analytic_type_i_within_mc_interval_at_paper_point() {
    let spec = LinearitySpec::paper_stringent();
    let config = BistConfig::builder(Resolution::SIX_BIT, spec)
        .counter_bits(4)
        .build()
        .expect("paper operating point");
    let theory = analytic_point(&spec, 0.21, config.delta_s().0, JUDGED_CODES);
    let result = run_parallel(
        &Experiment::new(Batch::paper_simulation(101, 3000), config),
        0,
    );
    let (lo, hi) = result.type_i().wilson(0.99).expect("non-empty");
    assert!(
        theory.type_i >= lo - 0.01 && theory.type_i <= hi + 0.01,
        "theory {} vs MC [{lo}, {hi}]",
        theory.type_i
    );
    let (lo, hi) = result.type_ii().wilson(0.99).expect("non-empty");
    assert!(
        theory.type_ii >= lo - 0.01 && theory.type_ii <= hi + 0.01,
        "theory {} vs MC [{lo}, {hi}]",
        theory.type_ii
    );
}

#[test]
fn physical_flash_matches_iid_theory_shape() {
    // The flash ladder's widths are correlated (ρ = −1/(N−1)), which the
    // paper argues is negligible at 6 bits: the physical batch must land
    // near the iid theory.
    let spec = LinearitySpec::paper_stringent();
    let config = BistConfig::builder(Resolution::SIX_BIT, spec)
        .counter_bits(5)
        .build()
        .expect("paper operating point");
    let theory = analytic_point(&spec, 0.21, config.delta_s().0, JUDGED_CODES);
    let mut batch = Batch::paper_measurement(202);
    batch.size = 3000;
    let result = run_parallel(&Experiment::new(batch, config), 0);
    let mc = result.type_i().point().expect("non-empty");
    assert!(
        (mc - theory.type_i).abs() < 0.04,
        "flash MC {mc} vs theory {}",
        theory.type_i
    );
}

#[test]
fn yield_model_matches_batches() {
    let model = YieldModel::paper_device();
    let spec = LinearitySpec::paper_stringent();
    let theory = model.p_device_good(&spec);
    let batch = Batch::paper_simulation(303, 5000);
    let good = batch.devices().filter(|tf| spec.classify(tf).good).count();
    let mc = good as f64 / batch.size as f64;
    assert!((mc - theory).abs() < 0.03, "MC {mc} vs theory {theory}");
}

#[test]
fn acceptance_trapezoid_matches_counting_simulation() {
    // End-to-end: place a single synthetic code width at ΔV, run the
    // real sampling+counting pipeline over many ramp phases, and compare
    // the acceptance frequency with h(ΔV, Δs).
    let spec = LinearitySpec::paper_stringent();
    let ds = plan_delta_s(&spec, 4).0;
    let limits = CountLimits::from_spec(&spec, ds).expect("paper operating point");
    for dv in [0.49, 0.53, 0.58, 1.0, 1.42, 1.47, 1.54] {
        let mut accepted = 0u32;
        let phases = 2000;
        for k in 0..phases {
            let phase = (k as f64 + 0.5) / phases as f64;
            // Transitions at `phase·Δs` and `phase·Δs + ΔV` (in LSB);
            // count samples at integer multiples of Δs falling between.
            let t0 = phase * ds;
            let t1 = t0 + dv;
            let first = (t0 / ds).ceil() as i64;
            let last = ((t1 / ds).ceil() as i64) - 1;
            let count = (last - first + 1).max(0) as u64;
            if (limits.i_min()..=limits.i_max()).contains(&count) {
                accepted += 1;
            }
        }
        let empirical = f64::from(accepted) / f64::from(phases);
        let h = acceptance_probability(dv, ds, limits.i_min(), limits.i_max());
        assert!(
            (empirical - h).abs() < 0.01,
            "ΔV {dv}: empirical {empirical} vs h {h}"
        );
    }
}

#[test]
fn width_sigma_sweep_reproduces_paper_band() {
    // The paper quotes σ between 0.16 and 0.21 LSB; across that band the
    // stringent-spec yield moves from ~69 % down to ~33 %.
    let spec = LinearitySpec::paper_stringent();
    let lo = YieldModel::new(WidthDistribution::new(1.0, 0.16), 64).p_device_good(&spec);
    let hi = YieldModel::new(WidthDistribution::new(1.0, 0.21), 64).p_device_good(&spec);
    assert!(lo > 0.6, "σ=0.16 yield {lo}");
    assert!((0.28..0.38).contains(&hi), "σ=0.21 yield {hi}");
}
