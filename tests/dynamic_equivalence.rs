//! Integration: the dynamic verdict path across all three layers — the
//! behavioural Goertzel bank (`bist-dsp`), the streaming subsystem and
//! backend seam (`bist-core`) and the fixed-point datapath
//! (`bist-rtl`) — must agree on real converter captures.
//!
//! Two contracts are pinned, property-based over random devices,
//! resolutions, mismatch levels and coherent-bin choices:
//!
//! * **Quantisation bound** — the fixed-point `DynBistTop` bin powers
//!   track the `f64` Goertzel bank to better than 1e-8 relative
//!   (carrier-referenced), i.e. micro-dB on every metric: the Q.30
//!   datapath is precise enough that no realistic limit can sit inside
//!   its error band.
//! * **Decision exactness** — judged through the backend seam, the
//!   behavioural and RTL verdicts reach identical per-limit decisions,
//!   sample counts and completeness on bit-identical code streams.

use bist_adc::flash::FlashConfig;
use bist_adc::noise::NoiseConfig;
use bist_adc::stream::CodeStream;
use bist_adc::transfer::Adc as _;
use bist_adc::types::{Resolution, Volts};
use bist_core::backend::{BehavioralBackend, RtlBackend};
use bist_core::dynamic::{plan_sine, DynScratch, DynamicConfig};
use bist_core::screener::{Screener, Workload};
use bist_dsp::goertzel::GoertzelBank;
use bist_rtl::dyn_top::{DynBistTop, DynBistTopConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A mismatched flash device at the given resolution (0.1 V/LSB, like
/// the seed's 6-bit vehicle).
fn flash_device(bits: u32, sigma: f64, seed: u64) -> bist_adc::transfer::TransferFunction {
    let resolution = Resolution::new(bits).expect("test resolutions are valid");
    let high = Volts(0.1 * resolution.code_count() as f64);
    FlashConfig::new(resolution, Volts(0.0), high)
        .with_width_sigma_lsb(sigma)
        .sample(&mut StdRng::seed_from_u64(seed))
        .transfer()
        .expect("flash states its transfer")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fixed-point quantisation bound: on the identical code record,
    /// every power the RTL datapath reports stays within 1e-8
    /// (carrier-referenced) of the float bank, and the exact integer
    /// side channels match the float moments to representation error.
    #[test]
    fn fixed_point_powers_track_float_bank(
        bits in 5u32..=8,
        sigma_milli in 0u32..300,
        cycles_ix in 0usize..3,
        seed in 0u64..1000,
    ) {
        let cycles = [1021u32, 997, 509][cycles_ix];
        let n = 4096usize;
        let adc = flash_device(bits, sigma_milli as f64 / 1000.0, seed);
        let config = DynamicConfig::new(Resolution::new(bits).unwrap(), n, cycles)
            .unwrap()
            .with_overdrive(0.0);
        let (sine, sampling) = plan_sine(&adc, &config);
        let codes: Vec<_> = CodeStream::noiseless(&adc, &sine, sampling).collect();

        // Fixed-point datapath on the raw codes.
        let mut top = DynBistTop::new(DynBistTopConfig {
            adc_bits: bits,
            record_len: n,
            fundamental_bin: cycles as usize,
            harmonics: 5,
        });
        for &c in &codes {
            top.tick(u64::from(c.0));
        }
        for _ in 0..DynBistTop::DRAIN_TICKS {
            top.drain_tick();
        }
        let report = top.report();
        prop_assert!(report.complete);

        // Float bank on the same samples, in the RTL's half-LSB units.
        let mut bank = GoertzelBank::new(cycles as usize, n, 5);
        let offset = 1i64 << bits;
        for &c in &codes {
            bank.push((2 * i64::from(c.0) + 1 - offset) as f64);
        }
        let p = bank.powers();

        let tol = 1e-8 * p.carrier;
        prop_assert!(
            (report.carrier_power - p.carrier).abs() < tol,
            "carrier {} (rtl) vs {} (bank), bits {bits} σ 0.{sigma_milli:03} bin {cycles}",
            report.carrier_power, p.carrier
        );
        prop_assert!(
            (report.harmonic_power_by_order - p.harmonics_by_order).abs() < tol,
            "harmonics {} (rtl) vs {} (bank)",
            report.harmonic_power_by_order, p.harmonics_by_order
        );
        prop_assert!(
            (report.harmonic_power_distinct - p.harmonics_distinct).abs() < tol
        );
        // The integer side channels are exact; the float moments only
        // carry representation error.
        let mean = report.sum_half_lsb as f64 / n as f64;
        prop_assert!((mean * mean - p.dc).abs() < 1e-9 * (1.0 + p.dc));
        let total = report.sum_sq_half_lsb2 as f64 / n as f64;
        prop_assert!((total - p.total).abs() < 1e-9 * (1.0 + p.total));
    }

    /// Backend seam: behavioural and RTL dynamic verdicts reach the
    /// identical decisions (and micro-dB-close metrics) on random
    /// devices through the full stimulus→stream→verdict pipeline,
    /// noise included.
    #[test]
    fn backends_reach_identical_decisions(
        bits in 5u32..=8,
        sigma_milli in 0u32..300,
        noise_milli in 0u32..5,
        seed in 0u64..1000,
    ) {
        let adc = flash_device(bits, sigma_milli as f64 / 1000.0, seed);
        let config = DynamicConfig::new(Resolution::new(bits).unwrap(), 4096, 1021)
            .unwrap()
            .with_overdrive(0.0);
        let noise = NoiseConfig::noiseless().with_input_noise(noise_milli as f64 / 1000.0);
        let workload = Workload::dynamic_sine(config).with_noise(noise);
        let behavioral = Screener::new(workload)
            .screen_one(&adc, &mut StdRng::seed_from_u64(seed ^ 0xABCD))
            .as_dynamic()
            .expect("dynamic workload")
            .verdict;
        let rtl = Screener::new(workload)
            .backend(RtlBackend::new())
            .screen_one(&adc, &mut StdRng::seed_from_u64(seed ^ 0xABCD))
            .as_dynamic()
            .expect("dynamic workload")
            .verdict;
        prop_assert_eq!(behavioral.checks, rtl.checks);
        prop_assert_eq!(behavioral.samples, rtl.samples);
        prop_assert_eq!(behavioral.expected_samples, rtl.expected_samples);
        // Metric error bounds: a carrier-referenced power error ε ≈ 1e-9
        // amplifies to ≈ 4.3·ε·10^(SINAD/10) dB on SINAD (the
        // noise-and-distortion band is the small difference of large
        // numbers), ~1e-4 dB at the highest SINAD this sweep produces —
        // still micro-dB against any realistic limit placement.
        prop_assert!(
            (behavioral.sinad_db - rtl.sinad_db).abs() < 1e-3,
            "sinad {} vs {}", behavioral.sinad_db, rtl.sinad_db
        );
        prop_assert!(
            (behavioral.thd_db - rtl.thd_db).abs() < 5e-2,
            "thd {} vs {}", behavioral.thd_db, rtl.thd_db
        );
        prop_assert!(
            (behavioral.noise_power_lsb2 - rtl.noise_power_lsb2).abs()
                < 1e-4 * (1.0 + behavioral.noise_power_lsb2),
            "noise {} vs {}", behavioral.noise_power_lsb2, rtl.noise_power_lsb2
        );
    }
}

/// The truncated-record contract holds identically across the seam: a
/// stream that ends early is INCOMPLETE (never judged valid) on both
/// backends, with matching sample counts.
#[test]
fn truncated_records_incomplete_on_both_backends() {
    use bist_core::backend::Backend;
    let adc = flash_device(6, 0.16, 7);
    let config = DynamicConfig::paper_default();
    let (sine, sampling) = plan_sine(&adc, &config);
    let mut scratch = DynScratch::new();
    for keep in [0usize, 1, 4095] {
        let b = BehavioralBackend.process_dyn(
            &config,
            CodeStream::noiseless(&adc, &sine, sampling).take(keep),
            &mut scratch,
        );
        let r = RtlBackend::new().process_dyn(
            &config,
            CodeStream::noiseless(&adc, &sine, sampling).take(keep),
            &mut scratch,
        );
        assert!(!b.complete() && !b.accepted(), "keep {keep}: {b}");
        assert_eq!(b.checks, r.checks, "keep {keep}");
        assert_eq!(b.samples, keep as u64);
        assert_eq!(r.samples, keep as u64);
    }
}
