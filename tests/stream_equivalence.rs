//! Integration: the streaming acquisition engine is observationally
//! identical to the seed's materialised path.
//!
//! The refactor fused stimulus→code→verdict into a single pass
//! (`CodeStream` + streaming accumulators); these properties pin the
//! equivalence across random devices, noise configurations and ramp
//! slope errors:
//!
//! * per-device **verdicts** and full per-code/per-check detail,
//! * batch **confusion matrices**,
//! * code **histograms** (the reference/conventional harness path).

use bist_adc::histogram::CodeHistogram;
use bist_adc::noise::NoiseConfig;
use bist_adc::sampler::{acquire_noisy, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::spec::LinearitySpec;
use bist_adc::stream::CodeStream;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_core::config::BistConfig;
use bist_core::decision::ConfusionMatrix;
use bist_core::harness::{bist_from_capture, process_code_stream, Scratch};
use bist_core::limits::slope_for_delta_s;
use bist_mc::batch::Batch;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1.0e6;

/// The harness-style sweep plan for a batch device (0.1 V/LSB, range
/// 0–6.4 V): start 2 LSB low, overshoot the top.
fn plan(config: &BistConfig, slope_error: f64) -> (Ramp, SamplingConfig) {
    let slope = slope_for_delta_s(config.delta_s(), FS, 0.1);
    let samples = ((6.4 + 1.4) / slope * FS) as usize;
    (
        Ramp::new(Volts(-0.2), slope).with_slope_error(slope_error),
        SamplingConfig::new(FS, samples),
    )
}

fn config(bits: u32, deglitch: bool) -> BistConfig {
    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(bits)
        .deglitch(deglitch)
        .build()
        .expect("paper operating points are valid")
}

fn noise_config(level: u8) -> NoiseConfig {
    match level {
        0 => NoiseConfig::noiseless(),
        1 => NoiseConfig::noiseless().with_input_noise(0.002),
        2 => NoiseConfig::noiseless().with_transition_noise(0.004),
        _ => NoiseConfig::noiseless()
            .with_input_noise(0.001)
            .with_transition_noise(0.002)
            .with_jitter(1e-7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-device: the fused single-pass engine and the seed's
    /// capture-then-process path agree on the verdict AND on every
    /// per-code / per-check detail, from the same RNG state.
    #[test]
    fn streaming_equals_materialized_per_device(
        seed in 0u64..1_000_000,
        bits in 4u32..=7,
        noise_level in 0u8..4,
        deglitch in any::<bool>(),
        slope_error in -0.03f64..0.03,
    ) {
        let cfg = config(bits, deglitch);
        let noise = noise_config(noise_level);
        let tf = Batch::paper_simulation(seed, 1).device(0);
        let (ramp, sampling) = plan(&cfg, slope_error);

        let mut rng_m = StdRng::seed_from_u64(seed ^ 0xfeed);
        let capture = acquire_noisy(&tf, &ramp, sampling, &noise, &mut rng_m);
        let materialized = bist_from_capture(&cfg, &capture);

        let mut rng_s = StdRng::seed_from_u64(seed ^ 0xfeed);
        let mut scratch = Scratch::new();
        let verdict = process_code_stream(
            &cfg,
            CodeStream::noisy(&tf, &ramp, sampling, &noise, &mut rng_s),
            &mut scratch,
        );

        prop_assert_eq!(verdict.accepted(), materialized.accepted());
        prop_assert_eq!(verdict.complete(), materialized.complete());
        prop_assert_eq!(verdict.codes_judged as usize, materialized.monitor.codes.len());
        prop_assert_eq!(verdict.dnl_failures, materialized.monitor.dnl_failures);
        prop_assert_eq!(verdict.inl_failures, materialized.monitor.inl_failures);
        prop_assert_eq!(verdict.functional_mismatches, materialized.functional.mismatches);
        prop_assert_eq!(verdict.samples as usize, capture.codes().len());
        prop_assert_eq!(scratch.monitor_codes(), &materialized.monitor.codes[..]);
        prop_assert_eq!(scratch.checks(), &materialized.functional.checks[..]);
    }

    /// Batch level: screening a whole batch through the streaming
    /// engine yields the identical confusion matrix to the materialised
    /// path, device for device.
    #[test]
    fn streaming_equals_materialized_confusion_matrix(
        seed in 0u64..1_000_000,
        bits in 4u32..=7,
        noise_level in 0u8..4,
        slope_error in -0.03f64..0.03,
    ) {
        let cfg = config(bits, false);
        let noise = noise_config(noise_level);
        let spec = *cfg.spec();
        let batch = Batch::paper_simulation(seed, 6);
        let (ramp, sampling) = plan(&cfg, slope_error);

        let mut streamed = ConfusionMatrix::new();
        let mut materialized = ConfusionMatrix::new();
        let mut scratch = Scratch::new();
        for i in 0..batch.size {
            let tf = batch.device(i);
            let truth = spec.classify(&tf).good;

            let mut rng = batch.device_rng(i);
            let verdict = process_code_stream(
                &cfg,
                CodeStream::noisy(&tf, &ramp, sampling, &noise, &mut rng),
                &mut scratch,
            );
            streamed.record(truth, verdict.accepted());

            let mut rng = batch.device_rng(i);
            let capture = acquire_noisy(&tf, &ramp, sampling, &noise, &mut rng);
            materialized.record(truth, bist_from_capture(&cfg, &capture).accepted());
        }
        prop_assert_eq!(streamed, materialized);
    }

    /// Histogram path: accumulating a `CodeHistogram` directly from the
    /// stream (as `reference_measurement` now does) equals building it
    /// from a materialised capture of the same sweep.
    #[test]
    fn streaming_equals_materialized_histogram(
        seed in 0u64..1_000_000,
        noise_level in 0u8..4,
        samples_per_code in 20u32..200,
    ) {
        let noise = noise_config(noise_level);
        let tf = Batch::paper_simulation(seed, 1).device(0);
        let slope = 0.1 / samples_per_code as f64 * FS;
        let ramp = Ramp::new(Volts(-0.2), slope);
        let sampling = SamplingConfig::new(FS, ((6.4 + 1.4) / slope * FS) as usize);

        let mut rng_s = StdRng::seed_from_u64(seed);
        let streamed = CodeHistogram::from_codes(
            Resolution::SIX_BIT,
            CodeStream::noisy(&tf, &ramp, sampling, &noise, &mut rng_s),
        );
        let mut rng_m = StdRng::seed_from_u64(seed);
        let capture = acquire_noisy(&tf, &ramp, sampling, &noise, &mut rng_m);
        let materialized = CodeHistogram::from_capture(Resolution::SIX_BIT, &capture);
        prop_assert_eq!(streamed, materialized);
    }
}

/// Non-property pin: the stream view and the capture view of one sweep
/// are literally the same codes (the capture is just `collect()`).
#[test]
fn capture_is_collected_stream() {
    let tf = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
    let ramp = Ramp::new(Volts(-0.1), 1.0);
    let sampling = SamplingConfig::new(1e3, 7000);
    let collected: Vec<_> = CodeStream::noiseless(&tf, &ramp, sampling).collect();
    let capture = CodeStream::noiseless(&tf, &ramp, sampling).capture();
    assert_eq!(capture.codes(), &collected[..]);
}
