//! Integration: full-pipeline scenarios spanning every crate — devices,
//! stimuli, noise, BIST, histogram baselines and fault coverage.

use bist_adc::faults::{FaultyAdc, OutputFault};
use bist_adc::flash::FlashConfig;
use bist_adc::noise::NoiseConfig;
use bist_adc::sar::SarConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::Adc;
use bist_adc::types::{Code, Resolution, Volts};
use bist_core::config::BistConfig;
use bist_core::harness::{conventional_test, reference_measurement, BistOutcome};
use bist_core::screener::{Screener, Workload};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The retired free-function entry, expressed over the `Screener`
/// front door these scenarios now pin.
fn run_static_bist<A: Adc + ?Sized, R: RngCore + ?Sized>(
    adc: &A,
    config: &BistConfig,
    noise: &NoiseConfig,
    slope_error: f64,
    rng: &mut R,
) -> BistOutcome {
    let mut screener = Screener::new(
        Workload::static_ramp(*config)
            .with_noise(*noise)
            .with_slope_error(slope_error),
    );
    let verdict = screener.screen_one(adc, rng);
    screener
        .take_static_outcome(&verdict)
        .expect("static workload")
}

fn config(bits: u32) -> BistConfig {
    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(bits)
        .build()
        .expect("paper operating point")
}

#[test]
fn bist_screens_flash_batch_consistently_with_truth() {
    let mut rng = StdRng::seed_from_u64(1);
    let spec = LinearitySpec::paper_stringent();
    let cfg = config(7);
    let mut correct = 0;
    let total = 60;
    for _ in 0..total {
        let adc = FlashConfig::paper_device().sample(&mut rng);
        let truth = spec
            .classify(&adc.transfer().expect("flash states transfer"))
            .good;
        let outcome = run_static_bist(&adc, &cfg, &NoiseConfig::noiseless(), 0.0, &mut rng);
        if outcome.accepted() == truth {
            correct += 1;
        }
    }
    assert!(
        correct >= total - 4,
        "only {correct}/{total} correct at 7 bits"
    );
}

#[test]
fn bist_works_on_sar_architecture_too() {
    // The method only watches output bits — it must screen a SAR
    // converter exactly the same way.
    let mut rng = StdRng::seed_from_u64(5);
    let spec = LinearitySpec::paper_actual();
    let cfg = BistConfig::builder(Resolution::SIX_BIT, spec)
        .counter_bits(6)
        .build()
        .expect("valid configuration");
    let mut agree = 0;
    let total = 25;
    for _ in 0..total {
        let sar = SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_unit_cap_sigma(0.08)
            .sample(&mut rng);
        let truth = spec
            .classify(&sar.transfer().expect("sar characterises"))
            .good;
        let outcome = run_static_bist(&sar, &cfg, &NoiseConfig::noiseless(), 0.0, &mut rng);
        if outcome.accepted() == truth {
            agree += 1;
        }
    }
    assert!(agree >= total - 3, "only {agree}/{total} agree on SAR");
}

#[test]
fn transition_noise_handled_by_deglitcher() {
    // With comparator transition noise the raw BIST rejects an ideal
    // device (spurious short runs); the §3 deglitch filter restores the
    // correct verdict.
    let mut rng = StdRng::seed_from_u64(9);
    let adc =
        bist_adc::transfer::TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
    // 0.01 LSB rms — small against the 6-bit Δs of 0.023 LSB, so the
    // toggles are mostly isolated single-sample glitches (the regime the
    // paper's "simple digital filter" remark addresses).
    let noise = NoiseConfig::noiseless().with_transition_noise(0.001);
    let raw_cfg = config(6);
    let mut raw_rejects = 0;
    let runs = 10;
    for _ in 0..runs {
        let outcome = run_static_bist(&adc, &raw_cfg, &noise, 0.0, &mut rng);
        if !outcome.accepted() {
            raw_rejects += 1;
        }
    }
    let deglitched_cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .deglitch(true)
        .build()
        .expect("valid configuration");
    let mut deglitched_accepts = 0;
    for _ in 0..runs {
        let outcome = run_static_bist(&adc, &deglitched_cfg, &noise, 0.0, &mut rng);
        if outcome.accepted() {
            deglitched_accepts += 1;
        }
    }
    assert!(
        deglitched_accepts > raw_rejects.min(runs / 2),
        "deglitcher did not help: raw rejects {raw_rejects}/{runs}, deglitched accepts {deglitched_accepts}/{runs}"
    );
    assert!(
        deglitched_accepts >= runs - 2,
        "deglitched accepts only {deglitched_accepts}/{runs}"
    );
}

#[test]
fn every_gross_output_fault_is_rejected() {
    let mut rng = StdRng::seed_from_u64(21);
    let cfg = config(4);
    let good =
        bist_adc::transfer::TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
    let faults = [
        OutputFault::StuckBit {
            bit: 0,
            value: false,
        },
        OutputFault::StuckBit {
            bit: 0,
            value: true,
        },
        OutputFault::StuckBit {
            bit: 2,
            value: false,
        },
        OutputFault::StuckBit {
            bit: 5,
            value: true,
        },
        OutputFault::SwappedBits { a: 0, b: 3 },
        OutputFault::SwappedBits { a: 2, b: 4 },
        OutputFault::StuckCode(Code(0)),
        OutputFault::StuckCode(Code(33)),
        OutputFault::CodeOffset(1),
        OutputFault::CodeOffset(-5),
    ];
    for fault in faults {
        let adc = FaultyAdc::new(&good, fault);
        let outcome = run_static_bist(&adc, &cfg, &NoiseConfig::noiseless(), 0.0, &mut rng);
        assert!(!outcome.accepted(), "fault escaped: {fault}");
    }
}

#[test]
fn analog_spot_defects_are_rejected() {
    let mut rng = StdRng::seed_from_u64(23);
    let cfg = config(4);
    let device = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).sample(&mut rng);
    for faulty in [
        device.with_ladder_short(5),
        device.with_ladder_short(40),
        device.with_stuck_comparator(0, true),
        device.with_stuck_comparator(62, false),
        device.with_stuck_comparator(31, true),
    ] {
        let outcome = run_static_bist(&faulty, &cfg, &NoiseConfig::noiseless(), 0.0, &mut rng);
        assert!(!outcome.accepted(), "analog defect escaped: {faulty}");
    }
}

#[test]
fn reference_and_conventional_agree_on_clear_devices() {
    // Devices far from the spec boundary must be classified identically
    // by the reference measurement and the 4096-sample conventional test.
    let mut rng = StdRng::seed_from_u64(31);
    let spec = LinearitySpec::paper_stringent();
    // Clearly good: tight process.
    let good = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
        .with_width_sigma_lsb(0.05)
        .sample(&mut rng);
    // Clearly bad: loose process, huge DNL everywhere.
    let bad = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
        .with_width_sigma_lsb(0.6)
        .sample(&mut rng);
    for (adc, want) in [(&good, true), (&bad, false)] {
        let r = reference_measurement(adc, &spec, 1000, &NoiseConfig::noiseless(), &mut rng)
            .expect("histogram usable");
        let c = conventional_test(adc, &spec, 4096, &NoiseConfig::noiseless(), &mut rng)
            .expect("histogram usable");
        assert_eq!(r.accepted, want, "reference misclassified");
        assert_eq!(c.accepted, want, "conventional misclassified");
    }
}

#[test]
fn partial_bist_judges_half_the_codes_per_monitored_bit() {
    // Monitoring bit 1 (q = 2) halves the number of observable "codes"
    // (each run of bit 1 spans two converter codes).
    let mut rng = StdRng::seed_from_u64(41);
    let adc =
        bist_adc::transfer::TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
    // At q = 2 a "code" is 2 LSB wide: widen the window accordingly by
    // using a 2x delta_s with the same counter.
    let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .monitored_bit(1)
        .delta_s(bist_adc::types::Lsb(2.0 * 1.5 / 64.5))
        .build()
        .expect("valid configuration");
    let outcome = run_static_bist(&adc, &cfg, &NoiseConfig::noiseless(), 0.0, &mut rng);
    // 31 runs of bit 1 between the partial first and last: 30 complete.
    assert!(
        (29..=31).contains(&outcome.monitor.codes.len()),
        "judged {} bit-1 periods",
        outcome.monitor.codes.len()
    );
    assert!(outcome.functional.all_pass());
}
