//! Integration: the single-pin RTL top level (`bist_rtl::top::BistTop`)
//! must reach the same device verdicts as the behavioural harness on
//! real converter sweeps — the last link between the paper's concept and
//! synthesisable hardware.
//!
//! Since the backend seam landed this agreement is *exact*: driven
//! through the drain protocol (`BistTop::DRAIN_TICKS` recirculating
//! cycles after the last sample), the RTL top reports the identical
//! measurement count, failure counts and pass/fail as the behavioural
//! accumulators — the looser "±1 code, compare rejections only"
//! tolerances this test used to need are gone.

use bist_adc::flash::FlashConfig;
use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::{Resolution, Volts};
use bist_core::config::BistConfig;
use bist_core::harness::bist_from_capture;
use bist_core::screener::{Screener, Workload};
use bist_rtl::top::{BistTop, BistTopConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_config(bits: u32) -> BistConfig {
    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(bits)
        .build()
        .expect("paper operating point")
}

fn top_from(config: &BistConfig) -> BistTop {
    BistTop::new(BistTopConfig {
        lsb: config.to_rtl(),
        adc_bits: config.resolution().bits(),
        expected_codes: config.expected_measurements(),
    })
}

/// Runs a capture through the top level, honouring the drain protocol.
fn run_top(top: &mut BistTop, codes: &[bist_adc::types::Code]) {
    for code in codes {
        top.tick(u64::from(code.0));
    }
    for _ in 0..BistTop::DRAIN_TICKS {
        top.drain_tick();
    }
}

#[test]
fn top_level_agrees_with_harness_on_flash_batch() {
    let config = paper_config(5);
    let total = 40;
    for seed in 0..total {
        let mut rng = StdRng::seed_from_u64(seed);
        let adc = FlashConfig::paper_device().sample(&mut rng);
        let slope = config.delta_s().0 * 0.1 * 1.0e6;
        let capture = acquire(
            &adc,
            &Ramp::new(Volts(-0.2), slope),
            SamplingConfig::new(1.0e6, ((6.4 + 1.4) / slope * 1.0e6) as usize),
        );
        let behavioural = bist_from_capture(&config, &capture);

        let mut top = top_from(&config);
        run_top(&mut top, capture.codes());
        let report = top.report();
        // Exact agreement, field by field — no latency fudge.
        assert_eq!(
            report.codes_measured,
            behavioural.monitor.codes.len() as u64,
            "seed {seed}: measurement count"
        );
        assert_eq!(
            report.dnl_failures, behavioural.monitor.dnl_failures,
            "seed {seed}: DNL failures"
        );
        assert_eq!(
            report.inl_failures, behavioural.monitor.inl_failures,
            "seed {seed}: INL failures"
        );
        assert_eq!(
            report.functional_mismatches, behavioural.functional.mismatches,
            "seed {seed}: functional mismatches"
        );
        assert_eq!(
            report.functional_checks,
            behavioural.functional.checks.len() as u64,
            "seed {seed}: functional checks"
        );
        assert_eq!(report.complete, behavioural.complete(), "seed {seed}");
        assert_eq!(report.pass(), behavioural.accepted(), "seed {seed}");
    }
}

#[test]
fn top_level_catches_the_stuck_lsb_that_needs_completeness() {
    // The fault class that motivated the completeness check: dead LSB.
    let config = paper_config(4);
    let mut top = top_from(&config);
    // A staircase with the LSB masked off.
    for c in 0..64u64 {
        for _ in 0..11 {
            top.tick(c & !1);
        }
    }
    for _ in 0..BistTop::DRAIN_TICKS {
        top.drain_tick();
    }
    let report = top.report();
    assert!(!report.complete);
    assert!(!report.pass());

    // Behavioural side agrees.
    let mut rng = StdRng::seed_from_u64(1);
    let good =
        bist_adc::transfer::TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
    let faulty = bist_adc::faults::FaultyAdc::new(
        good,
        bist_adc::faults::OutputFault::StuckBit {
            bit: 0,
            value: false,
        },
    );
    let mut screener = Screener::new(Workload::static_ramp(config));
    let verdict = screener.screen_one(&faulty, &mut rng);
    let outcome = screener
        .take_static_outcome(&verdict)
        .expect("static workload");
    assert!(!outcome.complete());
    assert!(!outcome.accepted());
}

#[test]
fn signature_distinguishes_devices() {
    // Different mismatch instances must yield different MISR signatures
    // (the whole point of compaction: one register read identifies the
    // measured linearity profile).
    let config = paper_config(6);
    let mut signatures = std::collections::HashSet::new();
    for seed in 0..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        let adc = FlashConfig::paper_device().sample(&mut rng);
        let slope = config.delta_s().0 * 0.1 * 1.0e6;
        let capture = acquire(
            &adc,
            &Ramp::new(Volts(-0.2), slope),
            SamplingConfig::new(1.0e6, ((6.4 + 1.4) / slope * 1.0e6) as usize),
        );
        let mut top = top_from(&config);
        run_top(&mut top, capture.codes());
        signatures.insert(top.report().signature.value());
    }
    assert_eq!(signatures.len(), 20, "signature collision across devices");
}
