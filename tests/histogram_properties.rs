//! Integration: property-based checks that the histogram (code-density)
//! estimators recover the true static metrics of arbitrary transfer
//! functions — the foundation the reference measurement stands on.

use bist_adc::histogram::{ramp_linearity, CodeHistogram};
use bist_adc::metrics::{dnl, inl_from_dnl, StaticSummary};
use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use proptest::prelude::*;

/// Strategy: a random 5-bit transfer function with widths in
/// [0.4, 1.6] LSB, normalised to mean width 1 (no missing codes; the
/// histogram test is *self-referencing* — DNL against the average code
/// width — so a common-mode gain error is invisible to it by design and
/// must be excluded for a sharp comparison against ideal-LSB DNL).
fn arb_transfer() -> impl Strategy<Value = TransferFunction> {
    prop::collection::vec(0.4f64..1.6, 30).prop_map(|mut widths| {
        let mean: f64 = widths.iter().sum::<f64>() / widths.len() as f64;
        for w in &mut widths {
            *w /= mean;
        }
        let res = Resolution::new(5).expect("5 bits is valid");
        let q = 0.1;
        let mut t = vec![q];
        for w in widths {
            let prev = *t.last().expect("non-empty");
            t.push(prev + w * q);
        }
        TransferFunction::from_transitions(res, Volts(0.0), Volts(3.2), t)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The ramp histogram recovers each inner-code DNL to within the
    /// count quantisation at ~200 samples/code.
    #[test]
    fn ramp_histogram_recovers_dnl(tf in arb_transfer()) {
        let samples_per_code = 200.0;
        let slope = 0.1 / samples_per_code * 1.0e6;
        let capture = acquire(
            &tf,
            &Ramp::new(Volts(-0.05), slope),
            SamplingConfig::new(1.0e6, (3.4 / slope * 1.0e6) as usize),
        );
        let hist = CodeHistogram::from_capture(tf.resolution(), &capture);
        let est = ramp_linearity(&hist).expect("full coverage");
        let truth = dnl(&tf);
        prop_assert_eq!(est.dnl.len(), truth.len());
        for (k, (e, t)) in est.dnl.iter().zip(&truth).enumerate() {
            // Mean-normalisation introduces a small common-mode shift;
            // allow quantisation + that shift.
            prop_assert!(
                (e.0 - t.0).abs() < 0.05,
                "code {}: est {} vs truth {}", k + 1, e.0, t.0
            );
        }
    }

    /// Accumulated-DNL INL from the histogram tracks the true INL.
    #[test]
    fn ramp_histogram_recovers_inl(tf in arb_transfer()) {
        let slope = 0.1 / 200.0 * 1.0e6;
        let capture = acquire(
            &tf,
            &Ramp::new(Volts(-0.05), slope),
            SamplingConfig::new(1.0e6, (3.4 / slope * 1.0e6) as usize),
        );
        let hist = CodeHistogram::from_capture(tf.resolution(), &capture);
        let est = ramp_linearity(&hist).expect("full coverage");
        let truth = inl_from_dnl(&dnl(&tf));
        for (k, (e, t)) in est.inl.iter().zip(&truth).enumerate() {
            prop_assert!(
                (e.0 - t.0).abs() < 0.3,
                "boundary {}: est {} vs truth {}", k + 1, e.0, t.0
            );
        }
    }

    /// The static summary peaks bound every individual value.
    #[test]
    fn summary_peaks_are_bounds(tf in arb_transfer()) {
        let s = StaticSummary::of(&tf);
        for d in dnl(&tf) {
            prop_assert!(d.0.abs() <= s.peak_dnl.0 + 1e-12);
        }
    }

    /// Histograms of a monotone capture never place samples on a code
    /// whose true width is zero.
    #[test]
    fn histogram_total_equals_samples(tf in arb_transfer()) {
        let capture = acquire(
            &tf,
            &Ramp::new(Volts(-0.05), 100.0),
            SamplingConfig::new(1.0e6, 40_000),
        );
        let hist = CodeHistogram::from_capture(tf.resolution(), &capture);
        prop_assert_eq!(hist.total(), 40_000u64);
    }
}
