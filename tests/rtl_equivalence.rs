#![allow(clippy::needless_range_loop)] // index loops mirror the maths/netlists
//! Integration: the behavioural LSB monitor (`bist-core`), the
//! cycle-accurate RTL datapath (`bist-rtl`) and the upper-bit checkers
//! must agree code-for-code on real converter captures — including
//! property-based random run-length streams.

use bist_adc::flash::FlashConfig;
use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::{Resolution, Volts};
use bist_core::config::BistConfig;
use bist_core::functional::check_code_stream;
use bist_core::lsb_monitor::monitor_bit_stream;
use bist_rtl::datapath::{LsbProcessor, UpperBitChecker};
use bist_rtl::logic::Bus;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_config(bits: u32) -> BistConfig {
    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(bits)
        .build()
        .expect("paper operating point")
}

/// Captures a full ramp sweep of a random flash device.
fn flash_capture(seed: u64, config: &BistConfig) -> bist_adc::sampler::Capture {
    let mut rng = StdRng::seed_from_u64(seed);
    let adc = FlashConfig::paper_device().sample(&mut rng);
    let lsb = 0.1;
    let slope = config.delta_s().0 * lsb * 1.0e6;
    let samples = ((6.4 + 1.4) / slope * 1.0e6) as usize;
    acquire(
        &adc,
        &Ramp::new(Volts(-0.2), slope),
        SamplingConfig::new(1.0e6, samples),
    )
}

#[test]
fn behavioural_monitor_matches_rtl_on_flash_devices() {
    for seed in 0..10 {
        for bits in [4, 6] {
            let config = paper_config(bits);
            let capture = flash_capture(seed, &config);
            let stream: Vec<bool> = capture.bits(0).collect();

            let behavioural = monitor_bit_stream(&config, &stream);
            let mut rtl = LsbProcessor::new(config.to_rtl());
            let mut rtl_counts = Vec::new();
            let mut rtl_pass = Vec::new();
            for &b in &stream {
                if let Some(m) = rtl.tick(b) {
                    rtl_counts.push(m.count);
                    rtl_pass.push(m.dnl_verdict);
                }
            }
            let n = rtl_counts.len().min(behavioural.codes.len());
            assert!(n >= 60, "seed {seed}: only {n} common measurements");
            for i in 0..n {
                assert_eq!(
                    behavioural.codes[i].count, rtl_counts[i],
                    "seed {seed} bits {bits} code {i}: count mismatch"
                );
                assert_eq!(
                    behavioural.codes[i].dnl_verdict, rtl_pass[i],
                    "seed {seed} bits {bits} code {i}: verdict mismatch"
                );
            }
        }
    }
}

#[test]
fn functional_checker_matches_rtl_on_flash_devices() {
    for seed in 0..10 {
        let config = paper_config(5);
        let capture = flash_capture(seed, &config);
        let behavioural = check_code_stream(capture.codes(), 0);
        let mut rtl = UpperBitChecker::new(5);
        for &c in capture.codes() {
            rtl.tick(c.0 & 1 == 1, Bus::truncate(5, u64::from(c.0 >> 1)));
        }
        assert_eq!(behavioural.mismatches, rtl.mismatches(), "seed {seed}");
        assert_eq!(behavioural.checks.len() as u64, rtl.checks(), "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary run-length streams the behavioural monitor and the
    /// RTL processor agree on every common measurement.
    #[test]
    fn monitor_rtl_agree_on_random_streams(
        runs in prop::collection::vec(1u64..40, 3..60),
        counter_bits in 4u32..8,
    ) {
        let config = paper_config(counter_bits);
        let mut stream = Vec::new();
        let mut level = false;
        for &r in &runs {
            stream.extend(std::iter::repeat_n(level, r as usize));
            level = !level;
        }
        let behavioural = monitor_bit_stream(&config, &stream);
        let mut rtl = LsbProcessor::new(config.to_rtl());
        let mut rtl_ms = Vec::new();
        for &b in &stream {
            if let Some(m) = rtl.tick(b) {
                rtl_ms.push(m);
            }
        }
        let n = rtl_ms.len().min(behavioural.codes.len());
        // The RTL's synchroniser latency may drop at most the final edge.
        prop_assert!(behavioural.codes.len() <= rtl_ms.len() + 1);
        for i in 0..n {
            prop_assert_eq!(behavioural.codes[i].count, rtl_ms[i].count);
            prop_assert_eq!(behavioural.codes[i].dnl_verdict, rtl_ms[i].dnl_verdict);
            prop_assert_eq!(behavioural.codes[i].inl_counts, rtl_ms[i].inl_counts);
        }
    }

    /// The measured count is always the true run length (up to counter
    /// capacity), regardless of the stream shape.
    #[test]
    fn counts_equal_run_lengths(
        runs in prop::collection::vec(1u64..200, 3..40),
    ) {
        let config = paper_config(6);
        let capacity = 1u64 << 6;
        let mut stream = Vec::new();
        let mut level = false;
        for &r in &runs {
            stream.extend(std::iter::repeat_n(level, r as usize));
            level = !level;
        }
        let result = monitor_bit_stream(&config, &stream);
        // Complete inner runs are runs[1..n-1].
        let expected: Vec<u64> = runs[1..runs.len() - 1]
            .iter()
            .map(|&r| r.min(capacity))
            .collect();
        let got: Vec<u64> = result.codes.iter().map(|c| c.count).collect();
        prop_assert_eq!(got, expected);
    }
}
