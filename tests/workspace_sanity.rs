//! Guards the workspace wiring itself: the `adc_bist` umbrella crate
//! must re-export every member crate under the documented name, so a
//! manifest regression (dropped dependency, renamed lib target) fails
//! `cargo test` rather than only surfacing in downstream CI.

/// Each re-export resolves and is the same crate the members expose:
/// a value produced through the umbrella path must typecheck against
/// the member path.
#[test]
fn umbrella_reexports_resolve() {
    // adc_bist::dsp is bist_dsp.
    let c: bist_dsp::complex::Complex64 = adc_bist::dsp::complex::Complex64::from_re(1.0);
    assert_eq!(c.re, 1.0);

    // adc_bist::adc is bist_adc.
    let r: bist_adc::types::Resolution = adc_bist::adc::types::Resolution::SIX_BIT;
    assert_eq!(r.bits(), 6);

    // adc_bist::rtl is bist_rtl.
    let counter: bist_rtl::counter::Counter = adc_bist::rtl::counter::Counter::new(4);
    assert_eq!(counter.width(), 4);

    // adc_bist::core is bist_core (the re-export shadows `::core`; the
    // paper harness is reachable through it).
    let spec = adc_bist::adc::spec::LinearitySpec::paper_stringent();
    let config: bist_core::config::BistConfig =
        adc_bist::core::config::BistConfig::builder(r, spec)
            .counter_bits(4)
            .build()
            .expect("paper operating point");
    assert_eq!(config.counter_bits(), 4);

    // adc_bist::mc is bist_mc.
    let batch: bist_mc::batch::Batch = adc_bist::mc::batch::Batch::paper_simulation(1, 3);
    assert_eq!(batch.size, 3);
}

/// The five documented module paths exist as paths (compile-time check
/// that `use` statements in downstream code keep working).
#[test]
fn umbrella_use_paths_compile() {
    #[allow(unused_imports)]
    use adc_bist::{adc, core, dsp, mc, rtl};
}
