//! Quickstart: build a mismatched 6-bit flash converter, run the paper's
//! LSB-monitor BIST on it, and compare the verdict with ground truth.
//!
//! Run with: `cargo run --example quickstart`

use bist_adc::flash::FlashConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::Adc;
use bist_adc::types::Resolution;
use bist_core::config::BistConfig;
use bist_core::screener::{Screener, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);

    // 1. One device from the paper's population: a 6-bit flash ADC whose
    //    resistor-ladder and comparator mismatch give code widths with
    //    σ = 0.21 LSB (the worst case §4 simulates).
    let device = FlashConfig::paper_device().sample(&mut rng);
    println!("device under test: {device}");

    // 2. The BIST configuration: the stringent ±0.5 LSB DNL spec and the
    //    smallest counter the paper evaluates (4 bits). The builder
    //    plans the balanced step size Δs and the count window (Eqs. 3-5).
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(4)
        .build()?;
    println!("configuration:     {config}");

    // 3. Run the BIST through the one front door: a `Screener` wraps
    //    the workload (here the static ramp — a slow sweep while the
    //    on-chip blocks watch the LSB and the upper bits) and screens
    //    devices one at a time or in batches.
    let mut screener = Screener::new(Workload::static_ramp(config));
    let verdict = screener.screen_one(&device, &mut rng);
    let outcome = screener
        .take_static_outcome(&verdict)
        .expect("static workload");
    println!("\nBIST outcome:      {outcome}");

    // 4. Per-code detail: the measured sample count per code is the code
    //    width in units of Δs.
    println!(
        "\nfirst judged codes (count ∈ [{}, {}] passes):",
        config.limits().i_min(),
        config.limits().i_max()
    );
    for code in outcome.monitor.codes.iter().take(8) {
        println!(
            "  code #{:2}: {:2} samples → width {:.3} LSB, DNL {:+.3} LSB, {}",
            code.index, code.count, code.width_lsb.0, code.dnl_lsb.0, code.dnl_verdict
        );
    }

    // 5. The same sweep also yields the other two static parameters of
    //    §2 — offset and gain — with no extra hardware.
    //    (The harness ramp starts 2 LSB below the input range.)
    let lsb_stream: Vec<bool> = {
        use bist_adc::sampler::{acquire, SamplingConfig};
        use bist_adc::signal::Ramp;
        let slope = config.delta_s().0 * 0.1 * 1.0e6;
        let samples = ((6.4 + 1.2) / slope * 1.0e6) as usize;
        acquire(
            &device,
            &Ramp::new(bist_adc::types::Volts(-0.2), slope),
            SamplingConfig::new(1.0e6, samples),
        )
        .bits(0)
        .collect()
    };
    if let Some(est) = bist_core::static_params::estimate_offset_gain(&config, &lsb_stream, -2.0) {
        println!("\nstatic parameters:  {est}");
    }

    // 6. Ground truth from the true transfer function (we simulate the
    //    silicon, so the exact answer is available).
    let transfer = device.transfer().expect("flash states its transfer");
    let truth = LinearitySpec::paper_stringent().classify(&transfer);
    println!("\nground truth:      {truth}");
    println!(
        "verdict agreement: BIST {} vs truth {} → {}",
        if outcome.accepted() {
            "accept"
        } else {
            "reject"
        },
        if truth.good { "good" } else { "faulty" },
        if outcome.accepted() == truth.good {
            "CORRECT"
        } else if truth.good {
            "TYPE I ERROR (good device rejected)"
        } else {
            "TYPE II ERROR (faulty device accepted)"
        }
    );
    Ok(())
}
