//! Fault injection: §4 claims gross (spot-defect) faults "will also be
//! detected by the BIST method" even though the error theory only covers
//! parametric variation. This example injects analog and digital gross
//! faults into otherwise-good devices and shows the BIST rejecting every
//! one of them.
//!
//! Run with: `cargo run --release --example fault_injection`

use bist_adc::faults::{FaultyAdc, OutputFault};
use bist_adc::flash::FlashConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::Adc;
use bist_adc::types::{Code, Resolution};
use bist_core::config::BistConfig;
use bist_core::screener::{Screener, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn verdict<A: Adc>(name: &str, adc: &A, config: &BistConfig, rng: &mut StdRng) -> bool {
    let mut screener = Screener::new(Workload::static_ramp(*config));
    let v = screener.screen_one(adc, rng);
    let outcome = screener.take_static_outcome(&v).expect("static workload");
    println!(
        "  {name:<36} {} (DNL fails {}, INL fails {}, functional mismatches {})",
        if outcome.accepted() {
            "ACCEPTED"
        } else {
            "REJECTED"
        },
        outcome.monitor.dnl_failures,
        outcome.monitor.inl_failures,
        outcome.functional.mismatches,
    );
    outcome.accepted()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1997);
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(4)
        .build()?;

    // Draw a *good* device (retry until ground truth says good). The
    // seed matters: the 4-bit counter has a double-digit type I rate
    // (§4), so some ground-truth-good devices are rejected at baseline.
    let cfg = FlashConfig::paper_device();
    let good = loop {
        let candidate = cfg.sample(&mut rng);
        let tf = candidate.transfer().expect("flash states its transfer");
        if LinearitySpec::paper_stringent().classify(&tf).good {
            break candidate;
        }
    };

    println!("baseline (no fault):");
    let baseline_ok = verdict("good device", &good, &config, &mut rng);
    assert!(baseline_ok, "baseline device must pass");

    println!("\nanalog spot defects on the flash core:");
    let mut all_rejected = true;
    all_rejected &= !verdict(
        "ladder short (segment 20)",
        &good.with_ladder_short(20),
        &config,
        &mut rng,
    );
    all_rejected &= !verdict(
        "comparator 31 stuck high",
        &good.with_stuck_comparator(31, true),
        &config,
        &mut rng,
    );
    all_rejected &= !verdict(
        "comparator 10 stuck low",
        &good.with_stuck_comparator(10, false),
        &config,
        &mut rng,
    );

    println!("\ndigital output faults:");
    for fault in [
        OutputFault::StuckBit {
            bit: 0,
            value: false,
        },
        OutputFault::StuckBit {
            bit: 0,
            value: true,
        },
        OutputFault::StuckBit {
            bit: 5,
            value: false,
        },
        OutputFault::SwappedBits { a: 1, b: 4 },
        OutputFault::StuckCode(Code(21)),
        OutputFault::CodeOffset(3),
    ] {
        let faulty = FaultyAdc::new(&good, fault);
        all_rejected &= !verdict(&fault.to_string(), &faulty, &config, &mut rng);
    }

    println!(
        "\nresult: {} — gross faults detected by the smallest (4-bit) BIST configuration",
        if all_rejected {
            "ALL REJECTED"
        } else {
            "SOME ESCAPED"
        }
    );
    assert!(all_rejected, "every gross fault must be rejected");
    Ok(())
}
