//! Partial-BIST planning: Eqs. 1–2 decide how many bits `q` must stay
//! off-chip for a given stimulus speed, and the Figure-2 architecture
//! verifies the on-chip bits with a counter clocked by bit `q`.
//!
//! This example plans `q_min` across stimulus speeds for the paper's
//! 6-bit device, then actually runs the upper-bit functional test while
//! monitoring bit 1 (q = 2) to show the partial configuration working.
//!
//! Run with: `cargo run --example partial_bist_planning`

use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_core::config::BistConfig;
use bist_core::functional::check_code_stream;
use bist_core::qmin::QminPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = QminPlan::new(Resolution::SIX_BIT, 0.5, 1.0);
    let f_sample = 1.0e6;

    println!("q_min vs stimulus frequency (6-bit, DNL 0.5 / INL 1.0 LSB, f_sample = 1 MHz):");
    for f_stim in [1.0, 100.0, 1e3, 5e3, 2e4, 5e4, 1e5, 3e5] {
        match plan.q_min(f_stim, f_sample) {
            Some(1) => println!(
                "  {f_stim:>9.0} Hz → q_min = 1  (full BIST: only the LSB leaves the chip)"
            ),
            Some(q) => println!(
                "  {f_stim:>9.0} Hz → q_min = {q}  ({q} bits off-chip, {} on-chip)",
                6 - q
            ),
            None => println!("  {f_stim:>9.0} Hz → untestable (stimulus too fast for 6 bits)"),
        }
    }

    // Now exercise the q = 2 partial configuration: monitor bit 1 and
    // functionally verify bits 2..5 against the internal counter.
    println!("\npartial BIST with q = 2 (monitored bit = 1):");
    let adc = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .monitored_bit(1)
        .build()?;
    let ramp = Ramp::new(Volts(-0.2), 8.0); // a faster ramp than the LSB test allows
    let capture = acquire(&adc, &ramp, SamplingConfig::new(f_sample, 900_000));
    let functional = check_code_stream(capture.codes(), config.monitored_bit());
    println!("  {functional}");
    println!(
        "  ({} falling edges of bit 1 checked the upper word's +1 continuity)",
        functional.checks.len()
    );

    // The same capture through a faulty device: bit 4 stuck low.
    let faulty = bist_adc::faults::FaultyAdc::new(
        adc,
        bist_adc::faults::OutputFault::StuckBit {
            bit: 4,
            value: false,
        },
    );
    let capture = acquire(&faulty, &ramp, SamplingConfig::new(f_sample, 900_000));
    let functional = check_code_stream(capture.codes(), config.monitored_bit());
    println!("  with bit 4 stuck low: {functional}");
    Ok(())
}
