//! Dynamic testing: §2 notes the BIST capture path also supports
//! "dynamic" tests where THD and noise power are the parameters. This
//! example drives a mismatched flash converter with a full-scale sine
//! and extracts THD/SNR/SINAD/ENOB four ways:
//!
//! 1. coherent FFT analysis of the captured codes,
//! 2. Goertzel bins only (the cheap on-chip-style computation),
//! 3. IEEE-1057 sine fitting (no coherency requirement),
//! 4. the streaming dynamic BIST subsystem (`bist_core::dynamic`) —
//!    the production path: no record buffer, pluggable behavioural/RTL
//!    verdict backends, and a pass/fail decision against limits.
//!
//! Run with: `cargo run --release --example dynamic_test`

use bist_adc::flash::FlashConfig;
use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::SineWave;
use bist_adc::types::{Resolution, Volts};
use bist_core::backend::RtlBackend;
use bist_core::dynamic::DynamicConfig;
use bist_core::screener::{Screener, Workload};
use bist_dsp::goertzel::goertzel_bin;
use bist_dsp::sinefit::fit_sine_4param;
use bist_dsp::spectrum::{analyze_tone, fold_bin, ideal_sinad_db, ToneAnalysisConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::TAU;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);
    let device = FlashConfig::paper_device().sample(&mut rng);

    // Coherent capture: 4096 samples, 1021 cycles (mutually prime), a
    // slightly over-ranged full-scale sine so every code is exercised.
    let n = 4096usize;
    let fs = 1.0e6;
    let cycles = 1021u32;
    let f_in = SineWave::coherent_frequency(cycles, n, fs);
    let sine = SineWave::new(3.26, f_in, 0.0, Volts(3.2));
    let capture = acquire(&device, &sine, SamplingConfig::new(fs, n));
    let record: Vec<f64> = capture.normalized(Resolution::SIX_BIT.bits()).collect();

    // --- 1. FFT test -----------------------------------------------------
    let analysis = analyze_tone(&record, &ToneAnalysisConfig::default())?;
    println!("FFT test ({} samples, {} cycles):", n, cycles);
    println!("  {analysis}");
    println!(
        "  ideal 6-bit SINAD is {:.1} dB; mismatch costs {:.1} dB",
        ideal_sinad_db(6),
        ideal_sinad_db(6) - analysis.sinad_db
    );

    // --- 2. Goertzel (on-chip flavoured) ----------------------------------
    // Carrier and first four harmonics, six multiplies per sample total —
    // the kind of "simple digital function" the paper advocates.
    let carrier = goertzel_bin(&record, cycles as usize).norm_sqr();
    let mut harmonic_power = 0.0;
    print!("Goertzel harmonic powers:");
    for h in 2..=5 {
        let bin = fold_bin(cycles as usize * h, n);
        let p = goertzel_bin(&record, bin).norm_sqr();
        harmonic_power += p;
        print!(" H{h}: {:.1} dBc;", 10.0 * (p / carrier).log10());
    }
    println!();
    println!(
        "  THD (Goertzel) = {:.1} dB vs FFT {:.1} dB",
        10.0 * (harmonic_power / carrier).log10(),
        analysis.thd_db
    );

    // --- 3. Sine fit -------------------------------------------------------
    let omega = TAU * f_in / fs;
    let fit = fit_sine_4param(&record, omega * 1.0005)?;
    println!("sine fit: {fit}");
    println!(
        "  ENOB from fit residual: {:.2} bits (FFT said {:.2})",
        fit.enob(1.0),
        analysis.enob
    );

    // --- 4. The streaming dynamic BIST subsystem --------------------------
    // Same physics, production path through the one front door: a
    // `Screener` over the dynamic-sine workload streams the sine
    // through the lazy CodeStream into a Goertzel bank — no 4096-sample
    // record is ever materialised — and judges the verdict against
    // limits. Swapping `.backend(RtlBackend::new())` re-judges the
    // identical sweep with the gate-accurate fixed-point DynBistTop,
    // which must reach the identical decision.
    let config = DynamicConfig::paper_default();
    let mut screener = Screener::new(Workload::dynamic_sine(config));
    let behavioral = screener
        .screen_one(&device, &mut StdRng::seed_from_u64(99))
        .as_dynamic()
        .expect("dynamic workload")
        .verdict;
    println!("streaming dynamic BIST ({config}):");
    println!("  behavioral: {behavioral}");
    let mut screener = screener.backend(RtlBackend::new());
    let rtl = screener
        .screen_one(&device, &mut StdRng::seed_from_u64(99))
        .as_dynamic()
        .expect("dynamic workload")
        .verdict;
    println!("  rtl (fixed-point): {rtl}");
    assert_eq!(
        behavioral.checks, rtl.checks,
        "the two verdict backends must reach the same decisions"
    );

    Ok(())
}
