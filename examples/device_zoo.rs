//! Device zoo: one mixed fleet of flash, iid-width, SAR and pipeline
//! converters screened end-to-end through the `DeviceSource` seam —
//! the paper's architecture-agnostic claim, exercised literally. The
//! BIST only watches output bits, so the same screener (full-sweep and
//! sequenced), the same batch engines and the same worker pool judge
//! every architecture; only the mismatch physics behind each transfer
//! function differs.
//!
//! The second act closes the loop: a per-architecture differential
//! sweep feeds a [`PriorsBank`], which hands the sequencer
//! architecture-conditioned `min_samples`/`check_interval` hints.
//!
//! Run with: `cargo run --release --example device_zoo`

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::config::BistConfig;
use bist_core::priors::PriorsBank;
use bist_core::report::{fmt_prob, Table};
use bist_core::screener::{Screener, Workload};
use bist_core::sequencer::SequencerConfig;
use bist_core::source::{Architecture, Zoo};
use bist_mc::differential::run_arch_differential;

const FLEET: usize = 240;
const ZOO_SEED: u64 = 7;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = Zoo::paper().with_seed(ZOO_SEED);
    let census = zoo.census(FLEET);
    println!(
        "device zoo: {FLEET} devices dealt across {} architectures",
        zoo.sources().len()
    );
    for arch in Architecture::ALL {
        println!(
            "  {:<8} {:>4} devices  (DNL signature: {})",
            arch.label(),
            census[arch.index()],
            arch.dnl_signature(),
        );
    }
    println!();

    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(5)
        .build()?;
    let workload = Workload::static_ramp(config);

    // Act one: the whole mixed fleet through one `Screener::run` —
    // full sweep first (ground truth), then sequenced. The engine
    // neither knows nor cares which architecture fills each lane.
    let full = Screener::new(workload).workers(0).run(zoo.fleet(FLEET));
    let seq = Screener::new(workload)
        .sequencer(SequencerConfig::default())
        .workers(0)
        .run(zoo.fleet(FLEET));

    let mut table = Table::new(&[
        "arch",
        "devices",
        "yield",
        "early stops",
        "mean samples",
        "agree",
    ])
    .with_title("mixed fleet, full sweep vs sequenced (counter 5, ±0.5 LSB)");
    for arch in Architecture::ALL {
        let (mut n, mut good, mut stops, mut samples, mut agree) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for (f, s) in full.iter().zip(&seq) {
            assert_eq!(f.device, s.device);
            if zoo.architecture_of(f.device) != arch {
                continue;
            }
            let outcome = s.verdict.as_static().expect("static workload");
            n += 1;
            good += u64::from(f.verdict.accepted());
            stops += u64::from(outcome.decision.stops());
            samples += outcome.samples_consumed();
            agree += u64::from(f.verdict.accepted() == s.verdict.accepted());
        }
        table.row_owned(vec![
            arch.label().to_string(),
            n.to_string(),
            fmt_prob(Some(good as f64 / n as f64)),
            fmt_prob(Some(stops as f64 / n as f64)),
            format!("{:.0}", samples as f64 / n as f64),
            format!("{agree}/{n}"),
        ]);
    }
    println!("{table}");

    // Act two: per-architecture differential sweep (full behavioural
    // ground truth + sequenced behavioural + sequenced RTL on
    // bit-identical streams) feeding the priors bank.
    let base = SequencerConfig::default();
    let diff = run_arch_differential(ZOO_SEED, &base, 6, 0);
    assert!(diff.is_clean(), "behavioural↔RTL divergence: {diff}");
    println!(
        "differential: {} comparisons, {} divergences, drift I {:.2e} / II {:.2e}\n",
        diff.comparisons,
        diff.divergences.len(),
        diff.type_i_drift(),
        diff.type_ii_drift(),
    );

    let mut bank = PriorsBank::new(base).with_min_runs(8);
    diff.seed_priors(&mut bank);
    println!("{bank}");
    println!("(hints tighten min_samples toward each architecture's observed");
    println!(" decision point; α/β stay untouched, so the error budgets hold.)");
    Ok(())
}
