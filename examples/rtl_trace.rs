//! RTL bring-up view: runs the cycle-accurate Figure-4 LSB processor on
//! a short ramp capture and renders the internal signals as an ASCII
//! waveform — the designer's eye view of the on-chip BIST.
//!
//! Run with: `cargo run --example rtl_trace`

use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_core::config::BistConfig;
use bist_rtl::datapath::LsbProcessor;
use bist_rtl::sim::Trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-bit ideal converter keeps the trace readable.
    let res = Resolution::new(3)?;
    let adc = TransferFunction::ideal(res, Volts(0.0), Volts(0.8));

    // ~9 samples per code.
    let config = BistConfig::builder(res, LinearitySpec::dnl_only(0.5))
        .counter_bits(4)
        .delta_s(bist_adc::types::Lsb(0.11))
        .build()?;
    let slope = 0.11 * 0.1 * 1000.0; // Δs · LSB · f_sample
    let capture = acquire(
        &adc,
        &Ramp::new(Volts(-0.05), slope),
        SamplingConfig::new(1000.0, 85),
    );

    println!("config: {config}\n");
    let mut bist = LsbProcessor::new(config.to_rtl());
    let mut trace = Trace::new();
    let mut results = Vec::new();
    for (cycle, code) in capture.codes().iter().enumerate() {
        let lsb = code.0 & 1 == 1;
        trace.sample(cycle as u64, "code", u64::from(code.0));
        trace.sample(cycle as u64, "lsb", u64::from(lsb));
        let m = bist.tick(lsb);
        trace.sample(cycle as u64, "edge", u64::from(m.is_some()));
        if let Some(m) = m {
            trace.sample(cycle as u64, "count", m.count);
            trace.sample(cycle as u64, "pass", u64::from(m.dnl_verdict.is_pass()));
            results.push(m);
        }
    }

    println!("{}", trace.render());
    println!(
        "measurements (window [{}, {}]):",
        config.limits().i_min(),
        config.limits().i_max()
    );
    for m in &results {
        println!(
            "  code #{}: {} samples, {}{}, INL {} counts",
            m.index,
            m.count,
            m.dnl_verdict,
            if m.overflow {
                " (counter overflow)"
            } else {
                ""
            },
            m.inl_counts,
        );
    }
    println!("\n{bist}");
    Ok(())
}
