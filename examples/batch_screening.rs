//! Batch screening: reproduce the paper's §4 measurement campaign — a
//! batch of 364 six-bit flash converters screened by the BIST against a
//! reference measurement, under the stringent ±0.5 LSB spec.
//!
//! Run with: `cargo run --release --example batch_screening`

use bist_adc::noise::NoiseConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::config::BistConfig;
use bist_core::decision::ConfusionMatrix;
use bist_core::harness::reference_measurement;
use bist_core::report::{fmt_prob, Table};
use bist_core::screener::{Screener, Workload};
use bist_mc::batch::Batch;

/// Device RNG salt shared with the fleet experiments, so this example
/// screens the exact population `bist_mc::experiment` would.
const DEVICE_SALT: usize = 0x5eed_0000_0000_0000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's batch: 364 devices (we regenerate them behaviourally;
    // gross spot defects excluded, parametric mismatch only).
    let batch = Batch::paper_measurement(364);
    println!("screening {} physically-modelled flash devices", batch.size);
    println!("model: {}\n", batch.model);

    let spec = LinearitySpec::paper_stringent();
    let mut table = Table::new(&["counter", "yield", "type I", "type II", "detail"])
        .with_title("BIST screening vs ~1000-sample/code reference (±0.5 LSB)");

    for bits in 4..=7 {
        let config = BistConfig::builder(Resolution::SIX_BIT, spec)
            .counter_bits(bits)
            .build()?;
        // Ground truth the way the paper did it: a high-accuracy
        // reference measurement, not an oracle — then the whole batch
        // in one `Screener::run` call, which dispatches the
        // lane-parallel batched engine.
        let mut truths = Vec::with_capacity(batch.size);
        let mut devices = Vec::with_capacity(batch.size);
        for i in 0..batch.size {
            let tf = batch.device(i);
            let mut rng = batch.device_rng(i ^ DEVICE_SALT);
            let truth =
                reference_measurement(&tf, &spec, 1000, &NoiseConfig::noiseless(), &mut rng)
                    .expect("reference sweep on a simulated device")
                    .accepted;
            truths.push(truth);
            devices.push((tf, rng));
        }
        let mut screener = Screener::new(Workload::static_ramp(config));
        let mut matrix = ConfusionMatrix::new();
        for report in screener.run(devices) {
            matrix.record(truths[report.device], report.verdict.accepted());
        }
        table.row_owned(vec![
            bits.to_string(),
            fmt_prob(matrix.yield_fraction()),
            fmt_prob(matrix.type_i_rate()),
            fmt_prob(matrix.type_ii_rate()),
            matrix.to_string(),
        ]);
    }
    println!("{table}");
    println!("paper's measured values: type I 0.13 / 0.06 / 0.04 / 0.02,");
    println!("                         type II 0.03 / 0.03 / 0.02 / 0.01");
    println!("(364 devices give wide confidence intervals — run the table1");
    println!(" binary for 4000-device batches with Wilson intervals.)");
    Ok(())
}
