//! Batch screening: reproduce the paper's §4 measurement campaign — a
//! batch of 364 six-bit flash converters screened by the BIST against a
//! reference measurement, under the stringent ±0.5 LSB spec.
//!
//! Run with: `cargo run --release --example batch_screening`

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::config::BistConfig;
use bist_core::report::{fmt_prob, Table};
use bist_mc::batch::Batch;
use bist_mc::experiment::{Experiment, GroundTruthMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's batch: 364 devices (we regenerate them behaviourally;
    // gross spot defects excluded, parametric mismatch only).
    let batch = Batch::paper_measurement(364);
    println!("screening {} physically-modelled flash devices", batch.size);
    println!("model: {}\n", batch.model);

    let spec = LinearitySpec::paper_stringent();
    let mut table = Table::new(&["counter", "yield", "type I", "type II", "detail"])
        .with_title("BIST screening vs ~1000-sample/code reference (±0.5 LSB)");

    for bits in 4..=7 {
        let config = BistConfig::builder(Resolution::SIX_BIT, spec)
            .counter_bits(bits)
            .build()?;
        // Ground truth the way the paper did it: a high-accuracy
        // reference measurement, not an oracle.
        let result = Experiment::new(batch, config)
            .with_ground_truth(GroundTruthMode::Reference {
                samples_per_code: 1000,
            })
            .run();
        table.row_owned(vec![
            bits.to_string(),
            fmt_prob(result.observed_yield().point()),
            fmt_prob(result.type_i().point()),
            fmt_prob(result.type_ii().point()),
            result.matrix.to_string(),
        ]);
    }
    println!("{table}");
    println!("paper's measured values: type I 0.13 / 0.06 / 0.04 / 0.02,");
    println!("                         type II 0.03 / 0.03 / 0.02 / 0.01");
    println!("(364 devices give wide confidence intervals — run the table1");
    println!(" binary for 4000-device batches with Wilson intervals.)");
    Ok(())
}
