//! Resident service: spawn the fleet-screening service, submit a small
//! mixed fleet over its localhost TCP door, and print the streamed
//! verdicts plus a live telemetry snapshot.
//!
//! This is the paper's screen run as infrastructure: the same batched
//! engines behind `Screener::run` stay resident in worker shards, and
//! devices arrive one TCP frame at a time instead of one `Vec` per
//! call — with bounded queues, explicit `Busy` backpressure, and
//! verdicts streaming back the moment they latch.
//!
//! Run with: `cargo run --release --example resident_service`

use std::io::Write as _;
use std::net::TcpStream;

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::screener::Workload;
use bist_mc::batch::Batch;
use bist_serve::protocol::{read_frame, write_frame};
use bist_serve::{ClientFrame, JobKind, ServerFrame, ServiceConfig, Submission};

const N_STATIC: usize = 12;
const N_DYN: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A service resident for both workloads of the paper: the static
    // ramp BIST at the §4 operating point, and the coherent sine
    // dynamic test.
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .build()?;
    let mut handle = ServiceConfig::new()
        .with_workload(Workload::static_ramp(config))
        .with_workload(Workload::dynamic_sine(DynamicConfig::paper_default()))
        .with_workers(2)
        .start();
    let addr = handle.serve_tcp(0)?;
    println!("resident service listening on {addr} (2 workers, both workloads)\n");

    // A small mismatched fleet, submitted over TCP one frame at a time.
    let batch = Batch::paper_simulation(1997, N_STATIC + N_DYN);
    let mut stream = TcpStream::connect(addr)?;
    let mut payload = Vec::new();
    for i in 0..N_STATIC + N_DYN {
        let sub = Submission {
            id: i as u64,
            kind: if i < N_STATIC {
                JobKind::Static
            } else {
                JobKind::Dynamic
            },
            adc: batch.device(i),
            seed: 1997 + i as u64,
        };
        ClientFrame::Submit(sub).encode(&mut payload);
        write_frame(&mut stream, &payload)?;
    }
    ClientFrame::Telemetry.encode(&mut payload);
    write_frame(&mut stream, &payload)?;
    ClientFrame::Done.encode(&mut payload);
    write_frame(&mut stream, &payload)?;
    stream.flush()?;

    // Everything streams back on the same connection: acks, verdicts
    // as they latch, the telemetry snapshot, then Finished.
    let mut buf = Vec::new();
    let mut accepted = 0u64;
    while let Some(bytes) = read_frame(&mut stream, &mut buf)? {
        match ServerFrame::decode(bytes)? {
            ServerFrame::Ack { id, status } => {
                println!("ack     device {id:>2}: {status:?}");
            }
            ServerFrame::Verdict(v) => {
                let outcome = if v.verdict.accepted() { "PASS" } else { "FAIL" };
                let detail = match v.verdict.as_static() {
                    Some(s) => format!(
                        "static  | {} DNL + {} INL failures over {} codes",
                        s.verdict.dnl_failures, s.verdict.inl_failures, s.verdict.codes_judged
                    ),
                    None => {
                        let d = v.verdict.as_dynamic().expect("static or dynamic");
                        format!(
                            "dynamic | SINAD {:6.2} dB, ENOB {:5.2} bits",
                            d.verdict.sinad_db, d.verdict.enob
                        )
                    }
                };
                if v.verdict.accepted() {
                    accepted += 1;
                }
                println!("verdict device {:>2}: {outcome} {detail}", v.id);
            }
            ServerFrame::Telemetry(json) => {
                println!("\nlive telemetry snapshot (flat perf-record JSON):\n{json}");
            }
            ServerFrame::Finished => {
                println!("finished: every accepted verdict delivered");
                break;
            }
        }
    }

    let report = handle.shutdown();
    println!(
        "\nshutdown drain: {} devices completed, {accepted} accepted, \
         {:.0} devices/s over {:.3} s uptime",
        report.telemetry.completed, report.telemetry.devices_per_s, report.telemetry.uptime_seconds,
    );
    Ok(())
}
