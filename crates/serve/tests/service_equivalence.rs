//! The service invariant, property-tested: for any fleet size, worker
//! count 1–16, lane width, arrival order, and static/dynamic mix, the
//! verdicts a resident service streams back are bit-identical to what
//! `Screener::run` reports for the same devices with the same
//! per-submission RNG streams.

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::screener::{Screener, Workload};
use bist_core::source::{SourceSpec, Zoo};
use bist_mc::batch::Batch;
use bist_serve::{submission_rng, JobKind, ServiceConfig, Submission};
use proptest::prelude::*;

fn static_workload() -> Workload {
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(5)
        .build()
        .expect("paper-range counter");
    Workload::static_ramp(config)
}

/// A short coherent record keeps each case cheap while exercising the
/// Goertzel bank and lane pairing.
fn dyn_workload() -> Workload {
    Workload::dynamic_sine(DynamicConfig::new(Resolution::SIX_BIT, 512, 127).expect("coherent"))
}

/// The submissions of one generated fleet: mismatched six-bit devices,
/// ids 0..n, statics first, each with a seed derived from its id.
fn fleet(fleet_seed: u64, n_static: usize, n_dyn: usize) -> Vec<Submission> {
    let batch = Batch::paper_simulation(fleet_seed, n_static + n_dyn);
    (0..n_static + n_dyn)
        .map(|i| Submission {
            id: i as u64,
            kind: if i < n_static {
                JobKind::Static
            } else {
                JobKind::Dynamic
            },
            adc: batch.device(i),
            seed: fleet_seed ^ (i as u64).wrapping_mul(0x9e3779b9),
        })
        .collect()
}

/// Reference verdicts by submission id, via one `Screener::run` per
/// workload (single-worker in-thread engine). Rendered to `Debug`
/// strings so NaN-bearing dynamic verdicts still compare exactly.
fn reference(subs: &[Submission]) -> Vec<(u64, String)> {
    let mut expect = Vec::new();
    for (workload, kind) in [
        (static_workload(), JobKind::Static),
        (dyn_workload(), JobKind::Dynamic),
    ] {
        let group: Vec<&Submission> = subs.iter().filter(|s| s.kind == kind).collect();
        if group.is_empty() {
            continue;
        }
        let reports = Screener::new(workload).run(
            group
                .iter()
                .map(|s| (s.adc.clone(), submission_rng(s.seed))),
        );
        for report in reports {
            expect.push((group[report.device].id, format!("{:?}", report.verdict)));
        }
    }
    expect.sort();
    expect
}

/// A permutation of 0..n derived from `seed` (Fisher–Yates over a
/// splitmix stream), so arrival order is an explored dimension.
fn arrival_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Streamed verdicts ≡ `Screener::run`, any workers × lanes ×
    /// arrival order × workload mix.
    #[test]
    fn streamed_verdicts_match_screener_run(
        fleet_seed in any::<u64>(),
        n_static in 0usize..12,
        n_dyn in 0usize..5,
        workers in 1usize..17,
        lanes in 1usize..9,
        order_seed in any::<u64>(),
    ) {
        prop_assume!(n_static + n_dyn > 0);
        let subs = fleet(fleet_seed, n_static, n_dyn);
        let expect = reference(&subs);

        let handle = ServiceConfig::new()
            .with_workload(static_workload())
            .with_workload(dyn_workload())
            .with_workers(workers)
            .with_lane_width(lanes)
            .with_burst(4)
            .start();
        for &i in &arrival_order(subs.len(), order_seed) {
            let enq = handle.submit(subs[i].clone());
            prop_assert!(enq.is_accepted(), "default capacity fits the whole fleet");
        }
        let mut got = Vec::new();
        for _ in 0..subs.len() {
            let v = handle.recv_verdict().expect("stream open while devices in flight");
            got.push((v.id, format!("{:?}", v.verdict)));
        }
        got.sort();
        prop_assert_eq!(got, expect);

        let report = handle.shutdown();
        prop_assert_eq!(report.telemetry.completed, subs.len() as u64);
        prop_assert_eq!(report.telemetry.submitted, subs.len() as u64);
        prop_assert!(report.verdicts.is_empty(), "every verdict was already received");
    }
}

/// The zoo seam through the front door: a mixed flash/iid/SAR/pipeline
/// fleet built with `Submission::from_zoo` streams back verdicts
/// bit-identical to `Screener::run` over the same devices and noise
/// streams — the service needs no idea which architecture it screens.
#[test]
fn zoo_submissions_match_screener_run() {
    let zoo = Zoo::paper().with_seed(71);
    let n = 16u64;
    // Alternate workloads so both resident engines see every
    // architecture the zoo deals out.
    let subs: Vec<Submission> = (0..n)
        .map(|i| {
            let kind = if i % 2 == 0 {
                JobKind::Static
            } else {
                JobKind::Dynamic
            };
            Submission::from_zoo(kind, &zoo, i, 0xa11c_e5ed ^ i)
        })
        .collect();
    let census = zoo.census(n as usize);
    assert!(
        census.iter().filter(|&&c| c > 0).count() >= 3,
        "fleet of {n} should mix at least three architectures, got {census:?}"
    );
    let expect = reference(&subs);

    let handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workload(dyn_workload())
        .with_workers(4)
        .with_lane_width(3)
        .start();
    for sub in &subs {
        assert!(handle.submit(sub.clone()).is_accepted());
    }
    let mut got = Vec::new();
    for _ in 0..subs.len() {
        let v = handle
            .recv_verdict()
            .expect("stream open while devices in flight");
        got.push((v.id, format!("{:?}", v.verdict)));
    }
    got.sort();
    assert_eq!(got, expect);
    handle.shutdown();
}

/// `Submission::from_source` draws the very devices `Batch::of` would:
/// the service and the batch pipeline share one sampling seam.
#[test]
fn from_source_matches_batch_devices() {
    for source in [
        SourceSpec::paper_flash(),
        SourceSpec::paper_iid(),
        SourceSpec::paper_sar(),
        SourceSpec::paper_pipeline(),
    ] {
        let batch = Batch::of(source).seed(9).size(4);
        for i in 0..4u64 {
            let sub = Submission::from_source(JobKind::Static, source, 9, i, 55);
            assert_eq!(sub.id, i);
            assert_eq!(sub.seed, 55);
            assert_eq!(sub.adc, batch.device(i as usize), "{source} device {i}");
        }
    }
}
