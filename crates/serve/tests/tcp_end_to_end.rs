//! Full TCP round trips against a live service: submissions go out as
//! length-prefixed frames, acks and verdicts stream back, telemetry
//! arrives as flat perf-record JSON, and `Done` elicits `Finished`
//! only after every accepted verdict has been delivered.

use std::io::Write;
use std::net::TcpStream;

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::screener::{Screener, Workload};
use bist_mc::batch::Batch;
use bist_serve::protocol::{read_frame, write_frame};
use bist_serve::{
    submission_rng, AckStatus, ClientFrame, JobKind, ServerFrame, ServiceConfig, Submission,
};

fn static_workload() -> Workload {
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(5)
        .build()
        .expect("paper-range counter");
    Workload::static_ramp(config)
}

fn dyn_workload() -> Workload {
    Workload::dynamic_sine(DynamicConfig::new(Resolution::SIX_BIT, 512, 127).expect("coherent"))
}

fn send(stream: &mut TcpStream, frame: &ClientFrame) {
    let mut payload = Vec::new();
    frame.encode(&mut payload);
    write_frame(stream, &payload).expect("write frame");
    stream.flush().expect("flush");
}

fn recv(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Option<ServerFrame> {
    let bytes = read_frame(stream, buf).expect("read frame")?;
    Some(ServerFrame::decode(bytes).expect("decode server frame"))
}

/// Eight mixed devices over TCP: every submission acked `Accepted`,
/// every verdict bit-identical to `Screener::run`, telemetry parseable,
/// `Finished` after the last verdict.
#[test]
fn tcp_session_streams_reference_verdicts() {
    const N_STATIC: usize = 5;
    const N_DYN: usize = 3;
    let mut handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workload(dyn_workload())
        .with_workers(2)
        .start();
    let addr = handle.serve_tcp(0).expect("bind localhost");

    let batch = Batch::paper_simulation(1997, N_STATIC + N_DYN);
    let subs: Vec<Submission> = (0..N_STATIC + N_DYN)
        .map(|i| Submission {
            id: i as u64,
            kind: if i < N_STATIC {
                JobKind::Static
            } else {
                JobKind::Dynamic
            },
            adc: batch.device(i),
            seed: 7 + i as u64,
        })
        .collect();

    // Reference verdicts from the one-shot engine, keyed by id.
    let mut expect = Vec::new();
    for (workload, kind) in [
        (static_workload(), JobKind::Static),
        (dyn_workload(), JobKind::Dynamic),
    ] {
        let group: Vec<&Submission> = subs.iter().filter(|s| s.kind == kind).collect();
        let reports = Screener::new(workload).run(
            group
                .iter()
                .map(|s| (s.adc.clone(), submission_rng(s.seed))),
        );
        for report in reports {
            expect.push((group[report.device].id, format!("{:?}", report.verdict)));
        }
    }
    expect.sort();

    let mut stream = TcpStream::connect(addr).expect("connect");
    for sub in &subs {
        send(&mut stream, &ClientFrame::Submit(sub.clone()));
    }
    send(&mut stream, &ClientFrame::Telemetry);
    send(&mut stream, &ClientFrame::Done);

    let mut buf = Vec::new();
    let mut acks = Vec::new();
    let mut got = Vec::new();
    let mut telemetry_json = None;
    let mut finished = false;
    while let Some(frame) = recv(&mut stream, &mut buf) {
        match frame {
            ServerFrame::Ack { id, status } => {
                assert_eq!(status, AckStatus::Accepted, "device {id} should queue");
                acks.push(id);
            }
            ServerFrame::Verdict(v) => got.push((v.id, format!("{:?}", v.verdict))),
            ServerFrame::Telemetry(json) => telemetry_json = Some(json),
            ServerFrame::Finished => {
                finished = true;
                break;
            }
        }
    }
    assert!(finished, "session must end with Finished");
    acks.sort_unstable();
    assert_eq!(acks, (0..subs.len() as u64).collect::<Vec<_>>());
    got.sort();
    assert_eq!(got, expect, "TCP verdicts must match Screener::run");

    let json = telemetry_json.expect("telemetry snapshot requested");
    assert!(json.contains("\"metrics\""), "snapshot is perf-record JSON");
    assert!(json.contains("\"scenario\": \"bist_serve_telemetry\""));

    let report = handle.shutdown();
    assert_eq!(report.telemetry.completed, subs.len() as u64);
}

/// Two concurrent sessions reusing the same submission ids: bursts mix
/// jobs from every session, so routing must go by burst slot, not by
/// the caller-chosen id. Each client must get its own devices'
/// verdicts (bit-identical to `Screener::run` on its own fleet) and
/// both sessions must reach `Finished` — misrouting would starve one
/// writer of a verdict and hang it before `Finished`.
#[test]
fn colliding_ids_across_sessions_route_per_session() {
    const N: usize = 8;
    let mut handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workers(1)
        .start();
    let addr = handle.serve_tcp(0).expect("bind localhost");

    let run_client = |batch_seed: u64| {
        let batch = Batch::paper_simulation(batch_seed, N);
        let subs: Vec<Submission> = (0..N)
            .map(|i| Submission {
                // Both sessions use ids 0..N — deliberately colliding.
                id: i as u64,
                kind: JobKind::Static,
                adc: batch.device(i),
                seed: batch_seed * 1000 + i as u64,
            })
            .collect();
        let reports = Screener::new(static_workload())
            .run(subs.iter().map(|s| (s.adc.clone(), submission_rng(s.seed))));
        let mut expect: Vec<(u64, String)> = reports
            .iter()
            .map(|r| (subs[r.device].id, format!("{:?}", r.verdict)))
            .collect();
        expect.sort();

        let mut stream = TcpStream::connect(addr).expect("connect");
        for sub in &subs {
            send(&mut stream, &ClientFrame::Submit(sub.clone()));
        }
        send(&mut stream, &ClientFrame::Done);
        let mut buf = Vec::new();
        let mut got = Vec::new();
        let mut finished = false;
        while let Some(frame) = recv(&mut stream, &mut buf) {
            match frame {
                ServerFrame::Ack { id, status } => {
                    assert_eq!(status, AckStatus::Accepted, "device {id} should queue");
                }
                ServerFrame::Verdict(v) => got.push((v.id, format!("{:?}", v.verdict))),
                ServerFrame::Telemetry(_) => {}
                ServerFrame::Finished => {
                    finished = true;
                    break;
                }
            }
        }
        assert!(finished, "session {batch_seed} must reach Finished");
        got.sort();
        assert_eq!(
            got, expect,
            "session {batch_seed} got another session's verdicts"
        );
    };

    std::thread::scope(|s| {
        s.spawn(|| run_client(1));
        s.spawn(|| run_client(2));
    });
    handle.shutdown();
}

/// A service resident for statics only rejects dynamic submissions
/// with an explicit ack — and still screens the statics that follow.
#[test]
fn unrouted_kind_is_rejected_not_dropped() {
    let mut handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workers(1)
        .start();
    let addr = handle.serve_tcp(0).expect("bind localhost");

    let batch = Batch::paper_simulation(3, 2);
    let mut stream = TcpStream::connect(addr).expect("connect");
    send(
        &mut stream,
        &ClientFrame::Submit(Submission {
            id: 0,
            kind: JobKind::Dynamic,
            adc: batch.device(0),
            seed: 0,
        }),
    );
    send(
        &mut stream,
        &ClientFrame::Submit(Submission {
            id: 1,
            kind: JobKind::Static,
            adc: batch.device(1),
            seed: 1,
        }),
    );
    send(&mut stream, &ClientFrame::Done);

    let mut buf = Vec::new();
    let mut verdict_ids = Vec::new();
    let mut statuses = Vec::new();
    while let Some(frame) = recv(&mut stream, &mut buf) {
        match frame {
            ServerFrame::Ack { id, status } => statuses.push((id, status)),
            ServerFrame::Verdict(v) => verdict_ids.push(v.id),
            ServerFrame::Telemetry(_) => {}
            ServerFrame::Finished => break,
        }
    }
    statuses.sort_by_key(|&(id, _)| id);
    assert_eq!(
        statuses,
        vec![(0, AckStatus::Rejected), (1, AckStatus::Accepted)]
    );
    assert_eq!(verdict_ids, vec![1], "only the accepted device verdicts");
    handle.shutdown();
}

/// Malformed bytes close the session without taking the service down:
/// a fresh connection afterwards still screens devices.
#[test]
fn malformed_frame_closes_session_service_survives() {
    let mut handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workers(1)
        .start();
    let addr = handle.serve_tcp(0).expect("bind localhost");

    {
        let mut bad = TcpStream::connect(addr).expect("connect");
        // A frame with an unknown tag: the server drops the session.
        write_frame(&mut bad, &[0x5a, 1, 2, 3]).expect("write");
        bad.flush().expect("flush");
        let mut buf = Vec::new();
        // Read until EOF; the server may or may not flush partial
        // events first but must close.
        while read_frame(&mut bad, &mut buf).ok().flatten().is_some() {}
    }

    let mut stream = TcpStream::connect(addr).expect("service still listening");
    send(
        &mut stream,
        &ClientFrame::Submit(Submission {
            id: 42,
            kind: JobKind::Static,
            adc: Batch::paper_simulation(11, 1).device(0),
            seed: 11,
        }),
    );
    send(&mut stream, &ClientFrame::Done);
    let mut buf = Vec::new();
    let mut verdicts = 0;
    while let Some(frame) = recv(&mut stream, &mut buf) {
        match frame {
            ServerFrame::Verdict(v) => {
                assert_eq!(v.id, 42);
                verdicts += 1;
            }
            ServerFrame::Finished => break,
            _ => {}
        }
    }
    assert_eq!(verdicts, 1, "the service survives a poisoned session");
    handle.shutdown();
}
