//! The backpressure contract: a full submission queue answers `Busy`
//! handing the submission back, queue depth stays bounded, nothing is
//! ever lost, and shutdown completes every in-flight device.

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::config::BistConfig;
use bist_core::ring::Enqueue;
use bist_core::screener::Workload;
use bist_mc::batch::Batch;
use bist_serve::{JobKind, ServiceConfig, Submission};

fn static_workload() -> Workload {
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(5)
        .build()
        .expect("paper-range counter");
    Workload::static_ramp(config)
}

fn submissions(n: usize) -> Vec<Submission> {
    let batch = Batch::paper_simulation(97, n);
    (0..n)
        .map(|i| Submission {
            id: i as u64,
            kind: JobKind::Static,
            adc: batch.device(i),
            seed: i as u64,
        })
        .collect()
}

/// With a 2-slot queue, a 1-slot verdict ring and one worker, at most
/// four devices fit in the pipeline — flooding ten must answer `Busy`,
/// hand each turned-away submission back intact, keep the queue depth
/// bounded, and still deliver every verdict exactly once after a
/// drain-and-retry loop.
#[test]
fn full_queue_returns_busy_then_drains_without_loss() {
    const FLEET: usize = 10;
    let handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workers(1)
        .with_burst(1)
        .with_submit_capacity(2)
        .with_verdict_capacity(1)
        .start();

    let mut busy_responses = 0u64;
    let mut received = Vec::new();
    for sub in submissions(FLEET) {
        let mut pending = sub;
        loop {
            let depth = handle.telemetry().queue_depth;
            assert!(depth <= 2, "queue depth {depth} exceeded its bound");
            let submitted_id = pending.id;
            match handle.submit(pending) {
                Enqueue::Accepted => break,
                Enqueue::Busy(back) => {
                    busy_responses += 1;
                    assert_eq!(back.id, submitted_id, "Busy hands the same submission back");
                    // Draining one verdict frees pipeline space.
                    let v = handle.recv_verdict().expect("stream open");
                    received.push(v.id);
                    pending = back;
                }
                Enqueue::Closed(_) => panic!("service closed mid-test"),
            }
        }
    }
    assert!(
        busy_responses > 0,
        "a 10-device flood through a 4-slot pipeline must hit Busy"
    );
    while received.len() < FLEET {
        received.push(handle.recv_verdict().expect("stream open").id);
    }
    received.sort_unstable();
    let expect: Vec<u64> = (0..FLEET as u64).collect();
    assert_eq!(
        received, expect,
        "every accepted device verdicts exactly once"
    );

    let report = handle.shutdown();
    assert_eq!(report.telemetry.completed, FLEET as u64);
    assert_eq!(report.telemetry.busy, busy_responses);
    assert!(report.verdicts.is_empty());
}

/// Shutdown closes the front door but completes everything already
/// accepted: the drain report carries every unreceived verdict.
#[test]
fn shutdown_completes_in_flight_devices() {
    const FLEET: usize = 16;
    let handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workers(2)
        .start();
    for sub in submissions(FLEET) {
        assert!(handle.submit(sub).is_accepted());
    }
    let report = handle.shutdown();
    let mut ids: Vec<u64> = report.verdicts.iter().map(|v| v.id).collect();
    ids.sort_unstable();
    let expect: Vec<u64> = (0..FLEET as u64).collect();
    assert_eq!(ids, expect, "shutdown must drain every in-flight device");
    assert_eq!(report.telemetry.completed, FLEET as u64);
    assert_eq!(report.telemetry.queue_depth, 0);
}

/// `Busy` hands the submission back unchanged — never a dropped device.
#[test]
fn busy_returns_the_submission_intact() {
    let handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workers(1)
        .with_burst(1)
        .with_submit_capacity(1)
        .with_verdict_capacity(1)
        .start();
    let subs = submissions(8);
    let mut bounced = None;
    for sub in &subs {
        if let Enqueue::Busy(back) = handle.submit(sub.clone()) {
            bounced = Some(back);
            break;
        }
    }
    let back = bounced.expect("a 1-slot queue must bounce one of eight");
    assert!(
        subs.contains(&back),
        "Busy must return the submission unchanged"
    );
    handle.shutdown();
}
