//! Wire-protocol totality: every frame round-trips bit-exactly through
//! encode→decode, and malformed bytes produce typed errors — never a
//! panic, never a partial parse accepted.

use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_core::dynamic::DynamicVerdict;
use bist_core::harness::BistVerdict;
use bist_core::sequencer::{SeqDecision, SeqOutcome};
use bist_core::shard::ShardVerdict;
use bist_core::{DynChecks, ScreenVerdict};
use bist_mc::batch::Batch;
use bist_serve::protocol::{read_frame, write_frame, MAX_FRAME};
use bist_serve::{AckStatus, ClientFrame, JobKind, ProtoError, ServerFrame, Submission};
use proptest::prelude::*;

fn decision(tag: u8, at: u64) -> SeqDecision {
    match tag % 3 {
        0 => SeqDecision::Continue,
        1 => SeqDecision::AcceptEarly(at),
        _ => SeqDecision::RejectEarly(at),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Submissions — mismatched transfer functions included —
    /// round-trip bit-exactly.
    #[test]
    fn submit_roundtrips(
        id in any::<u64>(),
        seed in any::<u64>(),
        device_seed in any::<u64>(),
        dynamic in any::<bool>(),
    ) {
        let sub = Submission {
            id,
            kind: if dynamic { JobKind::Dynamic } else { JobKind::Static },
            adc: Batch::paper_simulation(device_seed, 1).device(0),
            seed,
        };
        let frame = ClientFrame::Submit(sub);
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        prop_assert_eq!(ClientFrame::decode(&buf).expect("round-trip"), frame);
    }

    /// Static and dynamic verdicts round-trip bit-exactly, early-stop
    /// decisions included.
    #[test]
    fn verdict_roundtrips(
        id in any::<u64>(),
        dec_tag in any::<u8>(),
        at in any::<u64>(),
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(),
        sinad in -200i32..200, thd in -200i32..200,
        mask in 0u8..32,
        dynamic in any::<bool>(),
    ) {
        let verdict = if dynamic {
            ScreenVerdict::Dynamic(SeqOutcome {
                decision: decision(dec_tag, at),
                verdict: DynamicVerdict {
                    sinad_db: f64::from(sinad) / 3.0,
                    thd_db: f64::from(thd) / 7.0,
                    enob: f64::from(sinad - thd) / 11.0,
                    noise_power_lsb2: f64::from(thd).abs() / 13.0,
                    samples: a,
                    expected_samples: b,
                    checks: DynChecks {
                        complete: mask & 1 != 0,
                        sinad: mask & 2 != 0,
                        thd: mask & 4 != 0,
                        enob: mask & 8 != 0,
                        noise: mask & 16 != 0,
                    },
                },
            })
        } else {
            ScreenVerdict::Static(SeqOutcome {
                decision: decision(dec_tag, at),
                verdict: BistVerdict {
                    codes_judged: a,
                    dnl_failures: b % 64,
                    inl_failures: c % 64,
                    functional_checks: c,
                    functional_mismatches: b % 7,
                    expected_codes: a % 65,
                    samples: b,
                },
            })
        };
        let frame = ServerFrame::Verdict(ShardVerdict { id, verdict });
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        prop_assert_eq!(ServerFrame::decode(&buf).expect("round-trip"), frame);
    }
}

#[test]
fn control_frames_roundtrip() {
    let mut buf = Vec::new();
    for frame in [ClientFrame::Telemetry, ClientFrame::Done] {
        frame.encode(&mut buf);
        assert_eq!(ClientFrame::decode(&buf).unwrap(), frame);
    }
    let frames = [
        ServerFrame::Ack {
            id: 7,
            status: AckStatus::Accepted,
        },
        ServerFrame::Ack {
            id: 8,
            status: AckStatus::Busy,
        },
        ServerFrame::Ack {
            id: 9,
            status: AckStatus::Rejected,
        },
        ServerFrame::Telemetry("{\"metrics\": {}}".to_owned()),
        ServerFrame::Finished,
    ];
    for frame in frames {
        frame.encode(&mut buf);
        assert_eq!(ServerFrame::decode(&buf).unwrap(), frame);
    }
}

#[test]
fn malformed_frames_error_without_panicking() {
    // Unknown tags.
    assert_eq!(ClientFrame::decode(&[0x7f]), Err(ProtoError::BadTag(0x7f)));
    assert_eq!(ServerFrame::decode(&[0x10]), Err(ProtoError::BadTag(0x10)));
    // Empty payload.
    assert_eq!(ClientFrame::decode(&[]), Err(ProtoError::Truncated));
    // Trailing bytes.
    assert_eq!(
        ClientFrame::decode(&[0x03, 0x00]),
        Err(ProtoError::Trailing)
    );
    // Truncated submission.
    let sub = Submission {
        id: 1,
        kind: JobKind::Static,
        adc: TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)),
        seed: 2,
    };
    let mut buf = Vec::new();
    ClientFrame::Submit(sub).encode(&mut buf);
    assert_eq!(
        ClientFrame::decode(&buf[..buf.len() - 3]),
        Err(ProtoError::Truncated)
    );
    // Transition-count mismatch: claim 7-bit resolution on a 6-bit body.
    // The resolution byte sits after tag(1) + id(8) + kind(1) + seed(8).
    let mut lying = buf.clone();
    lying[18] = 7;
    assert!(matches!(
        ClientFrame::decode(&lying),
        Err(ProtoError::BadSubmission(_))
    ));
    // Resolution outside the wire range.
    let mut zero_bits = buf.clone();
    zero_bits[18] = 0;
    assert!(matches!(
        ClientFrame::decode(&zero_bits),
        Err(ProtoError::BadSubmission(_))
    ));
    // Non-monotone transitions: swap the first two levels. They start
    // after the header (19 bytes) + low/high f64s (16) + count u32 (4).
    let mut swapped = buf.clone();
    let (lo, hi) = (39, 39 + 8);
    let tmp: Vec<u8> = swapped[lo..lo + 8].to_vec();
    let next: Vec<u8> = swapped[hi..hi + 8].to_vec();
    swapped[lo..lo + 8].copy_from_slice(&next);
    swapped[hi..hi + 8].copy_from_slice(&tmp);
    assert!(matches!(
        ClientFrame::decode(&swapped),
        Err(ProtoError::BadSubmission(_))
    ));
}

#[test]
fn framing_reads_what_it_writes() {
    let mut wire = Vec::new();
    let mut payload = Vec::new();
    let frames = [ClientFrame::Telemetry, ClientFrame::Done];
    for frame in &frames {
        frame.encode(&mut payload);
        write_frame(&mut wire, &payload).unwrap();
    }
    let mut reader = &wire[..];
    let mut buf = Vec::new();
    for expect in &frames {
        let bytes = read_frame(&mut reader, &mut buf).unwrap().expect("frame");
        assert_eq!(&ClientFrame::decode(bytes).unwrap(), expect);
    }
    assert!(
        read_frame(&mut reader, &mut buf).unwrap().is_none(),
        "clean EOF at a frame boundary"
    );
}

#[test]
fn framing_rejects_oversize_and_truncation() {
    // Oversized length prefix.
    let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
    let mut reader = &huge[..];
    let mut buf = Vec::new();
    assert!(read_frame(&mut reader, &mut buf).is_err());
    // Zero-length frame.
    let zero = 0u32.to_le_bytes();
    let mut reader = &zero[..];
    assert!(read_frame(&mut reader, &mut buf).is_err());
    // EOF inside the length prefix.
    let partial = [5u8, 0];
    let mut reader = &partial[..];
    assert!(read_frame(&mut reader, &mut buf).is_err());
    // EOF inside the body.
    let mut wire = Vec::new();
    write_frame(&mut wire, &[0x03]).unwrap();
    wire.pop();
    let mut reader = &wire[..];
    assert!(read_frame(&mut reader, &mut buf).is_err());
}

#[test]
fn writer_rejects_out_of_bounds_payloads() {
    // The sender fails fast (InvalidInput) instead of framing a
    // payload the peer would abort the session over.
    let mut wire = Vec::new();
    let err = write_frame(&mut wire, &[]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let oversize = vec![0u8; MAX_FRAME + 1];
    let err = write_frame(&mut wire, &oversize).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(wire.is_empty(), "nothing hits the wire on a rejected frame");
}
