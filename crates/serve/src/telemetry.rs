//! Live service telemetry: monotonically increasing counters bumped on
//! the ingest and verdict paths, snapshotted on demand into the same
//! flat-JSON `{"metrics": {...}}` shape `bist_bench::record_metrics`
//! parses and `perf_gate` diffs.
//!
//! Every counter is a relaxed atomic: telemetry observes the service,
//! it never synchronizes it — the rings' mutexes order the actual
//! submissions and verdicts, and a snapshot that is a few events stale
//! is exactly as useful as a perfectly coherent one. Wall-clock reads
//! (service uptime, devices/s) are metadata only and never influence a
//! verdict, which is what the inline `allow(determinism)` markers
//! assert.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bist_core::shard::ShardVerdict;
use bist_core::ScreenVerdict;

/// Shared counters for one running service.
#[derive(Debug)]
pub struct Telemetry {
    /// Service start time, for uptime and devices/s metadata.
    start: Instant,
    /// Submissions accepted into the queue.
    submitted: AtomicU64,
    /// Submissions turned away with `Enqueue::Busy`.
    busy: AtomicU64,
    /// Verdicts streamed back.
    completed: AtomicU64,
    /// Verdicts whose device-level decision was accept.
    accepted_devices: AtomicU64,
    /// Verdicts latched by an early-stop sequencer decision.
    early_stops: AtomicU64,
    /// Completed static-workload devices.
    static_done: AtomicU64,
    /// Completed dynamic-workload devices.
    dyn_done: AtomicU64,
}

impl Telemetry {
    /// Fresh counters, anchored at the current instant.
    pub fn new() -> Self {
        Telemetry {
            // bist-lint: allow(determinism) — service start anchor for uptime/devices-per-s metadata; never feeds a verdict
            start: Instant::now(),
            submitted: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            accepted_devices: AtomicU64::new(0),
            early_stops: AtomicU64::new(0),
            static_done: AtomicU64::new(0),
            dyn_done: AtomicU64::new(0),
        }
    }

    /// Counts one ingest attempt: `accepted` is whether the submission
    /// entered the queue (false = answered `Busy`).
    pub fn count_submit(&self, accepted: bool) {
        let counter = if accepted {
            &self.submitted
        } else {
            &self.busy
        };
        // ORDERING: Relaxed — monitoring counter; nothing reads it to
        // establish happens-before, the submit ring's mutex orders the
        // submissions themselves.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one streamed verdict.
    pub fn count_verdict(&self, verdict: &ShardVerdict) {
        // ORDERING: Relaxed — monitoring counters only (see above);
        // verdict delivery is ordered by the reply ring's mutex.
        self.completed.fetch_add(1, Ordering::Relaxed);
        if verdict.verdict.accepted() {
            // ORDERING: Relaxed — monitoring counter only.
            self.accepted_devices.fetch_add(1, Ordering::Relaxed);
        }
        if verdict.verdict.stopped_early() {
            // ORDERING: Relaxed — monitoring counter only.
            self.early_stops.fetch_add(1, Ordering::Relaxed);
        }
        let per_workload = match verdict.verdict {
            ScreenVerdict::Static(_) => &self.static_done,
            ScreenVerdict::Dynamic(_) => &self.dyn_done,
        };
        // ORDERING: Relaxed — monitoring counter only.
        per_workload.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the counters into an immutable snapshot. `queue_depth`
    /// and `verdict_depth` are the rings' current occupancy, passed in
    /// by the service which owns the rings.
    pub fn snapshot(&self, queue_depth: u64, verdict_depth: u64) -> TelemetrySnapshot {
        // bist-lint: allow(determinism) — uptime/devices-per-s are wall-clock metadata; never feed a verdict or report ordering
        let uptime_seconds = self.start.elapsed().as_secs_f64();
        // ORDERING: Relaxed — snapshot of monitoring counters; a few
        // events of staleness between fields is acceptable by design.
        let completed = self.completed.load(Ordering::Relaxed);
        // ORDERING: Relaxed — monitoring counter only (see above).
        let submitted = self.submitted.load(Ordering::Relaxed);
        // ORDERING: Relaxed — monitoring counter only.
        let busy = self.busy.load(Ordering::Relaxed);
        // ORDERING: Relaxed — monitoring counter only.
        let accepted_devices = self.accepted_devices.load(Ordering::Relaxed);
        // ORDERING: Relaxed — monitoring counter only.
        let early_stops = self.early_stops.load(Ordering::Relaxed);
        // ORDERING: Relaxed — monitoring counter only.
        let static_done = self.static_done.load(Ordering::Relaxed);
        // ORDERING: Relaxed — monitoring counter only.
        let dyn_done = self.dyn_done.load(Ordering::Relaxed);
        TelemetrySnapshot {
            submitted,
            busy,
            completed,
            accepted_devices,
            early_stops,
            static_done,
            dyn_done,
            queue_depth,
            verdict_depth,
            uptime_seconds,
            devices_per_s: if uptime_seconds > 0.0 {
                completed as f64 / uptime_seconds
            } else {
                0.0
            },
            early_stop_rate: if completed > 0 {
                early_stops as f64 / completed as f64
            } else {
                0.0
            },
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

/// One coherent-enough view of a running service's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySnapshot {
    /// Submissions accepted into the queue.
    pub submitted: u64,
    /// Submissions answered `Busy`.
    pub busy: u64,
    /// Verdicts streamed back.
    pub completed: u64,
    /// Devices whose verdict was accept.
    pub accepted_devices: u64,
    /// Verdicts latched early by the sequencer.
    pub early_stops: u64,
    /// Completed static-workload devices.
    pub static_done: u64,
    /// Completed dynamic-workload devices.
    pub dyn_done: u64,
    /// Submission-queue occupancy at snapshot time.
    pub queue_depth: u64,
    /// Verdicts pending delivery to the snapshotting consumer: the
    /// in-process verdict-ring occupancy for handle snapshots, or the
    /// session's undelivered-verdict count for TCP snapshots.
    pub verdict_depth: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Completed devices per uptime second.
    pub devices_per_s: f64,
    /// Fraction of completed verdicts that stopped early.
    pub early_stop_rate: f64,
}

impl TelemetrySnapshot {
    /// Renders the snapshot as the flat perf-record JSON shape the
    /// bench tooling (`record_metrics`, `perf_gate`) parses: one
    /// `"metrics"` object of numeric leaves.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"scenario\": \"bist_serve_telemetry\",\n  \"metrics\": {");
        let u = [
            ("submitted", self.submitted),
            ("busy", self.busy),
            ("completed", self.completed),
            ("accepted_devices", self.accepted_devices),
            ("early_stops", self.early_stops),
            ("static_done", self.static_done),
            ("dyn_done", self.dyn_done),
            ("queue_depth", self.queue_depth),
            ("verdict_depth", self.verdict_depth),
        ];
        let mut first = true;
        for (k, v) in u {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\n    \"{k}\": {v}"));
        }
        let f = [
            ("uptime_seconds", self.uptime_seconds),
            ("devices_per_s", self.devices_per_s),
            ("early_stop_rate", self.early_stop_rate),
        ];
        for (k, v) in f {
            s.push_str(&format!(",\n    \"{k}\": {v:?}"));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_flat_metrics() {
        let t = Telemetry::new();
        t.count_submit(true);
        t.count_submit(false);
        let snap = t.snapshot(3, 1);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.busy, 1);
        assert_eq!(snap.queue_depth, 3);
        let json = snap.to_json();
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"submitted\": 1"));
        assert!(json.contains("\"queue_depth\": 3"));
        assert!(json.contains("\"devices_per_s\""));
    }

    #[test]
    fn rates_guard_zero_denominators() {
        let t = Telemetry::new();
        let snap = t.snapshot(0, 0);
        assert_eq!(snap.early_stop_rate, 0.0);
        assert!(snap.devices_per_s.is_finite());
    }
}
