//! The length-prefixed localhost TCP protocol of the resident service.
//!
//! Framing: every message is `[len: u32 LE][tag: u8][body]`, where
//! `len` counts the tag plus body bytes. Integers are little-endian;
//! `f64` values travel as their IEEE-754 bit pattern (`to_bits`), so a
//! device's transition levels round-trip bit-exactly and the verdicts a
//! client reads are bit-identical to an in-process
//! [`Screener::run`](bist_core::screener::Screener::run).
//!
//! Client → server frames: [`ClientFrame::Submit`] (one device),
//! [`ClientFrame::Telemetry`] (request a snapshot),
//! [`ClientFrame::Done`] (no more submissions — answer with
//! [`ServerFrame::Finished`] once every accepted verdict has been
//! delivered). Server → client: [`ServerFrame::Ack`] per submission
//! (accepted / busy / rejected), [`ServerFrame::Verdict`] as each
//! device latches, [`ServerFrame::Telemetry`] (flat-JSON snapshot) and
//! [`ServerFrame::Finished`].
//!
//! Decoding is total: malformed bytes yield a [`ProtoError`], never a
//! panic — a submission is validated (resolution range, transition
//! count/order/finiteness, reference range) before any constructor
//! that asserts is called.

use std::fmt;
use std::io::{self, Read, Write};

use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_core::dynamic::DynamicVerdict;
use bist_core::harness::BistVerdict;
use bist_core::sequencer::{SeqDecision, SeqOutcome};
use bist_core::shard::{JobKind, ShardVerdict};
use bist_core::ScreenVerdict;

use crate::service::Submission;

/// Hard cap on one frame's payload. Bounds per-connection memory and
/// caps wire submissions at 18-bit devices (2^18 − 1 transition levels
/// ≈ 2 MiB); higher resolutions screen through the in-process door.
pub const MAX_FRAME: usize = 1 << 22;

/// Largest device resolution accepted over the wire (see
/// [`MAX_FRAME`]).
pub const MAX_WIRE_BITS: u32 = 18;

/// Submission acknowledgement status carried by [`ServerFrame::Ack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// Queued; a verdict will stream back.
    Accepted,
    /// The submission queue is full — retry after draining verdicts.
    Busy,
    /// The service cannot screen this submission (workload not
    /// resident, or the service is shutting down). Never retried.
    Rejected,
}

/// A frame the client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Submit one device for screening.
    Submit(Submission),
    /// Request a telemetry snapshot.
    Telemetry,
    /// No more submissions; deliver remaining verdicts then finish.
    Done,
}

/// A frame the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Acknowledges one submission by id.
    Ack {
        /// The submission id being acknowledged.
        id: u64,
        /// Whether it was queued, turned away busy, or rejected.
        status: AckStatus,
    },
    /// One device's verdict, tagged with its submission id.
    Verdict(ShardVerdict),
    /// A telemetry snapshot as flat perf-record JSON.
    Telemetry(String),
    /// All accepted verdicts have been delivered.
    Finished,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before the advertised fields.
    Truncated,
    /// Bytes remained after the last field.
    Trailing,
    /// Unknown frame tag.
    BadTag(u8),
    /// A submission failed validation.
    BadSubmission(&'static str),
    /// A telemetry payload was not UTF-8.
    BadUtf8,
    /// An enum discriminant was out of range.
    BadValue(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame body truncated"),
            ProtoError::Trailing => write!(f, "trailing bytes after frame body"),
            ProtoError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            ProtoError::BadSubmission(why) => write!(f, "invalid submission: {why}"),
            ProtoError::BadUtf8 => write!(f, "telemetry payload is not UTF-8"),
            ProtoError::BadValue(what) => write!(f, "field out of range: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Reads one length-prefixed frame into `buf`, returning `None` on a
/// clean EOF at a frame boundary.
pub fn read_frame<'a>(r: &mut impl Read, buf: &'a mut Vec<u8>) -> io::Result<Option<&'a [u8]>> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < len_bytes.len() {
        let n = r.read(&mut len_bytes[got..])?;
        if n == 0 {
            return if got == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                ))
            };
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(Some(&buf[..]))
}

/// Writes one length-prefixed frame (`payload` = tag + body). An empty
/// or over-[`MAX_FRAME`] payload fails here at the sender with
/// [`io::ErrorKind::InvalidInput`] — framing it anyway would make the
/// peer abort the whole session with `InvalidData` (and a payload past
/// `u32::MAX` would silently wrap in the length prefix).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() || payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} outside 1..={MAX_FRAME}", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.at).ok_or(ProtoError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let end = self.at.checked_add(4).ok_or(ProtoError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(ProtoError::Truncated)?;
        self.at = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let end = self.at.checked_add(8).ok_or(ProtoError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(ProtoError::Truncated)?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn rest(&mut self) -> &'a [u8] {
        let rest = &self.buf[self.at..];
        self.at = self.buf.len();
        rest
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Trailing)
        }
    }
}

const TAG_SUBMIT: u8 = 0x01;
const TAG_CLIENT_TELEMETRY: u8 = 0x02;
const TAG_DONE: u8 = 0x03;
const TAG_ACK: u8 = 0x81;
const TAG_VERDICT: u8 = 0x82;
const TAG_SERVER_TELEMETRY: u8 = 0x83;
const TAG_FINISHED: u8 = 0x84;

impl ClientFrame {
    /// Appends the frame's tag + body to `out` (cleared first).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            ClientFrame::Submit(sub) => {
                out.push(TAG_SUBMIT);
                out.extend_from_slice(&sub.id.to_le_bytes());
                out.push(match sub.kind {
                    JobKind::Static => 0,
                    JobKind::Dynamic => 1,
                });
                out.extend_from_slice(&sub.seed.to_le_bytes());
                out.push(sub.adc.resolution().bits() as u8);
                out.extend_from_slice(&sub.adc.low().0.to_bits().to_le_bytes());
                out.extend_from_slice(&sub.adc.high().0.to_bits().to_le_bytes());
                let transitions = sub.adc.transitions();
                out.extend_from_slice(&(transitions.len() as u32).to_le_bytes());
                for t in transitions {
                    out.extend_from_slice(&t.to_bits().to_le_bytes());
                }
            }
            ClientFrame::Telemetry => out.push(TAG_CLIENT_TELEMETRY),
            ClientFrame::Done => out.push(TAG_DONE),
        }
    }

    /// Decodes a client frame from one framed payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(payload);
        let tag = c.u8()?;
        let frame = match tag {
            TAG_SUBMIT => {
                let id = c.u64()?;
                let kind = match c.u8()? {
                    0 => JobKind::Static,
                    1 => JobKind::Dynamic,
                    _ => return Err(ProtoError::BadValue("job kind")),
                };
                let seed = c.u64()?;
                let bits = u32::from(c.u8()?);
                if bits == 0 || bits > MAX_WIRE_BITS {
                    return Err(ProtoError::BadSubmission("resolution outside 1..=18 bits"));
                }
                let resolution = Resolution::new(bits)
                    .map_err(|_| ProtoError::BadSubmission("invalid resolution"))?;
                let low = c.f64()?;
                let high = c.f64()?;
                if !(low.is_finite() && high.is_finite() && low < high) {
                    return Err(ProtoError::BadSubmission(
                        "reference range must be finite and ordered",
                    ));
                }
                let count = c.u32()? as usize;
                if count != resolution.transition_count() as usize {
                    return Err(ProtoError::BadSubmission("transition count mismatch"));
                }
                let mut transitions = Vec::with_capacity(count);
                for _ in 0..count {
                    transitions.push(c.f64()?);
                }
                if !transitions.iter().all(|t| t.is_finite()) {
                    return Err(ProtoError::BadSubmission("non-finite transition level"));
                }
                if !transitions.windows(2).all(|w| w[0] <= w[1]) {
                    return Err(ProtoError::BadSubmission(
                        "transition levels must be non-decreasing",
                    ));
                }
                let adc = TransferFunction::from_transitions(
                    resolution,
                    Volts(low),
                    Volts(high),
                    transitions,
                );
                ClientFrame::Submit(Submission {
                    id,
                    kind,
                    adc,
                    seed,
                })
            }
            TAG_CLIENT_TELEMETRY => ClientFrame::Telemetry,
            TAG_DONE => ClientFrame::Done,
            other => return Err(ProtoError::BadTag(other)),
        };
        c.finish()?;
        Ok(frame)
    }
}

fn encode_decision(decision: SeqDecision, out: &mut Vec<u8>) {
    let (tag, at) = match decision {
        SeqDecision::Continue => (0u8, 0u64),
        SeqDecision::AcceptEarly(at) => (1, at),
        SeqDecision::RejectEarly(at) => (2, at),
    };
    out.push(tag);
    out.extend_from_slice(&at.to_le_bytes());
}

fn decode_decision(c: &mut Cursor<'_>) -> Result<SeqDecision, ProtoError> {
    let tag = c.u8()?;
    let at = c.u64()?;
    match tag {
        0 => Ok(SeqDecision::Continue),
        1 => Ok(SeqDecision::AcceptEarly(at)),
        2 => Ok(SeqDecision::RejectEarly(at)),
        _ => Err(ProtoError::BadValue("sequencer decision")),
    }
}

impl ServerFrame {
    /// Appends the frame's tag + body to `out` (cleared first).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            ServerFrame::Ack { id, status } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&id.to_le_bytes());
                out.push(match status {
                    AckStatus::Accepted => 1,
                    AckStatus::Busy => 0,
                    AckStatus::Rejected => 2,
                });
            }
            ServerFrame::Verdict(v) => {
                out.push(TAG_VERDICT);
                out.extend_from_slice(&v.id.to_le_bytes());
                match &v.verdict {
                    ScreenVerdict::Static(o) => {
                        out.push(0);
                        encode_decision(o.decision, out);
                        for field in [
                            o.verdict.codes_judged,
                            o.verdict.dnl_failures,
                            o.verdict.inl_failures,
                            o.verdict.functional_checks,
                            o.verdict.functional_mismatches,
                            o.verdict.expected_codes,
                            o.verdict.samples,
                        ] {
                            out.extend_from_slice(&field.to_le_bytes());
                        }
                    }
                    ScreenVerdict::Dynamic(o) => {
                        out.push(1);
                        encode_decision(o.decision, out);
                        for field in [
                            o.verdict.sinad_db,
                            o.verdict.thd_db,
                            o.verdict.enob,
                            o.verdict.noise_power_lsb2,
                        ] {
                            out.extend_from_slice(&field.to_bits().to_le_bytes());
                        }
                        out.extend_from_slice(&o.verdict.samples.to_le_bytes());
                        out.extend_from_slice(&o.verdict.expected_samples.to_le_bytes());
                        let checks = &o.verdict.checks;
                        let mask = u8::from(checks.complete)
                            | u8::from(checks.sinad) << 1
                            | u8::from(checks.thd) << 2
                            | u8::from(checks.enob) << 3
                            | u8::from(checks.noise) << 4;
                        out.push(mask);
                    }
                }
            }
            ServerFrame::Telemetry(json) => {
                out.push(TAG_SERVER_TELEMETRY);
                out.extend_from_slice(json.as_bytes());
            }
            ServerFrame::Finished => out.push(TAG_FINISHED),
        }
    }

    /// Decodes a server frame from one framed payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(payload);
        let tag = c.u8()?;
        let frame = match tag {
            TAG_ACK => {
                let id = c.u64()?;
                let status = match c.u8()? {
                    1 => AckStatus::Accepted,
                    0 => AckStatus::Busy,
                    2 => AckStatus::Rejected,
                    _ => return Err(ProtoError::BadValue("ack status")),
                };
                ServerFrame::Ack { id, status }
            }
            TAG_VERDICT => {
                let id = c.u64()?;
                let verdict = match c.u8()? {
                    0 => {
                        let decision = decode_decision(&mut c)?;
                        ScreenVerdict::Static(SeqOutcome {
                            decision,
                            verdict: BistVerdict {
                                codes_judged: c.u64()?,
                                dnl_failures: c.u64()?,
                                inl_failures: c.u64()?,
                                functional_checks: c.u64()?,
                                functional_mismatches: c.u64()?,
                                expected_codes: c.u64()?,
                                samples: c.u64()?,
                            },
                        })
                    }
                    1 => {
                        let decision = decode_decision(&mut c)?;
                        let sinad_db = c.f64()?;
                        let thd_db = c.f64()?;
                        let enob = c.f64()?;
                        let noise_power_lsb2 = c.f64()?;
                        let samples = c.u64()?;
                        let expected_samples = c.u64()?;
                        let mask = c.u8()?;
                        ScreenVerdict::Dynamic(SeqOutcome {
                            decision,
                            verdict: DynamicVerdict {
                                sinad_db,
                                thd_db,
                                enob,
                                noise_power_lsb2,
                                samples,
                                expected_samples,
                                checks: bist_core::DynChecks {
                                    complete: mask & 1 != 0,
                                    sinad: mask & 2 != 0,
                                    thd: mask & 4 != 0,
                                    enob: mask & 8 != 0,
                                    noise: mask & 16 != 0,
                                },
                            },
                        })
                    }
                    _ => return Err(ProtoError::BadValue("verdict kind")),
                };
                ServerFrame::Verdict(ShardVerdict { id, verdict })
            }
            TAG_SERVER_TELEMETRY => {
                let json = std::str::from_utf8(c.rest()).map_err(|_| ProtoError::BadUtf8)?;
                ServerFrame::Telemetry(json.to_owned())
            }
            TAG_FINISHED => ServerFrame::Finished,
            other => return Err(ProtoError::BadTag(other)),
        };
        c.finish()?;
        Ok(frame)
    }
}
