//! # bist-serve
//!
//! The resident fleet-screening service: the production shape of the
//! paper's BIST methodology. Where [`bist_core::screener::Screener`]
//! screens one fleet per call, this crate keeps the screening engines
//! resident and ingests device submissions continuously — in-process
//! through [`ServiceHandle::submit`] or over a length-prefixed
//! localhost TCP protocol ([`protocol`]) — streaming each verdict back
//! the moment it latches.
//!
//! Three invariants define the service:
//!
//! 1. **Bounded everywhere.** Submissions and verdicts travel through
//!    fixed-capacity rings ([`bist_core::ring::Ring`]); overload
//!    surfaces as [`Enqueue::Busy`] with the submission handed back —
//!    memory never grows without bound and an accepted device is never
//!    dropped.
//! 2. **Allocation-free steady state.** Each worker owns a
//!    [`bist_core::shard::ResidentShard`] whose batch engines stay
//!    warm between bursts (proven by the counting-allocator test in
//!    `crates/core/tests/zero_alloc.rs`).
//! 3. **Worker-count determinism.** Verdicts are tagged with
//!    submission ids and each is bit-identical to what
//!    [`Screener::run`](bist_core::screener::Screener::run) reports
//!    for the same device, whatever the arrival order, burst grouping
//!    or worker count — gated continuously by the `service_soak` bench
//!    bin's `report_checksum`.
//!
//! ```
//! use bist_adc::spec::LinearitySpec;
//! use bist_adc::transfer::TransferFunction;
//! use bist_adc::types::{Resolution, Volts};
//! use bist_core::config::BistConfig;
//! use bist_core::shard::JobKind;
//! use bist_core::Workload;
//! use bist_serve::{ServiceConfig, Submission};
//!
//! let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
//!     .counter_bits(5)
//!     .build()
//!     .unwrap();
//! let handle = ServiceConfig::new()
//!     .with_workload(Workload::static_ramp(config))
//!     .with_workers(2)
//!     .start();
//! for id in 0..4u64 {
//!     let adc = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
//!     let enq = handle.submit(Submission { id, kind: JobKind::Static, adc, seed: id });
//!     assert!(enq.is_accepted());
//! }
//! let mut seen = 0;
//! while seen < 4 {
//!     let verdict = handle.recv_verdict().expect("stream open");
//!     assert!(verdict.verdict.accepted());
//!     seen += 1;
//! }
//! let report = handle.shutdown();
//! assert_eq!(report.telemetry.completed, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod protocol;
pub mod service;
pub mod telemetry;

pub use bist_core::ring::Enqueue;
pub use bist_core::shard::{JobKind, ShardVerdict};
pub use protocol::{AckStatus, ClientFrame, ProtoError, ServerFrame};
pub use service::{submission_rng, DrainReport, ServiceConfig, ServiceHandle, Submission};
pub use telemetry::{Telemetry, TelemetrySnapshot};
