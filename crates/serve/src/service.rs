//! The resident screening service: bounded ingest, resident worker
//! shards, streamed verdicts, graceful drain.
//!
//! ```text
//!  ServiceHandle::submit ──┐                         ┌─ in-process verdict ring ─ recv_verdict
//!                          ▼                         │
//!            bounded submit Ring<Job> ══ workers ════╡   (each worker: ResidentShard,
//!                          ▲             (resident)  │    engines warm across bursts)
//!  TCP sessions ───────────┘                         └─ per-session event ring ─ writer thread
//! ```
//!
//! Every queue is a bounded [`Ring`], so overload surfaces as
//! [`Enqueue::Busy`] at the front door (the submission handed back,
//! never dropped) and a slow verdict consumer backpressures the
//! workers (they block pushing, never buffer unboundedly). Workers are
//! plain threads, each owning a [`ResidentShard`] whose batch engines
//! stay warm between bursts — the steady state allocates nothing.
//! Verdicts are tagged with submission ids, and because every engine
//! verdict is bit-identical to the scalar screener for any lane
//! width/refill order, any arrival order, burst grouping, or worker
//! count streams back exactly the per-device reports
//! [`Screener::run`](bist_core::screener::Screener::run) would emit.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bist_adc::transfer::TransferFunction;
use bist_core::backend::BehavioralBackend;
use bist_core::batch::DEFAULT_LANE_WIDTH;
use bist_core::ring::{Enqueue, Ring};
use bist_core::sequencer::SequencerConfig;
use bist_core::shard::{JobKind, ResidentShard, ShardJob, ShardPlan, ShardVerdict};
use bist_core::source::{device_rng, DeviceSource, SourceSpec, Zoo};
use bist_core::Workload;
use rand::rngs::StdRng;

use crate::protocol::{self, AckStatus, ClientFrame, ServerFrame};
use crate::telemetry::{Telemetry, TelemetrySnapshot};

/// Builds the device RNG for a submission seed — the service-side
/// mirror of what a caller must use to reproduce a verdict with
/// [`Screener::run`](bist_core::screener::Screener::run): the same
/// seed through the one blessed seam, `bist_mc::batch::stream_rng`.
pub fn submission_rng(seed: u64) -> StdRng {
    bist_mc::batch::stream_rng(seed, &[])
}

/// One device submission: an id the verdict will echo, the workload to
/// run, the device's transfer function, and the seed of its noise
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// Caller-chosen id, echoed on the matching verdict.
    pub id: u64,
    /// Which resident workload screens this device.
    pub kind: JobKind,
    /// The device under test.
    pub adc: TransferFunction,
    /// Seed of the device's noise/dither stream (expanded via
    /// [`submission_rng`]).
    pub seed: u64,
}

impl Submission {
    /// Draws device `index` from an architecture `source` exactly as
    /// [`Batch::of`](bist_mc::Batch)`(source).seed(fleet_seed)` and
    /// [`Zoo`] do — through [`bist_core::source::device_rng`] — and
    /// wraps it for submission with id `index`. The noise stream is
    /// `noise_seed`, expanded service-side by [`submission_rng`], so a
    /// caller reproduces the verdict with
    /// [`Screener::run`](bist_core::screener::Screener::run) over
    /// `(device, submission_rng(noise_seed))`.
    pub fn from_source(
        kind: JobKind,
        source: impl Into<SourceSpec>,
        fleet_seed: u64,
        index: u64,
        noise_seed: u64,
    ) -> Self {
        let adc = source
            .into()
            .sample_transfer(&mut device_rng(fleet_seed, index as usize));
        Submission {
            id: index,
            kind,
            adc,
            seed: noise_seed,
        }
    }

    /// Wraps device `index` of a mixed-architecture [`Zoo`] for
    /// submission — the fleet entry point for heterogeneous silicon.
    /// The zoo picks the architecture and draws the device from its
    /// seeded streams; the submission carries it with id `index` and
    /// noise stream `noise_seed`.
    pub fn from_zoo(kind: JobKind, zoo: &Zoo, index: u64, noise_seed: u64) -> Self {
        Submission {
            id: index,
            kind,
            adc: zoo.device(index as usize),
            seed: noise_seed,
        }
    }
}

/// Configuration for a resident service — which workloads it is
/// resident for, engine knobs, and queue bounds.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Static workload, when the service screens [`JobKind::Static`]
    /// submissions. Must be a [`Workload::Static`] variant.
    pub static_workload: Option<Workload>,
    /// Dynamic workload, when the service screens [`JobKind::Dynamic`]
    /// submissions. Must be a [`Workload::Dynamic`] variant.
    pub dynamic_workload: Option<Workload>,
    /// Early-stop sequencing policy for both engines.
    pub sequencer: Option<SequencerConfig>,
    /// SoA lane width of each worker's batch engines.
    pub lane_width: usize,
    /// Worker-shard count (`0` = the host's available parallelism).
    pub workers: usize,
    /// Most submissions a worker claims per burst. Small bursts keep
    /// latency low under light load; large ones amortise the claim.
    pub burst: usize,
    /// Capacity of the bounded submission queue — the backpressure
    /// threshold at which `submit` answers [`Enqueue::Busy`].
    pub submit_capacity: usize,
    /// Capacity of each verdict ring (the in-process ring and each TCP
    /// session's event ring).
    pub verdict_capacity: usize,
}

impl ServiceConfig {
    /// A config with no workloads resident yet — set at least one of
    /// [`ServiceConfig::static_workload`] /
    /// [`ServiceConfig::dynamic_workload`] before [`ServiceConfig::start`].
    pub fn new() -> Self {
        ServiceConfig {
            static_workload: None,
            dynamic_workload: None,
            sequencer: None,
            lane_width: DEFAULT_LANE_WIDTH,
            workers: 0,
            burst: 32,
            submit_capacity: 1024,
            verdict_capacity: 1024,
        }
    }

    /// Makes the service resident for `workload` (either variant;
    /// routed by the workload's kind).
    pub fn with_workload(mut self, workload: Workload) -> Self {
        match workload {
            Workload::Static { .. } => self.static_workload = Some(workload),
            Workload::Dynamic { .. } => self.dynamic_workload = Some(workload),
        }
        self
    }

    /// Screens under the early-stop sequencer.
    pub fn with_sequencer(mut self, policy: SequencerConfig) -> Self {
        self.sequencer = Some(policy);
        self
    }

    /// Sets the worker-shard count (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the engines' SoA lane width (≥ 1).
    pub fn with_lane_width(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "the service needs at least one lane");
        self.lane_width = lanes;
        self
    }

    /// Sets the per-burst claim bound (≥ 1).
    pub fn with_burst(mut self, burst: usize) -> Self {
        assert!(burst >= 1, "the service needs a positive burst");
        self.burst = burst;
        self
    }

    /// Sets the submission-queue capacity (≥ 1).
    pub fn with_submit_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "the submit queue needs capacity");
        self.submit_capacity = capacity;
        self
    }

    /// Sets each verdict ring's capacity (≥ 1).
    pub fn with_verdict_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "the verdict rings need capacity");
        self.verdict_capacity = capacity;
        self
    }

    /// Starts the resident service: spawns the worker shards and
    /// returns the handle that submits, receives and shuts down.
    ///
    /// # Panics
    ///
    /// Panics when no workload is resident.
    pub fn start(self) -> ServiceHandle {
        ServiceHandle::start(self)
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new()
    }
}

/// Where a submission's verdict is delivered.
#[derive(Debug, Clone)]
enum Reply {
    /// The handle's in-process verdict ring.
    Local(Arc<Ring<ShardVerdict>>),
    /// A TCP session's event ring.
    Session(Arc<Session>),
}

impl Reply {
    /// Delivers one verdict, blocking on a full ring (backpressure) —
    /// a closed ring means the consumer is gone, so the verdict is
    /// released (the device *was* screened; nobody is listening).
    fn deliver(&self, verdict: ShardVerdict) {
        match self {
            Reply::Local(ring) => {
                let _ = ring.push(verdict);
            }
            Reply::Session(session) => {
                if session.events.push(SessionEvent::Verdict(verdict)).is_ok() {
                    // ORDERING: Relaxed — telemetry gauge only; the
                    // event ring's mutex orders the verdict itself.
                    session.verdict_depth.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// One queued unit of work: a submission, its expanded RNG, and where
/// the verdict goes.
#[derive(Debug)]
struct Job {
    id: u64,
    kind: JobKind,
    adc: TransferFunction,
    seed: u64,
    rng: StdRng,
    reply: Reply,
}

impl Job {
    fn into_submission(self) -> Submission {
        Submission {
            id: self.id,
            kind: self.kind,
            adc: self.adc,
            seed: self.seed,
        }
    }
}

/// State shared by the handle, the workers and every TCP session.
#[derive(Debug)]
struct SvcShared {
    submit: Ring<Job>,
    telemetry: Telemetry,
    plan: ShardPlan,
    burst: usize,
    verdict_capacity: usize,
}

impl SvcShared {
    fn accepts(&self, kind: JobKind) -> bool {
        match kind {
            JobKind::Static => self.plan.static_workload.is_some(),
            JobKind::Dynamic => self.plan.dynamic_workload.is_some(),
        }
    }

    /// The ingest seam shared by the in-process and TCP doors.
    fn submit_job(&self, sub: Submission, reply: Reply) -> Enqueue<Submission> {
        assert!(
            self.accepts(sub.kind),
            "service is not resident for {:?} submissions",
            sub.kind
        );
        let rng = submission_rng(sub.seed);
        let job = Job {
            id: sub.id,
            kind: sub.kind,
            adc: sub.adc,
            seed: sub.seed,
            rng,
            reply,
        };
        match self.submit.try_push(job) {
            Enqueue::Accepted => {
                self.telemetry.count_submit(true);
                Enqueue::Accepted
            }
            Enqueue::Busy(job) => {
                self.telemetry.count_submit(false);
                Enqueue::Busy(job.into_submission())
            }
            Enqueue::Closed(job) => Enqueue::Closed(job.into_submission()),
        }
    }

    fn snapshot(&self, verdict_depth: u64) -> TelemetrySnapshot {
        self.telemetry
            .snapshot(self.submit.len() as u64, verdict_depth)
    }
}

// bist-lint: hot-path — resident worker steady state: claim a burst, screen it, stream verdicts
/// One worker shard's life: block on the submit ring, top the burst up
/// without blocking, screen it through the resident engines, stream
/// each verdict to its submitter. Exits when the ring is closed and
/// drained, so accepted devices always complete. The burst and route
/// buffers are caller-owned so this loop allocates nothing once warm.
///
/// Verdicts are routed by burst slot index, not by the caller-chosen
/// submission id: ids are only unique per client, and one burst mixes
/// jobs from every TCP session plus the in-process handle, so two
/// clients reusing the same id must still each get their own verdict.
/// The shard echoes the slot index we tag each [`ShardJob`] with; the
/// `routes` table restores the caller's id before delivery.
fn worker_loop(
    shared: &SvcShared,
    shard: &mut ResidentShard<TransferFunction, StdRng, BehavioralBackend>,
    jobs: &mut Vec<Job>,
    routes: &mut Vec<(u64, Reply)>,
) {
    while let Some(first) = shared.submit.pop() {
        jobs.push(first);
        while jobs.len() < shared.burst {
            match shared.submit.try_pop() {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        routes.clear();
        for job in jobs.iter() {
            routes.push((job.id, job.reply.clone()));
        }
        let telemetry = &shared.telemetry;
        shard.process(
            jobs.drain(..).enumerate().map(|(slot, job)| ShardJob {
                id: slot as u64,
                kind: job.kind,
                adc: job.adc,
                rng: job.rng,
            }),
            |verdict| {
                let (id, reply) = &routes[verdict.id as usize];
                let verdict = ShardVerdict {
                    id: *id,
                    verdict: verdict.verdict,
                };
                telemetry.count_verdict(&verdict);
                reply.deliver(verdict);
            },
        );
    }
}

/// What [`ServiceHandle::shutdown`] drained: the verdicts of every
/// device still in flight when shutdown began (beyond those already
/// received), plus the final telemetry.
#[derive(Debug)]
pub struct DrainReport {
    /// Verdicts completed during the drain, in completion order.
    pub verdicts: Vec<ShardVerdict>,
    /// Final counter snapshot.
    pub telemetry: TelemetrySnapshot,
}

/// A running resident service. Dropping the handle shuts the service
/// down (without draining); prefer [`ServiceHandle::shutdown`].
#[derive(Debug)]
pub struct ServiceHandle {
    shared: Arc<SvcShared>,
    verdicts: Arc<Ring<ShardVerdict>>,
    workers: Vec<JoinHandle<()>>,
    listener: Option<ListenerHandle>,
}

#[derive(Debug)]
struct ListenerHandle {
    thread: JoinHandle<()>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServiceHandle {
    /// Starts the service described by `config` (see
    /// [`ServiceConfig::start`]).
    pub fn start(config: ServiceConfig) -> ServiceHandle {
        assert!(
            config.static_workload.is_some() || config.dynamic_workload.is_some(),
            "the service needs at least one resident workload"
        );
        let plan = ShardPlan {
            static_workload: config.static_workload,
            dynamic_workload: config.dynamic_workload,
            sequencer: config.sequencer,
            lane_width: config.lane_width,
        };
        let shared = Arc::new(SvcShared {
            submit: Ring::with_capacity(config.submit_capacity),
            telemetry: Telemetry::new(),
            plan,
            burst: config.burst.max(1),
            verdict_capacity: config.verdict_capacity,
        });
        let verdicts = Arc::new(Ring::with_capacity(config.verdict_capacity));
        let workers = (0..bist_core::pool::resolve_workers(config.workers))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bist-serve-worker-{i}"))
                    .spawn(move || {
                        let mut shard = ResidentShard::new(&shared.plan, BehavioralBackend);
                        let mut jobs = Vec::with_capacity(shared.burst);
                        let mut routes = Vec::with_capacity(shared.burst);
                        worker_loop(&shared, &mut shard, &mut jobs, &mut routes);
                    })
                    .expect("spawn worker shard")
            })
            .collect();
        ServiceHandle {
            shared,
            verdicts,
            workers,
            listener: None,
        }
    }

    /// Submits one device through the in-process front door. The
    /// verdict streams to [`ServiceHandle::recv_verdict`] tagged with
    /// `sub.id`. [`Enqueue::Busy`] hands the submission back — drain
    /// some verdicts, then retry.
    ///
    /// # Panics
    ///
    /// Panics when the service is not resident for `sub.kind` — a
    /// routing bug, not load.
    pub fn submit(&self, sub: Submission) -> Enqueue<Submission> {
        self.shared
            .submit_job(sub, Reply::Local(Arc::clone(&self.verdicts)))
    }

    /// Receives the next verdict, blocking until one arrives. `None`
    /// only after [`ServiceHandle::shutdown`] closed the stream.
    pub fn recv_verdict(&self) -> Option<ShardVerdict> {
        self.verdicts.pop()
    }

    /// Receives the next verdict without blocking.
    pub fn try_recv_verdict(&self) -> Option<ShardVerdict> {
        self.verdicts.try_pop()
    }

    /// A live telemetry snapshot.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.shared.snapshot(self.verdicts.len() as u64)
    }

    /// Opens the TCP front door on `127.0.0.1` (port 0 = ephemeral),
    /// returning the bound address. One listener per service.
    pub fn serve_tcp(&mut self, port: u16) -> std::io::Result<SocketAddr> {
        assert!(self.listener.is_none(), "the TCP door is already open");
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&self.shared);
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("bist-serve-listener".to_owned())
            .spawn(move || listener_loop(listener, shared, stop_flag))
            .expect("spawn listener");
        self.listener = Some(ListenerHandle { thread, addr, stop });
        Ok(addr)
    }

    /// The TCP door's address, when open.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().map(|l| l.addr)
    }

    /// Gracefully stops the service: closes the front door, lets the
    /// workers drain every queued submission, and collects the
    /// verdicts of the drained devices (in-process submissions only;
    /// TCP sessions stream theirs to their own clients). Devices
    /// accepted before shutdown are never dropped.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.submit.close();
        let mut verdicts = Vec::new();
        loop {
            while let Some(v) = self.verdicts.try_pop() {
                verdicts.push(v);
            }
            if self.workers.iter().all(JoinHandle::is_finished) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        while let Some(v) = self.verdicts.try_pop() {
            verdicts.push(v);
        }
        self.verdicts.close();
        self.stop_listener();
        let telemetry = self.shared.snapshot(0);
        DrainReport {
            verdicts,
            telemetry,
        }
    }

    fn stop_listener(&mut self) {
        if let Some(listener) = self.listener.take() {
            // ORDERING: Relaxed — the wake-up connect below forms the
            // actual synchronization: accept() returns after this
            // store, and the listener re-reads the flag per iteration.
            listener.stop.store(true, Ordering::Relaxed);
            let _ = TcpStream::connect(listener.addr);
            let _ = listener.thread.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shared.submit.close();
        self.verdicts.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stop_listener();
    }
}

/// Per-TCP-session state shared between its reader and writer threads.
#[derive(Debug)]
struct Session {
    /// Events bound for the client, in delivery order. The writer
    /// thread is the stream's only writer; acks, verdicts and
    /// telemetry all funnel through here.
    events: Ring<SessionEvent>,
    /// Number of accepted submissions, published by the reader when
    /// the client says `Done`; `u64::MAX` until then.
    expected: AtomicU64,
    /// Verdicts sitting in `events` not yet written to the client —
    /// the session's `verdict_depth` telemetry gauge. Tracked
    /// separately because `events` also carries acks and telemetry,
    /// which would overstate pending verdicts.
    verdict_depth: AtomicU64,
}

#[derive(Debug)]
enum SessionEvent {
    Ack {
        id: u64,
        status: AckStatus,
    },
    Verdict(ShardVerdict),
    Telemetry(String),
    /// The reader finished; the writer re-checks its exit condition.
    Flush,
}

fn listener_loop(listener: TcpListener, shared: Arc<SvcShared>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        // ORDERING: Relaxed — see stop_listener: the wake-up connect
        // synchronizes shutdown; this flag only has to become visible
        // eventually, and the accept wake guarantees a fresh check.
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let session = Arc::new(Session {
            events: Ring::with_capacity(shared.verdict_capacity),
            expected: AtomicU64::new(u64::MAX),
            verdict_depth: AtomicU64::new(0),
        });
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let writer_session = Arc::clone(&session);
        let writer = std::thread::Builder::new()
            .name("bist-serve-session-writer".to_owned())
            .spawn(move || session_writer(write_half, writer_session));
        if writer.is_err() {
            continue;
        }
        let reader_shared = Arc::clone(&shared);
        let reader_session = Arc::clone(&session);
        let spawned = std::thread::Builder::new()
            .name("bist-serve-session-reader".to_owned())
            .spawn(move || session_reader(stream, reader_shared, reader_session));
        if spawned.is_err() {
            // No reader will ever push Flush: close the event ring so
            // the already-running writer's pop returns None and it
            // exits instead of blocking on a dead session forever.
            session.events.close();
        }
    }
}

/// Parses client frames and feeds the ingest seam. All session replies
/// (acks, telemetry) travel through the event ring so the writer owns
/// the stream exclusively.
fn session_reader(stream: TcpStream, shared: Arc<SvcShared>, session: Arc<Session>) {
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    let mut accepted = 0u64;
    while let Ok(Some(bytes)) = protocol::read_frame(&mut reader, &mut buf) {
        match ClientFrame::decode(bytes) {
            Ok(ClientFrame::Submit(sub)) => {
                let id = sub.id;
                let status = if !shared.accepts(sub.kind) {
                    AckStatus::Rejected
                } else {
                    match shared.submit_job(sub, Reply::Session(Arc::clone(&session))) {
                        Enqueue::Accepted => {
                            accepted += 1;
                            AckStatus::Accepted
                        }
                        Enqueue::Busy(_) => AckStatus::Busy,
                        Enqueue::Closed(_) => AckStatus::Rejected,
                    }
                };
                if session
                    .events
                    .push(SessionEvent::Ack { id, status })
                    .is_err()
                {
                    break;
                }
            }
            Ok(ClientFrame::Telemetry) => {
                // ORDERING: Relaxed — telemetry gauge read; a
                // momentarily stale depth is fine by design.
                let pending = session.verdict_depth.load(Ordering::Relaxed);
                let json = shared.snapshot(pending).to_json();
                if session.events.push(SessionEvent::Telemetry(json)).is_err() {
                    break;
                }
            }
            Ok(ClientFrame::Done) | Err(_) => break,
        }
    }
    // ORDERING: Relaxed — the event ring's mutex orders this store:
    // the writer reads `expected` only after popping the Flush event
    // pushed below (or any later event), which happens-after the push,
    // which happens-after this store in program order under the lock.
    session.expected.store(accepted, Ordering::Relaxed);
    let _ = session.events.push(SessionEvent::Flush);
}

/// Streams session events to the client, finishing once every accepted
/// verdict has been delivered after the reader is done.
fn session_writer(stream: TcpStream, session: Arc<Session>) {
    let mut writer = BufWriter::new(stream);
    let mut frame = Vec::new();
    let mut delivered = 0u64;
    // Finishing is gated on having popped the Flush event itself — not
    // just on the `expected` atomic, which becomes visible before
    // Flush pops. The ring is FIFO, so once Flush is out every ack and
    // telemetry event the reader queued before it has already been
    // written; only in-flight verdicts can remain after it.
    let mut input_done = false;
    loop {
        if input_done {
            // ORDERING: Relaxed — stored before the Flush push; the
            // ring's mutex makes it visible once Flush has popped (see
            // session_reader), which `input_done` asserts.
            let expected = session.expected.load(Ordering::Relaxed);
            if delivered >= expected {
                ServerFrame::Finished.encode(&mut frame);
                let _ = protocol::write_frame(&mut writer, &frame);
                let _ = writer.flush();
                break;
            }
        }
        let Some(event) = session.events.pop() else {
            break;
        };
        let server_frame = match event {
            SessionEvent::Ack { id, status } => Some(ServerFrame::Ack { id, status }),
            SessionEvent::Verdict(v) => {
                delivered += 1;
                // ORDERING: Relaxed — telemetry gauge only, mirroring
                // the fetch_add in Reply::deliver.
                session.verdict_depth.fetch_sub(1, Ordering::Relaxed);
                Some(ServerFrame::Verdict(v))
            }
            SessionEvent::Telemetry(json) => Some(ServerFrame::Telemetry(json)),
            SessionEvent::Flush => {
                input_done = true;
                None
            }
        };
        if let Some(sf) = server_frame {
            sf.encode(&mut frame);
            if protocol::write_frame(&mut writer, &frame).is_err() || writer.flush().is_err() {
                break;
            }
        }
    }
    // Unblocks workers still delivering to a dead session: their
    // pushes fail fast instead of blocking forever.
    session.events.close();
}
