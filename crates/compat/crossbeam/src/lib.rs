//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The adc-bist workspace builds in hermetic environments with no access
//! to crates.io, so this crate provides the one piece of crossbeam the
//! workspace uses — [`channel::bounded`] — as a thin wrapper over
//! `std::sync::mpsc::sync_channel`. The semantics the workspace relies
//! on (blocking bounded sends, sender cloning, iteration draining the
//! channel until every sender is dropped) are identical.
//!
//! ```
//! use crossbeam::channel;
//!
//! let (tx, rx) = channel::bounded(2);
//! std::thread::scope(|scope| {
//!     for i in 0..3u32 {
//!         let tx = tx.clone();
//!         scope.spawn(move || tx.send(i).expect("receiver alive"));
//!     }
//!     drop(tx);
//!     let mut got: Vec<u32> = rx.into_iter().collect();
//!     got.sort_unstable();
//!     assert_eq!(got, [0, 1, 2]);
//! });
//! ```

#![warn(missing_docs)]

/// Multi-producer channels (the `crossbeam-channel` API subset).
pub mod channel {
    /// The sending half of a bounded channel; clone it once per producer.
    pub use std::sync::mpsc::SyncSender as Sender;

    /// The receiving half; iterating blocks until all senders hang up.
    pub use std::sync::mpsc::Receiver;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub use std::sync::mpsc::SendError;

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_drains_after_senders_drop() {
        let (tx, rx) = channel::bounded(4);
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let tx = tx.clone();
                scope.spawn(move || tx.send(w).expect("receiver outlives workers"));
            }
            drop(tx);
            let mut seen: Vec<u64> = rx.into_iter().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..8).collect::<Vec<_>>());
        });
    }
}
