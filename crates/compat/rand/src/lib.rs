//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The adc-bist workspace builds in hermetic environments with no access
//! to crates.io, so this crate provides the (small) subset of the `rand`
//! 0.8 API the workspace actually uses — [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — backed by a
//! deterministic xoshiro256\*\* generator seeded through SplitMix64.
//!
//! Everything in the workspace that consumes randomness is seeded
//! explicitly, so determinism (same seed ⇒ same stream on every
//! platform) is the property that matters, not the exact stream the real
//! `rand` crate would produce.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let xs: Vec<f64> = (0..4).map(|_| a.gen_range(0.0..1.0)).collect();
//! let ys: Vec<f64> = (0..4).map(|_| b.gen_range(0.0..1.0)).collect();
//! assert_eq!(xs, ys);
//! assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
//! ```

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The raw random-word interface: everything else is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (the high half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like `rand_core` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let x = self.start + (self.end - self.start) * u;
        // Guard against `start + span * u` rounding up to `end`.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "gen_range: empty range");
        a + (b - a) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64()) as f32;
        let x = self.start + (self.end - self.start) * u;
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

/// Lemire's unbiased multiply-shift rejection sampler on `[0, span)`.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Threshold for rejecting the biased low zone: (2^64 - span) % span.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sample_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return (a as i128 + rng.next_u64() as i128) as $t;
                }
                let off = sample_below(rng, span as u64);
                (a as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The generators themselves.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*
    /// (Blackman & Vigna), seeded through SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` this generator is guaranteed
    /// stable across releases — experiment tables cite seeds, so the
    /// stream must never change.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// One step of the SplitMix64 sequence, used for seed expansion.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-7i64..13);
            assert!((-7..13).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let z = rng.gen_range(1u32..=15);
            assert!((1..=15).contains(&z));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
            if x < 0.0 {
                lo_half += 1;
            }
        }
        // Crude uniformity check: both halves get hit often.
        assert!(lo_half > 4_000 && lo_half < 6_000, "lo_half = {lo_half}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
