//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The adc-bist workspace builds in hermetic environments with no access
//! to crates.io, so this crate provides the criterion API subset the
//! workspace's `benches/perf.rs` uses — groups, `bench_function`,
//! `iter`/`iter_batched`, throughput annotation — as a small wall-clock
//! harness. It reports median-of-samples timings to stdout and performs
//! no statistical analysis, HTML reporting or regression detection; it
//! exists so `cargo bench` runs and the bench code cannot rot.
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default().measurement_time(std::time::Duration::from_millis(10));
//! let mut group = c.benchmark_group("demo");
//! group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//! group.finish();
//! ```

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimisation barrier.
pub use std::hint::black_box;

/// Top-level harness state: global defaults for warm-up and measurement
/// budgets, applied to every group it creates.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark warm-up budget.
    #[must_use]
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.warm_up_time = time;
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// How many work items one iteration of a benchmark processes; timings
/// are also reported per element/byte when set.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost; the stub runs one routine
/// call per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many per allocation.
    SmallInput,
    /// Inputs are expensive to hold; batch few.
    LargeInput,
    /// Create one input per iteration.
    PerIteration,
}

/// A named collection of benchmarks sharing throughput annotation and
/// sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: `routine` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`].
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(&self.name, &id, self.throughput);
        self
    }

    /// Ends the group. (The stub keeps no cross-group state; this exists
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Per-iteration wall-clock samples, in seconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also yields a rough per-call estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Choose a batch size so one sample costs roughly
        // measurement_time / sample_size.
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((sample_budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                start.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// inside the timed section.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let _ = warm_iters;

        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                let out = routine(input);
                let sample = start.elapsed().as_secs_f64();
                black_box(out);
                sample
            })
            .collect();
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no measurement taken");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!(", {:.3e} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!(", {:.3e} B/s", n as f64 / median)
            }
            _ => String::new(),
        };
        println!("{group}/{id}: median {}{rate}", format_seconds(median));
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a function running a list of benchmark targets, mirroring
/// criterion's `criterion_group!` (both the plain and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn group_macro_forms_compile() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("macro");
            g.sample_size(2);
            g.throughput(Throughput::Elements(1));
            g.bench_function("noop", |b| b.iter(|| black_box(1u32)));
            g.finish();
        }
        criterion_group!(
            name = benches;
            config = Criterion::default()
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2));
            targets = target
        );
        benches();
    }
}
