//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The adc-bist workspace builds in hermetic environments with no access
//! to crates.io, so this crate reimplements the subset of proptest the
//! workspace's property tests use: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with range / collection / `prop_map`
//! strategies, [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, deliberate for a hermetic test
//! substrate:
//!
//! * **Deterministic**: cases are generated from a seed derived from the
//!   test's name, so failures reproduce exactly on every run and host.
//! * **No shrinking**: a failing case reports the assertion message and
//!   case number; inputs are regenerable from the determinism above.
//!
//! ```
//! use proptest::prelude::*;
//!
//! // In a `#[cfg(test)]` module you would also write `#[test]` above
//! // the function, exactly like with the real crate.
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//!
//! addition_commutes();
//! ```

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree or shrinking: a
    /// strategy is just a deterministic sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Returns a strategy applying `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Types with a canonical strategy, reachable through [`crate::arbitrary::any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical whole-domain strategy used by [`Arbitrary`] impls.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u8..2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;

        fn arbitrary() -> Self::Strategy {
            Any::default()
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }

            impl Arbitrary for $t {
                type Strategy = Any<$t>;

                fn arbitrary() -> Self::Strategy {
                    Any::default()
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! Entry point for canonical per-type strategies.

    use crate::strategy::Arbitrary;

    /// Returns the canonical strategy for `T` (e.g. `any::<bool>()`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A length or range of lengths for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy generating vectors of `element` values with
    /// lengths in `size` (a fixed `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and the (minimal) runner state.

    /// The deterministic generator property tests draw from.
    pub type TestRng = rand::rngs::StdRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected ([`crate::prop_assume!`]) cases tolerated
        /// before the test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Returns the default configuration with `cases` overridden.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A [`crate::prop_assume!`] precondition failed; the case is
        /// skipped without counting towards `cases`.
        Reject,
    }

    impl TestCaseError {
        /// Builds the failure variant from any message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self::Fail(message.into())
        }
    }

    /// Derives a per-test seed from the test's name (FNV-1a), so every
    /// test gets a distinct but reproducible case sequence.
    pub fn rng_for_test(test_name: &str) -> TestRng {
        use rand::SeedableRng;

        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, ...).

        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case (without failing) when a precondition the
/// strategy cannot express does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` against `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;

            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest {}: too many prop_assume! rejections ({rejected})",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{msg}",
                            stringify!($name), passed + 1, config.cases,
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_collections(
            xs in prop::collection::vec(-2.0f64..2.0, 0..10),
            n in 1u32..=15,
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 10);
            prop_assert!(xs.iter().all(|x| (-2.0..2.0).contains(x)));
            prop_assert!((1..=15).contains(&n));
            prop_assert_eq!(u32::from(flag) * 2, if flag { 2 } else { 0 });
        }

        #[test]
        fn prop_map_applies(doubled in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 200);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "message: {msg}");
    }
}
