//! Seeded device-batch generation.
//!
//! Two device models, mirroring the paper's sim/measurement split:
//!
//! * [`DeviceModel::IidWidths`] — code widths drawn iid from the §3
//!   Gaussian (the *simulation* model behind Tables 1–2).
//! * [`DeviceModel::PhysicalFlash`] — the resistor-ladder + comparator
//!   flash of `bist-adc` (the stand-in for the paper's 364 measured
//!   devices; its widths acquire the Eq. 10 correlation naturally).
//!
//! Devices are generated from `(seed, index)` so batches are
//! reproducible and independent of threading.

use bist_adc::flash::FlashConfig;
use bist_adc::transfer::{Adc, TransferFunction};
use bist_adc::types::{Resolution, Volts};
use bist_core::analytic::WidthDistribution;
use bist_dsp::special::normal_quantile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How batch devices are modelled.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DeviceModel {
    /// Transfer functions with iid Gaussian code widths (theory model).
    IidWidths(WidthDistribution),
    /// Behavioural flash converters with ladder/comparator mismatch.
    PhysicalFlash(FlashConfig),
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceModel::IidWidths(d) => {
                write!(f, "iid widths (σ {} LSB)", d.sigma())
            }
            DeviceModel::PhysicalFlash(c) => {
                write!(
                    f,
                    "physical flash (σ_w {:.3} LSB)",
                    c.code_width_sigma_lsb()
                )
            }
        }
    }
}

/// A reproducible batch descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Batch {
    /// Device model.
    pub model: DeviceModel,
    /// Converter resolution.
    pub resolution: Resolution,
    /// Master seed; device `i` derives its RNG from `(seed, i)`.
    pub seed: u64,
    /// Number of devices.
    pub size: usize,
}

impl Batch {
    /// The paper's measured batch: 364 physical flash devices at the
    /// worst-case mismatch.
    pub fn paper_measurement(seed: u64) -> Self {
        Batch {
            model: DeviceModel::PhysicalFlash(FlashConfig::paper_device()),
            resolution: Resolution::SIX_BIT,
            seed,
            size: 364,
        }
    }

    /// A theory batch of iid-width devices at σ = 0.21 LSB.
    pub fn paper_simulation(seed: u64, size: usize) -> Self {
        Batch {
            model: DeviceModel::IidWidths(WidthDistribution::paper_worst_case()),
            resolution: Resolution::SIX_BIT,
            seed,
            size,
        }
    }

    /// The RNG for device `index` (stable mixing of seed and index).
    pub fn device_rng(&self, index: usize) -> StdRng {
        // SplitMix64 finaliser decorrelates consecutive indices.
        StdRng::seed_from_u64(splitmix_finalize(
            self.seed
                .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(index as u64 + 1)),
        ))
    }

    /// Generates device `index`'s transfer function.
    pub fn device(&self, index: usize) -> TransferFunction {
        let mut rng = self.device_rng(index);
        match self.model {
            DeviceModel::PhysicalFlash(cfg) => cfg
                .sample(&mut rng)
                .transfer()
                .expect("flash states its transfer"),
            DeviceModel::IidWidths(dist) => iid_width_transfer(self.resolution, &dist, &mut rng),
        }
    }

    /// Iterates over all devices in the batch.
    pub fn devices(&self) -> impl Iterator<Item = TransferFunction> + '_ {
        (0..self.size).map(move |i| self.device(i))
    }
}

/// The SplitMix64 finaliser behind every derived RNG stream in the
/// workspace.
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A reproducible RNG for an arbitrary tuple of stream coordinates —
/// the one mixing function behind every experiment-derived stream
/// (device generation, acquisition noise, per-cell sweeps), so stream
/// independence is auditable in one place.
///
/// Each coordinate is absorbed and finalised in turn, so streams differ
/// whenever any coordinate (or the coordinate order) differs; the empty
/// tuple just finalises the seed. Same-seed, same-coordinates calls are
/// bit-identical across threads, platforms and releases
/// ([`rand`]'s compat `StdRng` is pinned).
pub fn stream_rng(seed: u64, coords: &[u64]) -> StdRng {
    let mut z = seed;
    for &c in coords {
        z = splitmix_finalize(
            z.wrapping_add(0x9e3779b97f4a7c15)
                .wrapping_add(c.wrapping_mul(0x2545f4914f6cdd1d)),
        );
    }
    StdRng::seed_from_u64(splitmix_finalize(z))
}

/// Builds a transfer function whose inner-code widths are iid draws from
/// `dist` (clamped at zero — a negative draw becomes a missing code).
/// The first transition sits at its ideal position; the input range is
/// the ideal 6.4·(2ⁿ/64)-style span with 0.1 V/LSB.
pub fn iid_width_transfer<R: Rng + ?Sized>(
    resolution: Resolution,
    dist: &WidthDistribution,
    rng: &mut R,
) -> TransferFunction {
    let q = 0.1; // volts per LSB (arbitrary but fixed)
    let n_transitions = resolution.transition_count() as usize;
    let mut t = Vec::with_capacity(n_transitions);
    t.push(q); // T[1] ideal
    for _ in 1..n_transitions {
        let w_lsb = (dist.mean() + dist.sigma() * standard_normal(rng)).max(0.0);
        let prev = *t.last().expect("non-empty");
        t.push(prev + w_lsb * q);
    }
    // Keep the *nominal* range: accumulated width drift is a gain error,
    // and the LSB size (hence Δs) must stay referenced to the ideal LSB.
    // The harness ramp sweeps past the range far enough to close the
    // last code. Transitions above `high` are legal.
    let high = q * resolution.code_count() as f64;
    TransferFunction::from_transitions(resolution, Volts(0.0), Volts(high), t)
}

/// One standard-normal draw (Marsaglia polar method over `rand`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0f64..1.0);
        let v: f64 = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// Draws from a Gaussian truncated to `[lo, hi]` by inverse-CDF.
///
/// # Panics
///
/// Panics if the interval has negligible probability mass or `lo >= hi`.
pub fn truncated_normal<R: Rng + ?Sized>(
    mean: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> f64 {
    assert!(lo < hi, "lo must be below hi");
    let a = bist_dsp::special::gaussian_cdf(lo, mean, sigma);
    let b = bist_dsp::special::gaussian_cdf(hi, mean, sigma);
    assert!(b - a > 1e-300, "truncation interval has no mass");
    let u = rng.gen_range(a..b);
    mean + sigma * normal_quantile(u)
}

/// A conditioned "faulty" width vector: exactly one randomly-placed
/// width drawn from the out-of-spec region, the rest truncated in-spec.
///
/// Supports the rare-event check of Table 2: at the actual ±1 LSB spec,
/// `P(faulty) ≈ 1.4×10⁻⁴` and a faulty device almost surely has exactly
/// one bad code, so sampling that conditional law directly estimates
/// `P(accept | faulty)` without 10⁷ rejection draws.
///
/// # Panics
///
/// Panics when the spec window has no realisable out-of-spec tail mass
/// (both Gaussian tails numerically zero), since the conditional law is
/// then undefined.
pub fn conditional_faulty_widths<R: Rng + ?Sized>(
    dist: &WidthDistribution,
    spec: &bist_adc::spec::LinearitySpec,
    codes: usize,
    rng: &mut R,
) -> Vec<f64> {
    let (lo, hi) = spec.width_window_lsb();
    let mean = dist.mean();
    let sigma = dist.sigma();
    // With the window floored at zero a below-spec width cannot be
    // realised: widths clamp at 0, and a zero width is DNL = −1 exactly,
    // which sits *on* the inclusive spec limit and classifies good. All
    // conditional mass is then in the above tail.
    let p_below = if lo.0 > 0.0 {
        bist_dsp::special::gaussian_cdf(lo.0, mean, sigma)
    } else {
        0.0
    };
    let p_above = 1.0 - bist_dsp::special::gaussian_cdf(hi.0, mean, sigma);
    assert!(
        p_below + p_above > 0.0,
        "spec window ({}, {}) has no realisable tail mass at mean {mean}, sigma {sigma}: \
         the conditional faulty law is undefined",
        lo.0,
        hi.0
    );
    let bad_index = rng.gen_range(0..codes);
    (0..codes)
        .map(|i| {
            if i == bad_index {
                // Pick the tail side proportionally to its mass.
                let side_below = rng.gen_range(0.0..(p_below + p_above)) < p_below;
                let w = if side_below {
                    truncated_normal(mean, sigma, mean - 12.0 * sigma, lo.0, rng)
                } else {
                    truncated_normal(mean, sigma, hi.0, mean + 12.0 * sigma, rng)
                };
                w.max(0.0)
            } else {
                truncated_normal(mean, sigma, lo.0.max(0.0), hi.0, rng)
            }
        })
        .collect()
}

/// Builds a transfer function from explicit inner-code widths in LSB
/// (first transition ideal).
pub fn transfer_from_widths(resolution: Resolution, widths_lsb: &[f64]) -> TransferFunction {
    assert_eq!(
        widths_lsb.len() as u32,
        resolution.inner_code_count(),
        "need one width per inner code"
    );
    let q = 0.1;
    let mut t = Vec::with_capacity(resolution.transition_count() as usize);
    t.push(q);
    for &w in widths_lsb {
        let prev = *t.last().expect("non-empty");
        t.push(prev + w.max(0.0) * q);
    }
    let high = q * resolution.code_count() as f64;
    TransferFunction::from_transitions(resolution, Volts(0.0), Volts(high), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_adc::metrics::dnl;
    use bist_adc::spec::LinearitySpec;
    use bist_dsp::stats::Running;

    #[test]
    fn batches_are_reproducible() {
        let b = Batch::paper_simulation(42, 10);
        let a1 = b.device(3);
        let a2 = b.device(3);
        assert_eq!(a1.transitions(), a2.transitions());
        // Different indices differ.
        assert_ne!(b.device(3).transitions(), b.device(4).transitions());
        // Different seeds differ.
        let c = Batch::paper_simulation(43, 10);
        assert_ne!(b.device(3).transitions(), c.device(3).transitions());
    }

    #[test]
    fn iid_width_statistics_match() {
        let b = Batch::paper_simulation(7, 300);
        let mut acc = Running::new();
        for tf in b.devices() {
            for w in tf.code_widths_lsb() {
                acc.push(w.0);
            }
        }
        assert!((acc.mean() - 1.0).abs() < 0.01, "mean {}", acc.mean());
        assert!((acc.std_dev() - 0.21).abs() < 0.01, "sd {}", acc.std_dev());
    }

    #[test]
    fn paper_measurement_batch_size() {
        let b = Batch::paper_measurement(1);
        assert_eq!(b.size, 364);
        assert!(matches!(b.model, DeviceModel::PhysicalFlash(_)));
        // Yield under the stringent spec lands near the paper's 30 %.
        let spec = LinearitySpec::paper_stringent();
        let good = b.devices().filter(|tf| spec.classify(tf).good).count();
        let yield_frac = good as f64 / b.size as f64;
        assert!(
            (0.2..0.45).contains(&yield_frac),
            "yield {yield_frac} ({good}/364)"
        );
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let w = truncated_normal(1.0, 0.21, 0.5, 1.5, &mut rng);
            assert!((0.5..=1.5).contains(&w), "w {w}");
        }
    }

    #[test]
    #[should_panic(expected = "no mass")]
    fn truncated_normal_empty_region_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        truncated_normal(0.0, 0.01, 50.0, 51.0, &mut rng);
    }

    #[test]
    fn conditional_faulty_has_exactly_one_bad_width() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = LinearitySpec::paper_actual();
        let dist = WidthDistribution::paper_worst_case();
        for _ in 0..100 {
            let w = conditional_faulty_widths(&dist, &spec, 62, &mut rng);
            assert_eq!(w.len(), 62);
            let bad = w.iter().filter(|&&x| !(0.0..=2.0).contains(&x)).count()
                + w.iter().filter(|&&x| x == 0.0).count();
            // Exactly one width outside (0, 2): the planted one (clamped
            // zero widths count as bad too).
            assert_eq!(bad, 1, "{w:?}");
        }
    }

    #[test]
    fn conditional_faulty_device_classifies_faulty() {
        let mut rng = StdRng::seed_from_u64(11);
        let spec = LinearitySpec::paper_actual();
        let dist = WidthDistribution::paper_worst_case();
        let w = conditional_faulty_widths(&dist, &spec, 62, &mut rng);
        let tf = transfer_from_widths(Resolution::SIX_BIT, &w);
        assert!(!spec.classify(&tf).good);
    }

    #[test]
    fn transfer_from_widths_round_trips() {
        let widths = vec![1.0; 62];
        let tf = transfer_from_widths(Resolution::SIX_BIT, &widths);
        for d in dnl(&tf) {
            assert!(d.0.abs() < 1e-9);
        }
    }

    #[test]
    fn model_display() {
        let b = Batch::paper_simulation(1, 2);
        assert!(b.model.to_string().contains("iid"));
        let m = Batch::paper_measurement(1);
        assert!(m.model.to_string().contains("flash"));
    }
}
