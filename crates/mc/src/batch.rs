//! Seeded device-batch generation over the `bist_core::source` seam.
//!
//! A [`Batch`] is a thin, `Copy` builder over one
//! [`DeviceSource`] —
//! `Batch::of(source).seed(s).size(n)` — so every architecture the seam
//! knows (flash, iid widths, SAR, pipeline) screens through the same
//! fleet machinery. [`DeviceModel`] is the batch-local naming of that
//! choice, kept for the paper's sim/measurement split:
//!
//! * [`DeviceModel::IidWidths`] — code widths drawn iid from the §3
//!   Gaussian (the *simulation* model behind Tables 1–2).
//! * [`DeviceModel::PhysicalFlash`] — the resistor-ladder + comparator
//!   flash of `bist-adc` (the stand-in for the paper's 364 measured
//!   devices; its widths acquire the Eq. 10 correlation naturally).
//! * [`DeviceModel::Sar`] / [`DeviceModel::Pipeline`] — the zoo
//!   architectures, same seam.
//!
//! Devices are generated from `(seed, index)` so batches are
//! reproducible and independent of threading. The canonical stream
//! derivations ([`stream_rng`], [`splitmix_finalize`],
//! [`iid_width_transfer`]) live in [`bist_core::source`] and are
//! re-exported here bit-identically.

use bist_adc::flash::FlashConfig;
use bist_adc::pipeline::PipelineConfig;
use bist_adc::sar::SarConfig;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_core::analytic::WidthDistribution;
use bist_core::source::{DeviceSource, IidWidthSource, SourceSpec};
use bist_dsp::special::normal_quantile;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

pub use bist_core::source::{iid_width_transfer, splitmix_finalize, stream_rng};

/// How batch devices are modelled (the batch-local naming of the
/// [`SourceSpec`] seam).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DeviceModel {
    /// Transfer functions with iid Gaussian code widths (theory model).
    IidWidths(WidthDistribution),
    /// Behavioural flash converters with ladder/comparator mismatch.
    PhysicalFlash(FlashConfig),
    /// SAR converters with binary-weighted capacitor mismatch.
    Sar(SarConfig),
    /// Two-stage pipeline converters with inter-stage gain error.
    Pipeline(PipelineConfig),
}

impl DeviceModel {
    /// The model as a seam source. `resolution` applies to the
    /// iid-width model (the physical models state their own).
    pub fn source(&self, resolution: Resolution) -> SourceSpec {
        match *self {
            DeviceModel::IidWidths(dist) => {
                SourceSpec::IidWidths(IidWidthSource::new(resolution, dist))
            }
            DeviceModel::PhysicalFlash(cfg) => SourceSpec::Flash(cfg),
            DeviceModel::Sar(cfg) => SourceSpec::Sar(cfg),
            DeviceModel::Pipeline(cfg) => SourceSpec::Pipeline(cfg),
        }
    }
}

impl From<SourceSpec> for DeviceModel {
    fn from(s: SourceSpec) -> Self {
        match s {
            SourceSpec::Flash(c) => DeviceModel::PhysicalFlash(c),
            SourceSpec::IidWidths(c) => DeviceModel::IidWidths(c.distribution()),
            SourceSpec::Sar(c) => DeviceModel::Sar(c),
            SourceSpec::Pipeline(c) => DeviceModel::Pipeline(c),
        }
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceModel::IidWidths(d) => {
                write!(f, "iid widths (σ {} LSB)", d.sigma())
            }
            DeviceModel::PhysicalFlash(c) => {
                write!(
                    f,
                    "physical flash (σ_w {:.3} LSB)",
                    c.code_width_sigma_lsb()
                )
            }
            DeviceModel::Sar(c) => {
                write!(f, "sar (σ_unit {:.3})", c.unit_cap_sigma())
            }
            DeviceModel::Pipeline(c) => {
                write!(f, "pipeline (σ_gain {:.3})", c.gain_sigma())
            }
        }
    }
}

/// A reproducible batch descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Batch {
    /// Device model.
    pub model: DeviceModel,
    /// Converter resolution.
    pub resolution: Resolution,
    /// Master seed; device `i` derives its RNG from `(seed, i)`.
    pub seed: u64,
    /// Number of devices.
    pub size: usize,
}

impl Batch {
    /// A batch over any seam source: `Batch::of(source).seed(s).size(n)`.
    /// The resolution is taken from the source.
    pub fn of(source: impl Into<SourceSpec>) -> Self {
        let source = source.into();
        Batch {
            model: DeviceModel::from(source),
            resolution: source.resolution(),
            seed: 0,
            size: 0,
        }
    }

    /// Sets the master seed (builder-style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the device count (builder-style).
    pub fn size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// The batch's model as a seam source.
    pub fn source(&self) -> SourceSpec {
        self.model.source(self.resolution)
    }

    /// The batch's architecture tag.
    pub fn architecture(&self) -> bist_core::source::Architecture {
        self.source().architecture()
    }

    /// The paper's measured batch: 364 physical flash devices at the
    /// worst-case mismatch.
    pub fn paper_measurement(seed: u64) -> Self {
        Batch {
            model: DeviceModel::PhysicalFlash(FlashConfig::paper_device()),
            resolution: Resolution::SIX_BIT,
            seed,
            size: 364,
        }
    }

    /// A theory batch of iid-width devices at σ = 0.21 LSB.
    pub fn paper_simulation(seed: u64, size: usize) -> Self {
        Batch {
            model: DeviceModel::IidWidths(WidthDistribution::paper_worst_case()),
            resolution: Resolution::SIX_BIT,
            seed,
            size,
        }
    }

    /// The RNG for device `index` (stable mixing of seed and index;
    /// the canonical [`bist_core::source::device_rng`] stream).
    pub fn device_rng(&self, index: usize) -> StdRng {
        bist_core::source::device_rng(self.seed, index)
    }

    /// Generates device `index`'s transfer function through the seam.
    pub fn device(&self, index: usize) -> TransferFunction {
        let mut rng = self.device_rng(index);
        self.source().sample_transfer(&mut rng)
    }

    /// Iterates over all devices in the batch.
    pub fn devices(&self) -> impl Iterator<Item = TransferFunction> + '_ {
        (0..self.size).map(move |i| self.device(i))
    }
}

/// Draws from a Gaussian truncated to `[lo, hi]` by inverse-CDF.
///
/// # Panics
///
/// Panics if the interval has negligible probability mass or `lo >= hi`.
pub fn truncated_normal<R: Rng + ?Sized>(
    mean: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> f64 {
    assert!(lo < hi, "lo must be below hi");
    let a = bist_dsp::special::gaussian_cdf(lo, mean, sigma);
    let b = bist_dsp::special::gaussian_cdf(hi, mean, sigma);
    assert!(b - a > 1e-300, "truncation interval has no mass");
    let u = rng.gen_range(a..b);
    mean + sigma * normal_quantile(u)
}

/// A conditioned "faulty" width vector: exactly one randomly-placed
/// width drawn from the out-of-spec region, the rest truncated in-spec.
///
/// Supports the rare-event check of Table 2: at the actual ±1 LSB spec,
/// `P(faulty) ≈ 1.4×10⁻⁴` and a faulty device almost surely has exactly
/// one bad code, so sampling that conditional law directly estimates
/// `P(accept | faulty)` without 10⁷ rejection draws.
///
/// # Panics
///
/// Panics when the spec window has no realisable out-of-spec tail mass
/// (both Gaussian tails numerically zero), since the conditional law is
/// then undefined.
pub fn conditional_faulty_widths<R: Rng + ?Sized>(
    dist: &WidthDistribution,
    spec: &bist_adc::spec::LinearitySpec,
    codes: usize,
    rng: &mut R,
) -> Vec<f64> {
    let (lo, hi) = spec.width_window_lsb();
    let mean = dist.mean();
    let sigma = dist.sigma();
    // With the window floored at zero a below-spec width cannot be
    // realised: widths clamp at 0, and a zero width is DNL = −1 exactly,
    // which sits *on* the inclusive spec limit and classifies good. All
    // conditional mass is then in the above tail.
    let p_below = if lo.0 > 0.0 {
        bist_dsp::special::gaussian_cdf(lo.0, mean, sigma)
    } else {
        0.0
    };
    let p_above = 1.0 - bist_dsp::special::gaussian_cdf(hi.0, mean, sigma);
    assert!(
        p_below + p_above > 0.0,
        "spec window ({}, {}) has no realisable tail mass at mean {mean}, sigma {sigma}: \
         the conditional faulty law is undefined",
        lo.0,
        hi.0
    );
    let bad_index = rng.gen_range(0..codes);
    (0..codes)
        .map(|i| {
            if i == bad_index {
                // Pick the tail side proportionally to its mass.
                let side_below = rng.gen_range(0.0..(p_below + p_above)) < p_below;
                let w = if side_below {
                    truncated_normal(mean, sigma, mean - 12.0 * sigma, lo.0, rng)
                } else {
                    truncated_normal(mean, sigma, hi.0, mean + 12.0 * sigma, rng)
                };
                w.max(0.0)
            } else {
                truncated_normal(mean, sigma, lo.0.max(0.0), hi.0, rng)
            }
        })
        .collect()
}

/// Builds a transfer function from explicit inner-code widths in LSB
/// (first transition ideal).
pub fn transfer_from_widths(resolution: Resolution, widths_lsb: &[f64]) -> TransferFunction {
    assert_eq!(
        widths_lsb.len() as u32,
        resolution.inner_code_count(),
        "need one width per inner code"
    );
    let q = 0.1;
    let mut t = Vec::with_capacity(resolution.transition_count() as usize);
    t.push(q);
    for &w in widths_lsb {
        let prev = *t.last().expect("non-empty");
        t.push(prev + w.max(0.0) * q);
    }
    let high = q * resolution.code_count() as f64;
    TransferFunction::from_transitions(resolution, Volts(0.0), Volts(high), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_adc::metrics::dnl;
    use bist_adc::spec::LinearitySpec;
    use bist_dsp::stats::Running;
    use rand::SeedableRng;

    #[test]
    fn builder_form_is_bit_identical_to_paper_presets() {
        // `Batch::of(source)` must reproduce the historical device
        // streams exactly — the paper-repro output depends on it.
        let via_seam = Batch::of(SourceSpec::paper_flash()).seed(11).size(364);
        let preset = Batch::paper_measurement(11);
        assert_eq!(via_seam, preset);
        for i in [0, 1, 100, 363] {
            assert_eq!(
                via_seam.device(i).transitions(),
                preset.device(i).transitions()
            );
        }
        let via_seam = Batch::of(SourceSpec::paper_iid()).seed(5).size(40);
        let preset = Batch::paper_simulation(5, 40);
        assert_eq!(via_seam, preset);
        assert_eq!(
            via_seam.device(17).transitions(),
            preset.device(17).transitions()
        );
    }

    #[test]
    fn sar_and_pipeline_batches_run_through_the_same_seam() {
        for src in [SourceSpec::paper_sar(), SourceSpec::paper_pipeline()] {
            let b = Batch::of(src).seed(3).size(8);
            assert_eq!(b.resolution, Resolution::SIX_BIT);
            assert_eq!(b.architecture(), src.architecture());
            assert_eq!(b.device(2).transitions(), b.device(2).transitions());
            assert_ne!(b.device(2).transitions(), b.device(3).transitions());
            // Round-trips through the model naming.
            assert_eq!(b.source(), src);
        }
    }

    #[test]
    fn batches_are_reproducible() {
        let b = Batch::paper_simulation(42, 10);
        let a1 = b.device(3);
        let a2 = b.device(3);
        assert_eq!(a1.transitions(), a2.transitions());
        // Different indices differ.
        assert_ne!(b.device(3).transitions(), b.device(4).transitions());
        // Different seeds differ.
        let c = Batch::paper_simulation(43, 10);
        assert_ne!(b.device(3).transitions(), c.device(3).transitions());
    }

    #[test]
    fn iid_width_statistics_match() {
        let b = Batch::paper_simulation(7, 300);
        let mut acc = Running::new();
        for tf in b.devices() {
            for w in tf.code_widths_lsb() {
                acc.push(w.0);
            }
        }
        assert!((acc.mean() - 1.0).abs() < 0.01, "mean {}", acc.mean());
        assert!((acc.std_dev() - 0.21).abs() < 0.01, "sd {}", acc.std_dev());
    }

    #[test]
    fn paper_measurement_batch_size() {
        let b = Batch::paper_measurement(1);
        assert_eq!(b.size, 364);
        assert!(matches!(b.model, DeviceModel::PhysicalFlash(_)));
        // Yield under the stringent spec lands near the paper's 30 %.
        let spec = LinearitySpec::paper_stringent();
        let good = b.devices().filter(|tf| spec.classify(tf).good).count();
        let yield_frac = good as f64 / b.size as f64;
        assert!(
            (0.2..0.45).contains(&yield_frac),
            "yield {yield_frac} ({good}/364)"
        );
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let w = truncated_normal(1.0, 0.21, 0.5, 1.5, &mut rng);
            assert!((0.5..=1.5).contains(&w), "w {w}");
        }
    }

    #[test]
    #[should_panic(expected = "no mass")]
    fn truncated_normal_empty_region_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        truncated_normal(0.0, 0.01, 50.0, 51.0, &mut rng);
    }

    #[test]
    fn conditional_faulty_has_exactly_one_bad_width() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = LinearitySpec::paper_actual();
        let dist = WidthDistribution::paper_worst_case();
        for _ in 0..100 {
            let w = conditional_faulty_widths(&dist, &spec, 62, &mut rng);
            assert_eq!(w.len(), 62);
            let bad = w.iter().filter(|&&x| !(0.0..=2.0).contains(&x)).count()
                + w.iter().filter(|&&x| x == 0.0).count();
            // Exactly one width outside (0, 2): the planted one (clamped
            // zero widths count as bad too).
            assert_eq!(bad, 1, "{w:?}");
        }
    }

    #[test]
    fn conditional_faulty_device_classifies_faulty() {
        let mut rng = StdRng::seed_from_u64(11);
        let spec = LinearitySpec::paper_actual();
        let dist = WidthDistribution::paper_worst_case();
        let w = conditional_faulty_widths(&dist, &spec, 62, &mut rng);
        let tf = transfer_from_widths(Resolution::SIX_BIT, &w);
        assert!(!spec.classify(&tf).good);
    }

    #[test]
    fn transfer_from_widths_round_trips() {
        let widths = vec![1.0; 62];
        let tf = transfer_from_widths(Resolution::SIX_BIT, &widths);
        for d in dnl(&tf) {
            assert!(d.0.abs() < 1e-9);
        }
    }

    #[test]
    fn model_display() {
        let b = Batch::paper_simulation(1, 2);
        assert!(b.model.to_string().contains("iid"));
        let m = Batch::paper_measurement(1);
        assert!(m.model.to_string().contains("flash"));
    }
}
