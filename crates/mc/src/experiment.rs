//! Batch experiments: run the BIST (and optionally the reference or
//! conventional test) over a device batch and account type I/II errors.
//!
//! Each worker drives the streaming engine of `bist-core` with one
//! reusable [`bist_core::harness::Scratch`], so screening a device is
//! allocation-free after the first (stimulus→stream→accumulator, no
//! capture materialised), and [`ExperimentResult`] carries throughput
//! accounting (devices and ADC samples per second) alongside the
//! confusion matrix.

use crate::batch::Batch;
use crate::estimate::Proportion;
use crate::parallel::{partitioned, run_parallel};
use bist_adc::noise::NoiseConfig;
use bist_core::backend::{Backend, BehavioralBackend};
use bist_core::batch::{BatchDevice, DynBatch, StaticBatch};
use bist_core::config::BistConfig;
use bist_core::decision::ConfusionMatrix;
use bist_core::dynamic::DynamicConfig;
use bist_core::harness::{conventional_test, reference_measurement};
use bist_core::screener::{Screener, Workload};
use bist_core::source::{DeviceSource, SourceSpec};
use rand::rngs::StdRng;
use std::fmt;
use std::time::{Duration, Instant};

/// How ground truth is established for each device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GroundTruthMode {
    /// Classify the true transfer function directly (exact — available
    /// because we simulate the silicon).
    Exact,
    /// The paper's procedure: a high-accuracy histogram reference
    /// measurement with this many samples per code (~1000 in §4).
    Reference {
        /// Average samples per code for the reference ramp.
        samples_per_code: u32,
    },
}

/// Descriptor of one screening experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Experiment {
    /// The device batch.
    pub batch: Batch,
    /// The BIST configuration under evaluation.
    pub config: BistConfig,
    /// Ground-truth procedure.
    pub ground_truth: GroundTruthMode,
    /// Acquisition noise (applies to the BIST capture).
    pub noise: NoiseConfig,
    /// Relative ramp slope error for the BIST capture (the paper's
    /// "slightly too steep" measurement ramp).
    pub slope_error: f64,
}

impl Experiment {
    /// A noiseless experiment with exact ground truth.
    pub fn new(batch: Batch, config: BistConfig) -> Self {
        Experiment {
            batch,
            config,
            ground_truth: GroundTruthMode::Exact,
            noise: NoiseConfig::noiseless(),
            slope_error: 0.0,
        }
    }

    /// Sets the ground-truth mode.
    pub fn with_ground_truth(mut self, mode: GroundTruthMode) -> Self {
        self.ground_truth = mode;
        self
    }

    /// Sets the acquisition noise.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the ramp slope error.
    pub fn with_slope_error(mut self, err: f64) -> Self {
        self.slope_error = err;
        self
    }

    /// Runs the experiment over device indices `[from, to)` —
    /// the unit of work for parallel execution. One [`bist_core::harness::Scratch`] is
    /// reused across the whole range, so per-device screening allocates
    /// nothing after the first device.
    pub fn run_range(&self, from: usize, to: usize) -> ExperimentResult {
        self.run_range_with(&mut BehavioralBackend, from, to)
    }

    /// Runs a device range through an explicit verdict backend (the
    /// behavioural accumulators or the gate-accurate RTL datapath) —
    /// the seam the differential experiment exercises. The RNG stream
    /// per device depends only on `(seed, index)`, so two backends run
    /// against the same experiment see bit-identical code streams.
    ///
    /// The range is screened as one batch through the backend's
    /// [`Backend::process_batch`] seam: the behavioural backend runs
    /// the lane-parallel engine of [`bist_core::batch`], the RTL
    /// backend clocks each device scalar-wise — verdicts are
    /// bit-identical either way. Ground truth is established *before*
    /// each device is queued, so the per-device RNG stream (truth
    /// draws, then acquisition draws) is unchanged from the scalar
    /// engine.
    pub fn run_range_with<B: Backend>(
        &self,
        backend: &mut B,
        from: usize,
        to: usize,
    ) -> ExperimentResult {
        // bist-lint: allow(determinism) — wall-clock throughput metadata (elapsed/devices-per-s); never feeds a verdict or report ordering
        let start = Instant::now();
        let mut matrix = ConfusionMatrix::new();
        let mut samples = 0u64;
        let spec = *self.config.spec();
        let to = to.min(self.batch.size);
        let mut work = StaticBatch::new(self.config)
            .with_noise(self.noise)
            .with_slope_error(self.slope_error);
        let mut truths = Vec::with_capacity(to.saturating_sub(from));
        for i in from..to {
            let tf = self.batch.device(i);
            let mut rng = self.batch.device_rng(i ^ 0x5eed_0000_0000_0000);
            let truth_good = match self.ground_truth {
                GroundTruthMode::Exact => spec.classify(&tf).good,
                GroundTruthMode::Reference { samples_per_code } => reference_measurement(
                    &tf,
                    &spec,
                    samples_per_code,
                    &NoiseConfig::noiseless(),
                    &mut rng,
                )
                .map(|v| v.accepted)
                .unwrap_or(false),
            };
            truths.push(truth_good);
            work.push(BatchDevice::new(i, tf, rng));
        }
        backend.process_batch(&mut work);
        for report in work.finish_reports() {
            samples += report.outcome.verdict.samples;
            matrix.record(
                truths[report.device - from],
                report.outcome.verdict.accepted(),
            );
        }
        ExperimentResult {
            matrix,
            samples,
            invalid: 0,
            elapsed: start.elapsed(),
        }
    }

    /// Runs the whole batch, fanned out over the available parallelism
    /// (equivalent to `run_parallel(self, 0)`; results are bit-identical
    /// to a sequential [`Experiment::run_range`] because devices derive
    /// from `(seed, index)`).
    pub fn run(&self) -> ExperimentResult {
        run_parallel(self, 0)
    }

    /// Validates that every backend can judge this experiment's
    /// configuration — currently the gate-accurate datapath's
    /// requirement that at least one bit remains above the monitored
    /// bit (the Figure-2 checker needs an upper word). Sweep drivers
    /// whose grid can produce unjudgeable cells call this up front and
    /// record the cell via [`ExperimentResult::skipped_invalid`]
    /// instead of running it, so throughput figures only count devices
    /// that were actually screened.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCellError`] when the cell cannot be judged.
    pub fn validate(&self) -> Result<(), InvalidCellError> {
        self.config
            .validate_monitorable()
            .map_err(|e| InvalidCellError {
                reason: e.to_string(),
            })
    }
}

/// A sweep cell whose configuration failed validation — see
/// [`Experiment::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidCellError {
    /// Why the cell cannot be run.
    pub reason: String,
}

impl fmt::Display for InvalidCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sweep cell: {}", self.reason)
    }
}

impl std::error::Error for InvalidCellError {}

/// Accumulated outcome of an experiment, with throughput accounting.
///
/// Equality compares the accounting (`matrix` and `samples`) but not
/// `elapsed`, so two runs of the same experiment compare equal
/// regardless of timing — e.g. across different worker counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExperimentResult {
    /// The confusion matrix over all devices run so far.
    pub matrix: ConfusionMatrix,
    /// Total ADC samples consumed by the BIST captures.
    pub samples: u64,
    /// Devices belonging to sweep cells rejected by config validation:
    /// planned but never screened (see
    /// [`ExperimentResult::skipped_invalid`]). Excluded from the
    /// confusion matrix and from every throughput figure, so devices/s
    /// stays comparable across sweeps with and without invalid cells.
    pub invalid: u64,
    /// Time spent screening: wall-clock for a `run_parallel` fan-out,
    /// summed per-range CPU time when partials are merged by hand.
    pub elapsed: Duration,
}

impl ExperimentResult {
    /// The result of a sweep cell rejected by config validation: its
    /// `devices` are recorded as planned-but-invalid and nothing else —
    /// merging it into a sweep total cannot move any rate or
    /// throughput figure.
    pub fn skipped_invalid(devices: u64) -> Self {
        ExperimentResult {
            invalid: devices,
            ..ExperimentResult::default()
        }
    }

    /// Merges a partial result (e.g. from another worker). Elapsed
    /// times add; [`crate::parallel::run_parallel`] overwrites the sum
    /// with the observed wall-clock.
    pub fn merge(&mut self, other: &ExperimentResult) {
        self.matrix.merge(&other.matrix);
        self.samples += other.samples;
        self.invalid += other.invalid;
        self.elapsed += other.elapsed;
    }

    /// Type I rate estimate `P(reject | good)` with trial counts.
    pub fn type_i(&self) -> Proportion {
        Proportion::new(self.matrix.type_i_count(), self.matrix.good())
    }

    /// Type II rate estimate `P(accept | faulty)` with trial counts.
    pub fn type_ii(&self) -> Proportion {
        Proportion::new(self.matrix.type_ii_count(), self.matrix.faulty())
    }

    /// Observed yield.
    pub fn observed_yield(&self) -> Proportion {
        Proportion::new(self.matrix.good(), self.matrix.total())
    }

    /// Screening throughput in devices per second of [`Self::elapsed`].
    /// Counts only devices actually screened — cells rejected by config
    /// validation ([`Self::invalid`]) contribute nothing.
    pub fn devices_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.matrix.total() as f64 / secs
        } else {
            0.0
        }
    }

    /// Acquisition throughput in ADC samples per second of
    /// [`Self::elapsed`].
    pub fn samples_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.samples as f64 / secs
        } else {
            0.0
        }
    }
}

impl PartialEq for ExperimentResult {
    fn eq(&self, other: &Self) -> bool {
        self.matrix == other.matrix
            && self.samples == other.samples
            && self.invalid == other.invalid
    }
}

impl Eq for ExperimentResult {}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.matrix)
    }
}

/// Compares the BIST against the conventional 4096-sample histogram test
/// on the same batch (experiment E10): returns the two confusion
/// matrices and the device-level agreement count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivalenceResult {
    /// Confusion matrix of the BIST decisions vs exact truth.
    pub bist: ConfusionMatrix,
    /// Confusion matrix of the conventional test vs exact truth.
    pub conventional: ConfusionMatrix,
    /// Devices where both tests reached the same decision.
    pub agreements: u64,
    /// Total devices compared.
    pub total: u64,
}

impl EquivalenceResult {
    /// Fraction of devices where the two tests agree.
    pub fn agreement_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.agreements as f64 / self.total as f64
        }
    }

    /// Merges a partial result from another worker.
    pub fn merge(&mut self, other: &EquivalenceResult) {
        self.bist.merge(&other.bist);
        self.conventional.merge(&other.conventional);
        self.agreements += other.agreements;
        self.total += other.total;
    }
}

/// Runs the E10 equivalence experiment: BIST with `config` vs the
/// conventional histogram test with `conventional_samples` total
/// samples, fanned out across `workers` threads (0 = available
/// parallelism). Devices derive from `(seed, index)`, so the result is
/// independent of the worker count.
pub fn run_equivalence(
    batch: &Batch,
    config: &BistConfig,
    conventional_samples: u32,
    workers: usize,
) -> EquivalenceResult {
    let partials = partitioned(batch.size, workers, |from, to| {
        equivalence_range(batch, config, conventional_samples, from, to)
    });
    let mut total = EquivalenceResult {
        bist: ConfusionMatrix::new(),
        conventional: ConfusionMatrix::new(),
        agreements: 0,
        total: 0,
    };
    for p in &partials {
        total.merge(p);
    }
    total
}

fn equivalence_range(
    batch: &Batch,
    config: &BistConfig,
    conventional_samples: u32,
    from: usize,
    to: usize,
) -> EquivalenceResult {
    // Salt decorrelating this experiment's RNG stream from the device
    // generation stream.
    const EQ_SALT: usize = 0x0e0a_1b2c;
    let spec = *config.spec();
    let mut bist_m = ConfusionMatrix::new();
    let mut conv_m = ConfusionMatrix::new();
    let mut agreements = 0;
    let mut screener = Screener::new(Workload::static_ramp(*config));
    let to = to.min(batch.size);
    for i in from..to {
        let tf = batch.device(i);
        let mut rng = batch.device_rng(i ^ EQ_SALT);
        let truth = spec.classify(&tf).good;
        let bist = screener.screen_one(&tf, &mut rng);
        let conv = conventional_test(
            &tf,
            &spec,
            conventional_samples,
            &NoiseConfig::noiseless(),
            &mut rng,
        )
        .map(|v| v.accepted)
        .unwrap_or(false);
        bist_m.record(truth, bist.accepted());
        conv_m.record(truth, conv);
        if bist.accepted() == conv {
            agreements += 1;
        }
    }
    EquivalenceResult {
        bist: bist_m,
        conventional: conv_m,
        agreements,
        total: (to - from) as u64,
    }
}

/// Descriptor of one **dynamic** screening experiment: a seeded device
/// population (any [`SourceSpec`] architecture — flash, iid widths,
/// SAR, pipeline) driven through the streaming
/// SINAD/THD/ENOB/noise-power verdict path of `bist_core::dynamic`.
///
/// The worker fan-out mirrors [`Experiment`]: devices derive from
/// `(seed, index)`, every worker reuses one [`bist_core::dynamic::DynScratch`] (and one
/// cached RTL datapath when judging with
/// [`bist_core::backend::RtlBackend`]), so the per-device hot path is
/// allocation-free after warm-up on either backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynExperiment {
    /// Master seed; device `i` derives its RNG from `(seed, i)`.
    pub seed: u64,
    /// Number of devices.
    pub devices: usize,
    /// The device model (any seam architecture).
    pub source: SourceSpec,
    /// The dynamic test plan and limits.
    pub config: DynamicConfig,
    /// Acquisition noise for the sine capture.
    pub noise: NoiseConfig,
}

/// Salt decorrelating dynamic acquisition noise from device generation.
const DYN_EXP_SALT: u64 = 0xd1e_57a7;

impl DynExperiment {
    /// A noiseless dynamic experiment over any seam source
    /// (`FlashConfig`, `SarConfig`, `PipelineConfig`, … convert
    /// directly).
    pub fn new(
        seed: u64,
        devices: usize,
        source: impl Into<SourceSpec>,
        config: DynamicConfig,
    ) -> Self {
        DynExperiment {
            seed,
            devices,
            source: source.into(),
            config,
            noise: NoiseConfig::noiseless(),
        }
    }

    /// Sets the acquisition noise.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// The RNG for stream `salt` of device `index` (the shared
    /// [`crate::batch::stream_rng`] mixing).
    fn rng(&self, index: usize, salt: u64) -> StdRng {
        crate::batch::stream_rng(self.seed, &[salt, index as u64])
    }

    /// Runs the experiment over device indices `[from, to)` with an
    /// explicit verdict backend — the unit of work for the fan-out.
    ///
    /// The range is screened as one batch through the backend's
    /// [`Backend::process_dyn_batch`] seam (lane-parallel Goertzel
    /// banks on the behavioural backend, the scalar gate-accurate loop
    /// on the RTL backend — identical decisions either way).
    pub fn run_range_with<B: Backend>(
        &self,
        backend: &mut B,
        from: usize,
        to: usize,
    ) -> DynExperimentResult {
        // bist-lint: allow(determinism) — wall-clock throughput metadata (elapsed/devices-per-s); never feeds a verdict or report ordering
        let start = Instant::now();
        let mut result = DynExperimentResult::default();
        let mut work = DynBatch::new(self.config).with_noise(self.noise);
        for i in from..to.min(self.devices) {
            // Bit-identical to the historical flash path: the config's
            // `sample` consumes the same draws and `transfer()` takes
            // none, so the code stream is unchanged for flash sources.
            let adc = self.source.sample_transfer(&mut self.rng(i, 0));
            work.push(BatchDevice::new(i, adc, self.rng(i, DYN_EXP_SALT)));
        }
        backend.process_dyn_batch(&mut work);
        for report in work.finish_reports() {
            let verdict = report.outcome.verdict;
            result.screened += 1;
            result.samples += verdict.samples;
            result.accepted += u64::from(verdict.accepted());
            result.incomplete += u64::from(!verdict.checks.complete);
            result.failed_sinad += u64::from(!verdict.checks.sinad);
            result.failed_thd += u64::from(!verdict.checks.thd);
            result.failed_enob += u64::from(!verdict.checks.enob);
            result.failed_noise += u64::from(!verdict.checks.noise);
        }
        result.elapsed = start.elapsed();
        result
    }

    /// Runs the whole population across `workers` threads (0 =
    /// available parallelism) with a per-worker backend built by
    /// `make_backend`, returning the merged result with wall-clock
    /// `elapsed`. Results are independent of the worker count.
    pub fn run_with<B, F>(&self, workers: usize, make_backend: F) -> DynExperimentResult
    where
        B: Backend,
        F: Fn() -> B + Sync,
    {
        // bist-lint: allow(determinism) — wall-clock throughput metadata (elapsed/devices-per-s); never feeds a verdict or report ordering
        let start = Instant::now();
        let partials = crate::parallel::partitioned_with(
            self.devices,
            workers,
            &make_backend,
            |backend, from, to| self.run_range_with(backend, from, to),
        );
        let mut total = DynExperimentResult::default();
        for p in &partials {
            total.merge(p);
        }
        total.elapsed = start.elapsed();
        total
    }

    /// Runs the whole population through the behavioural backend —
    /// the default fleet path (equivalent to
    /// `run_with(workers, || BehavioralBackend)`).
    pub fn run(&self, workers: usize) -> DynExperimentResult {
        self.run_with(workers, || BehavioralBackend)
    }
}

/// Accumulated outcome of a dynamic experiment, with throughput
/// accounting. Equality compares the counters but not `elapsed` (same
/// convention as [`ExperimentResult`]). Failure counters are
/// non-exclusive: a device missing two limits increments both.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynExperimentResult {
    /// Devices screened.
    pub screened: u64,
    /// Devices accepted (complete and every metric within limits).
    pub accepted: u64,
    /// Devices with an incomplete record.
    pub incomplete: u64,
    /// Devices below the SINAD limit.
    pub failed_sinad: u64,
    /// Devices above the THD limit.
    pub failed_thd: u64,
    /// Devices below the ENOB limit.
    pub failed_enob: u64,
    /// Devices above the noise-power limit.
    pub failed_noise: u64,
    /// Total ADC samples consumed.
    pub samples: u64,
    /// Devices belonging to sweep cells rejected by config validation:
    /// planned but never screened (see
    /// [`DynExperimentResult::skipped_invalid`]). Excluded from
    /// `screened` and from every rate and throughput figure.
    pub invalid: u64,
    /// Time spent screening (wall-clock for `run`/`run_with`, summed
    /// per-range CPU time when partials are merged by hand).
    pub elapsed: Duration,
}

impl DynExperimentResult {
    /// The result of a sweep cell rejected by config validation (e.g. a
    /// fixed-point-unrealisable [`DynamicConfig`] plan): its `devices`
    /// are recorded as planned-but-invalid and nothing else, so merging
    /// it into a sweep total cannot move the acceptance rate or
    /// devices/s.
    pub fn skipped_invalid(devices: u64) -> Self {
        DynExperimentResult {
            invalid: devices,
            ..DynExperimentResult::default()
        }
    }

    /// Merges a partial result from another worker.
    pub fn merge(&mut self, other: &DynExperimentResult) {
        self.screened += other.screened;
        self.accepted += other.accepted;
        self.incomplete += other.incomplete;
        self.failed_sinad += other.failed_sinad;
        self.failed_thd += other.failed_thd;
        self.failed_enob += other.failed_enob;
        self.failed_noise += other.failed_noise;
        self.samples += other.samples;
        self.invalid += other.invalid;
        self.elapsed += other.elapsed;
    }

    /// Observed acceptance rate.
    pub fn acceptance_rate(&self) -> f64 {
        if self.screened == 0 {
            0.0
        } else {
            self.accepted as f64 / self.screened as f64
        }
    }

    /// Screening throughput in devices per second of `elapsed`. Counts
    /// only devices actually screened — cells rejected by config
    /// validation ([`Self::invalid`]) contribute nothing.
    pub fn devices_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.screened as f64 / secs
        } else {
            0.0
        }
    }

    /// Acquisition throughput in ADC samples per second of `elapsed`.
    pub fn samples_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.samples as f64 / secs
        } else {
            0.0
        }
    }
}

impl PartialEq for DynExperimentResult {
    fn eq(&self, other: &Self) -> bool {
        self.screened == other.screened
            && self.accepted == other.accepted
            && self.incomplete == other.incomplete
            && self.failed_sinad == other.failed_sinad
            && self.failed_thd == other.failed_thd
            && self.failed_enob == other.failed_enob
            && self.failed_noise == other.failed_noise
            && self.samples == other.samples
            && self.invalid == other.invalid
    }
}

impl Eq for DynExperimentResult {}

impl fmt::Display for DynExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} accepted (sinad {} thd {} enob {} noise {} incomplete {} rejections)",
            self.accepted,
            self.screened,
            self.failed_sinad,
            self.failed_thd,
            self.failed_enob,
            self.failed_noise,
            self.incomplete
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::types::Resolution;

    fn config(bits: u32) -> BistConfig {
        BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(bits)
            .build()
            .unwrap()
    }

    #[test]
    fn experiment_runs_batch() {
        let batch = Batch::paper_simulation(3, 200);
        let result = Experiment::new(batch, config(7)).run();
        assert_eq!(result.matrix.total(), 200);
        // Yield near 30 %.
        let y = result.observed_yield().point().unwrap();
        assert!((0.2..0.45).contains(&y), "yield {y}");
        // 7-bit counter: very few errors.
        assert!(result.type_i().point().unwrap() < 0.15);
    }

    #[test]
    fn run_range_partitions_consistently() {
        let batch = Batch::paper_simulation(5, 100);
        let exp = Experiment::new(batch, config(5));
        let whole = exp.run();
        let mut parts = exp.run_range(0, 40);
        parts.merge(&exp.run_range(40, 100));
        assert_eq!(whole.matrix, parts.matrix);
    }

    #[test]
    fn range_clamps_to_batch() {
        let batch = Batch::paper_simulation(5, 10);
        let exp = Experiment::new(batch, config(5));
        let r = exp.run_range(0, 1000);
        assert_eq!(r.matrix.total(), 10);
    }

    #[test]
    fn smaller_counter_more_type_i() {
        let batch = Batch::paper_simulation(11, 600);
        let small = Experiment::new(batch, config(4)).run();
        let large = Experiment::new(batch, config(7)).run();
        let p_small = small.type_i().point().unwrap();
        let p_large = large.type_i().point().unwrap();
        assert!(
            p_small > p_large,
            "4-bit {p_small} should exceed 7-bit {p_large}"
        );
    }

    #[test]
    fn slope_error_changes_decisions() {
        let batch = Batch::paper_simulation(13, 400);
        let nominal = Experiment::new(batch, config(4)).run();
        let skewed = Experiment::new(batch, config(4))
            .with_slope_error(-0.022)
            .run();
        // The paper saw type I roughly double with the slope error.
        let p0 = nominal.type_i().point().unwrap();
        let p1 = skewed.type_i().point().unwrap();
        assert!(p1 > p0, "slope error should raise type I: {p0} -> {p1}");
    }

    #[test]
    fn reference_ground_truth_close_to_exact() {
        let batch = Batch::paper_simulation(17, 60);
        let exact = Experiment::new(batch, config(6)).run();
        let referenced = Experiment::new(batch, config(6))
            .with_ground_truth(GroundTruthMode::Reference {
                samples_per_code: 1000,
            })
            .run();
        // The reference measurement misclassifies at most a couple of
        // marginal devices out of 60.
        let diff = (exact.matrix.good() as i64 - referenced.matrix.good() as i64).abs();
        assert!(diff <= 3, "good-count diff {diff}");
    }

    #[test]
    fn equivalence_bist7_vs_conventional() {
        let batch = Batch::paper_simulation(19, 150);
        let res = run_equivalence(&batch, &config(7), 4096, 0);
        assert_eq!(res.total, 150);
        assert!(
            res.agreement_rate() > 0.9,
            "agreement {}",
            res.agreement_rate()
        );
    }

    #[test]
    fn equivalence_independent_of_workers() {
        let batch = Batch::paper_simulation(23, 60);
        let cfg = config(5);
        let seq = run_equivalence(&batch, &cfg, 4096, 1);
        let par = run_equivalence(&batch, &cfg, 4096, 4);
        assert_eq!(seq.bist, par.bist);
        assert_eq!(seq.conventional, par.conventional);
        assert_eq!(seq.agreements, par.agreements);
        assert_eq!(seq.total, par.total);
    }

    #[test]
    fn result_accounts_samples_and_throughput() {
        let batch = Batch::paper_simulation(3, 20);
        let r = Experiment::new(batch, config(6)).run();
        // Every device's sweep is ~Δs⁻¹ samples per code on 64 codes.
        assert!(r.samples > 20 * 64, "samples {}", r.samples);
        assert!(r.elapsed > Duration::ZERO);
        assert!(r.devices_per_second() > 0.0);
        assert!(r.samples_per_second() > r.devices_per_second());
        // Merging partials adds both counters.
        let mut merged = r;
        merged.merge(&r);
        assert_eq!(merged.samples, 2 * r.samples);
        assert_eq!(merged.matrix.total(), 2 * r.matrix.total());
    }

    #[test]
    fn display_result() {
        let batch = Batch::paper_simulation(3, 10);
        let r = Experiment::new(batch, config(6)).run();
        assert!(r.to_string().contains("n=10"));
    }

    fn dyn_experiment(devices: usize, sigma: f64) -> DynExperiment {
        use bist_adc::flash::FlashConfig;
        use bist_adc::types::Volts;
        let flash = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_width_sigma_lsb(sigma);
        DynExperiment::new(3, devices, flash, DynamicConfig::paper_default())
    }

    #[test]
    fn dyn_experiment_screens_population() {
        let ideal = dyn_experiment(30, 0.0).run(0);
        assert_eq!(ideal.screened, 30);
        assert_eq!(ideal.accepted, 30, "{ideal}");
        assert_eq!(ideal.samples, 30 * 4096);
        assert!(ideal.devices_per_second() > 0.0);
        let worst = dyn_experiment(30, 0.3).run(0);
        assert!(worst.accepted < 30, "{worst}");
        assert!(worst.acceptance_rate() < ideal.acceptance_rate());
    }

    #[test]
    fn dyn_experiment_independent_of_workers() {
        let exp = dyn_experiment(40, 0.21);
        let seq = exp.run(1);
        let par = exp.run(4);
        assert_eq!(seq, par);
    }

    #[test]
    fn dyn_rtl_fleet_decisions_match_behavioral() {
        use bist_core::backend::RtlBackend;
        let exp = dyn_experiment(25, 0.21);
        let behavioral = exp.run(2);
        let rtl = exp.run_with(2, RtlBackend::new);
        assert_eq!(behavioral, rtl);
    }

    #[test]
    fn dyn_experiment_range_clamps_and_merges() {
        let exp = dyn_experiment(10, 0.16);
        let whole = exp.run_range_with(&mut BehavioralBackend, 0, 1000);
        assert_eq!(whole.screened, 10);
        let mut parts = exp.run_range_with(&mut BehavioralBackend, 0, 4);
        parts.merge(&exp.run_range_with(&mut BehavioralBackend, 4, 10));
        assert_eq!(whole, parts);
    }

    #[test]
    fn dyn_display_result() {
        let r = dyn_experiment(5, 0.0).run(1);
        assert!(r.to_string().contains("5/5 accepted"), "{r}");
    }

    #[test]
    fn invalid_cells_do_not_move_throughput_or_rates() {
        // The satellite fix: a sweep cell rejected by config validation
        // records its planned devices as `invalid` and nothing else, so
        // devices/s and the rates stay comparable across sweeps.
        let batch = Batch::paper_simulation(3, 20);
        let mut total = Experiment::new(batch, config(6)).run();
        let screened = total.matrix.total();
        let dps_before = (total.matrix.total(), total.samples);
        total.merge(&ExperimentResult::skipped_invalid(500));
        assert_eq!(total.invalid, 500);
        assert_eq!(
            total.matrix.total(),
            screened,
            "invalid devices not screened"
        );
        assert_eq!((total.matrix.total(), total.samples), dps_before);

        let mut dyn_total = dyn_experiment(10, 0.0).run(1);
        let rate = dyn_total.acceptance_rate();
        dyn_total.merge(&DynExperimentResult::skipped_invalid(99));
        assert_eq!(dyn_total.invalid, 99);
        assert_eq!(dyn_total.screened, 10);
        assert_eq!(dyn_total.acceptance_rate(), rate);
        // Equality accounts for the invalid tally.
        assert_ne!(dyn_total, dyn_experiment(10, 0.0).run(1));
    }

    #[test]
    fn validate_flags_unjudgeable_monitored_bit() {
        use bist_adc::spec::LinearitySpec;
        let ok = Experiment::new(Batch::paper_simulation(1, 4), config(5));
        assert!(ok.validate().is_ok());
        let bad_cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(5)
            .monitored_bit(5)
            .build()
            .unwrap();
        let bad = Experiment::new(Batch::paper_simulation(1, 4), bad_cfg);
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("monitored bit"), "{err}");
    }
}
