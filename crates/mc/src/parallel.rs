//! Thread fan-out for batch experiments.
//!
//! Devices are generated from `(seed, index)`, so splitting a batch into
//! index ranges and merging the confusion matrices is exactly equivalent
//! to a sequential run — the tests assert that equivalence. Each worker
//! keeps its own `bist_core::harness::Scratch` (created inside
//! `Experiment::run_range`), so the fan-out multiplies the
//! allocation-free streaming hot path across cores.
//!
//! Dispatch is chunked, not pre-partitioned: workers pull small index
//! ranges from an atomic cursor (the same work-stealing discipline as
//! `bist_core::pool`), so a worker that draws a run of cheap devices —
//! early-stopped sequencer sweeps, short records — comes back for more
//! instead of idling behind a contiguous split.

use crate::batch::Batch;
use crate::estimate::Proportion;
use crate::experiment::{Experiment, ExperimentResult};
use bist_adc::spec::LinearitySpec;
use crossbeam::channel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

/// Resolves a worker-count knob: `0` selects the available parallelism.
pub fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    }
}

/// Splits `[0, size)` into small chunks behind an atomic cursor and
/// evaluates `work(from, to)` on each from `workers` threads, returning
/// the per-chunk results in range order. Degenerates to one inline call
/// when a single worker suffices or the batch is tiny.
pub fn partitioned<T, F>(size: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    partitioned_with(size, workers, || (), |(), from, to| work(from, to))
}

/// [`partitioned`] with per-worker state: each worker builds one `state`
/// from `init` and threads it through every chunk it claims — the seam
/// that lets a fleet worker keep a warm backend (RTL tops, batch lanes)
/// across chunks instead of rebuilding per range.
pub fn partitioned_with<S, T, Init, F>(size: usize, workers: usize, init: Init, work: F) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize, usize) -> T + Sync,
{
    let workers = resolve_workers(workers);
    if workers <= 1 || size < 2 * workers {
        return vec![work(&mut init(), 0, size)];
    }
    // Small chunks keep uneven per-device costs balanced; the clamp
    // bounds claim traffic on huge batches and chunk count on small
    // ones.
    let chunk = (size / (workers * 8)).clamp(16, 512);
    let chunks = size.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = channel::bounded(chunks + workers);
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (cursor, init, work) = (&cursor, &init, &work);
            scope.spawn(move || {
                let mut state = init();
                loop {
                    // ORDERING: Relaxed suffices — `fetch_add`'s
                    // atomicity alone guarantees each worker draws a
                    // distinct chunk index (the uniqueness argument);
                    // chunk *results* synchronise through the channel
                    // send/receive pair, and the scoped-thread join
                    // provides the final happens-before edge before the
                    // parts are merged. The cursor never orders one
                    // worker's data against another's.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let from = i * chunk;
                    if from >= size {
                        break;
                    }
                    let to = (from + chunk).min(size);
                    tx.send((from, work(&mut state, from, to)))
                        .expect("receiver outlives workers");
                }
            });
        }
        drop(tx);
        let mut parts: Vec<(usize, T)> = rx.into_iter().collect();
        parts.sort_by_key(|(from, _)| *from);
        parts.into_iter().map(|(_, t)| t).collect()
    })
}

/// Runs an experiment across `workers` threads, returning the merged
/// result with wall-clock `elapsed`. `workers = 1` degenerates to a
/// sequential sweep; 0 selects the available parallelism.
pub fn run_parallel(experiment: &Experiment, workers: usize) -> ExperimentResult {
    run_parallel_with(experiment, workers, || {
        bist_core::backend::BehavioralBackend
    })
}

/// Runs an experiment across `workers` threads with a per-worker
/// verdict backend built by `make_backend` — the fleet-scale entry
/// point for the gate-accurate RTL datapath (`|| RtlBackend::new()`).
/// Results remain independent of the worker count: devices derive from
/// `(seed, index)` and each backend judges only its own range.
pub fn run_parallel_with<B, F>(
    experiment: &Experiment,
    workers: usize,
    make_backend: F,
) -> ExperimentResult
where
    B: bist_core::backend::Backend,
    F: Fn() -> B + Sync,
{
    // bist-lint: allow(determinism) — wall-clock throughput metadata (elapsed/devices-per-s); never feeds a verdict or report ordering
    let start = Instant::now();
    let partials = partitioned_with(
        experiment.batch.size,
        workers,
        &make_backend,
        |backend, from, to| experiment.run_range_with(backend, from, to),
    );
    let mut total = ExperimentResult::default();
    for partial in &partials {
        total.merge(partial);
    }
    // Per-range elapsed sums CPU time; report the observed wall-clock so
    // devices/s and samples/s mean what a caller expects of a fan-out.
    total.elapsed = start.elapsed();
    total
}

/// Classifies every device of a batch against `spec` in parallel,
/// returning the good-device proportion — the ground-truth yield sweep
/// used by the yield-anchor experiments.
pub fn classify_parallel(batch: &Batch, spec: &LinearitySpec, workers: usize) -> Proportion {
    let goods = partitioned(batch.size, workers, |from, to| {
        (from..to)
            .filter(|&i| spec.classify(&batch.device(i)).good)
            .count() as u64
    });
    Proportion::new(goods.iter().sum(), batch.size as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::types::Resolution;
    use bist_core::config::BistConfig;

    fn experiment(size: usize) -> Experiment {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(5)
            .build()
            .unwrap();
        Experiment::new(Batch::paper_simulation(29, size), cfg)
    }

    #[test]
    fn parallel_equals_sequential() {
        let exp = experiment(240);
        let seq = exp.run_range(0, 240);
        for workers in [2, 3, 8] {
            let par = run_parallel(&exp, workers);
            assert_eq!(par.matrix, seq.matrix, "workers {workers}");
            assert_eq!(par.samples, seq.samples, "workers {workers}");
        }
    }

    #[test]
    fn single_worker_matches_run() {
        let exp = experiment(50);
        assert_eq!(run_parallel(&exp, 1).matrix, exp.run().matrix);
    }

    #[test]
    fn tiny_batch_falls_back_to_sequential() {
        let exp = experiment(3);
        assert_eq!(run_parallel(&exp, 16).matrix.total(), 3);
    }

    #[test]
    fn zero_workers_uses_available_parallelism() {
        let exp = experiment(64);
        let r = run_parallel(&exp, 0);
        assert_eq!(r.matrix.total(), 64);
    }

    #[test]
    fn partitioned_covers_range_in_order() {
        let parts = partitioned(103, 4, |from, to| (from, to));
        assert_eq!(parts.first().unwrap().0, 0);
        assert_eq!(parts.last().unwrap().1, 103);
        for w in parts.windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
        }
    }

    #[test]
    fn partitioned_with_reuses_worker_state_and_covers_range() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Count how many states were built: one per spawned worker, not
        // one per chunk.
        let inits = AtomicUsize::new(0);
        let parts = partitioned_with(
            1000,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |claims, from, to| {
                *claims += 1;
                (*claims, from, to)
            },
        );
        assert!(inits.load(Ordering::Relaxed) <= 4);
        assert!(parts.len() > 4, "dispatch must be chunked, not pre-split");
        let mut covered = 0;
        for (claims, from, to) in &parts {
            assert!(*claims >= 1);
            assert_eq!(*from, covered, "chunks must tile the range in order");
            covered = *to;
        }
        assert_eq!(covered, 1000);
        assert!(
            parts.iter().any(|(claims, _, _)| *claims > 1),
            "some worker must claim more than one chunk"
        );
    }

    #[test]
    fn rtl_backend_fleet_matches_behavioral() {
        let exp = experiment(60);
        let behavioral = run_parallel(&exp, 2);
        let rtl = run_parallel_with(&exp, 2, bist_core::backend::RtlBackend::new);
        assert_eq!(behavioral.matrix, rtl.matrix);
        assert_eq!(behavioral.samples, rtl.samples);
    }

    #[test]
    fn classify_parallel_matches_sequential() {
        let batch = Batch::paper_simulation(7, 120);
        let spec = LinearitySpec::paper_stringent();
        let seq = classify_parallel(&batch, &spec, 1);
        let par = classify_parallel(&batch, &spec, 4);
        assert_eq!(seq.successes(), par.successes());
        assert_eq!(seq.trials(), par.trials());
    }
}
