//! Thread fan-out for batch experiments.
//!
//! Devices are generated from `(seed, index)`, so splitting a batch into
//! index ranges and merging the confusion matrices is exactly equivalent
//! to a sequential run — the tests assert that equivalence.

use crate::experiment::{Experiment, ExperimentResult};
use crossbeam::channel;
use std::thread;

/// Runs an experiment across `workers` threads, returning the merged
/// result. `workers = 1` degenerates to [`Experiment::run`]; 0 selects
/// the available parallelism.
pub fn run_parallel(experiment: &Experiment, workers: usize) -> ExperimentResult {
    let workers = if workers == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    let size = experiment.batch.size;
    if workers <= 1 || size < 2 * workers {
        return experiment.run();
    }
    let chunk = size.div_ceil(workers);
    let (tx, rx) = channel::bounded(workers);
    thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let exp = *experiment;
            scope.spawn(move || {
                let from = w * chunk;
                let to = (from + chunk).min(size);
                let partial = if from < to {
                    exp.run_range(from, to)
                } else {
                    ExperimentResult::default()
                };
                tx.send(partial).expect("receiver outlives workers");
            });
        }
        drop(tx);
        let mut total = ExperimentResult::default();
        for partial in rx {
            total.merge(&partial);
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::types::Resolution;
    use bist_core::config::BistConfig;

    fn experiment(size: usize) -> Experiment {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(5)
            .build()
            .unwrap();
        Experiment::new(Batch::paper_simulation(29, size), cfg)
    }

    #[test]
    fn parallel_equals_sequential() {
        let exp = experiment(240);
        let seq = exp.run();
        for workers in [2, 3, 8] {
            let par = run_parallel(&exp, workers);
            assert_eq!(par.matrix, seq.matrix, "workers {workers}");
        }
    }

    #[test]
    fn single_worker_matches_run() {
        let exp = experiment(50);
        assert_eq!(run_parallel(&exp, 1).matrix, exp.run().matrix);
    }

    #[test]
    fn tiny_batch_falls_back_to_sequential() {
        let exp = experiment(3);
        assert_eq!(run_parallel(&exp, 16).matrix.total(), 3);
    }

    #[test]
    fn zero_workers_uses_available_parallelism() {
        let exp = experiment(64);
        let r = run_parallel(&exp, 0);
        assert_eq!(r.matrix.total(), 64);
    }
}
