//! Differential fleet validation of the behavioural↔RTL verdict seam —
//! static and dynamic workloads alike.
//!
//! The streaming engine judges devices through pluggable backends
//! (`bist_core::backend`): the behavioural accumulators the fleet runs
//! in production, and the gate-accurate `bist_rtl::BistTop`. This
//! module sweeps both over the *same* code streams — random devices ×
//! counter widths 4–7 × deglitch on/off × noise configurations × ramp
//! slope errors — and demands **bit-exact agreement on every verdict
//! field** (codes judged, DNL/INL failure counts, functional
//! checks/mismatches, sample count, acceptance).
//!
//! Any disagreement is a [`Divergence`] carrying both verdicts; the
//! `rtl_fleet` reproduction binary fails its run (and CI) if one
//! appears. The equivalence holds because every harness sweep dwells
//! past its last transition (10-LSB overshoot), which is exactly the
//! drain contract the RTL needs to flush its synchroniser latency —
//! see `bist_core::backend` for the fine print.
//!
//! The **dynamic** seam gets the same treatment
//! ([`run_dyn_differential`], driven by the `dyn_fleet` binary): random
//! flash devices × converter resolution × mismatch σ × coherent-bin
//! choice, each screened by the behavioural Goertzel bank and the
//! fixed-point `bist_rtl::DynBistTop` on bit-identical code streams.
//! There the raw dB metrics legitimately differ by the RTL's bounded
//! quantisation, so agreement is demanded on what silicon latches: the
//! per-limit *decisions*, the sample count and the completeness
//! expectation ([`bist_core::dynamic::DynChecks`] plus the counters).
//! Any disagreement is a [`DynDivergence`] and fails the run.

use crate::batch::Batch;
use crate::parallel::partitioned;
use bist_adc::flash::FlashConfig;
use bist_adc::noise::NoiseConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::{Resolution, Volts};
use bist_core::backend::{BehavioralBackend, RtlBackend};
use bist_core::config::BistConfig;
use bist_core::dynamic::{
    run_dynamic_bist_with_backend, DynScratch, DynamicConfig, DynamicVerdict,
};
use bist_core::harness::{run_static_bist_with_backend, BistVerdict, Scratch};
use rand::rngs::StdRng;
use std::fmt;

/// The counter widths the paper sweeps (Table 1).
pub const COUNTER_BITS: [u32; 4] = [4, 5, 6, 7];

/// The acquisition noise points of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NoisePoint {
    /// The §3 theory setting: no noise at all.
    Noiseless,
    /// Comparator transition noise (the §3 toggle mechanism, ~0.04 LSB
    /// at the paper's 0.1 V LSB) — the deglitcher's raison d'être.
    Transition,
    /// Input noise + transition noise + aperture jitter together.
    Mixed,
}

impl NoisePoint {
    /// All sweep points.
    pub const ALL: [NoisePoint; 3] = [
        NoisePoint::Noiseless,
        NoisePoint::Transition,
        NoisePoint::Mixed,
    ];

    /// The acquisition noise this point injects.
    pub fn config(self) -> NoiseConfig {
        match self {
            NoisePoint::Noiseless => NoiseConfig::noiseless(),
            NoisePoint::Transition => NoiseConfig::noiseless().with_transition_noise(0.004),
            NoisePoint::Mixed => NoiseConfig::noiseless()
                .with_input_noise(0.002)
                .with_transition_noise(0.003)
                .with_jitter(1e-7),
        }
    }

    /// Stable label for reports and CSV artifacts.
    pub fn label(self) -> &'static str {
        match self {
            NoisePoint::Noiseless => "noiseless",
            NoisePoint::Transition => "transition",
            NoisePoint::Mixed => "mixed",
        }
    }
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioId {
    /// Counter width in bits.
    pub counter_bits: u32,
    /// Whether the deglitch filters are in the datapath.
    pub deglitch: bool,
    /// Acquisition noise point.
    pub noise: NoisePoint,
}

impl fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit/{}/{}",
            self.counter_bits,
            if self.deglitch { "deglitch" } else { "raw" },
            self.noise.label()
        )
    }
}

/// A device/scenario where the two backends disagreed, with both
/// verdicts for the post-mortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Device index within the batch.
    pub device: usize,
    /// The sweep cell.
    pub scenario: ScenarioId,
    /// What the behavioural accumulators latched.
    pub behavioral: BistVerdict,
    /// What the gate-accurate datapath latched.
    pub rtl: BistVerdict,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} [{}]: behavioral {:?} vs rtl {:?}",
            self.device, self.scenario, self.behavioral, self.rtl
        )
    }
}

/// Per-scenario agreement accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioTally {
    /// The sweep cell.
    pub scenario: ScenarioId,
    /// Devices compared in this cell.
    pub comparisons: u64,
    /// Devices with bit-exact verdict agreement.
    pub agreements: u64,
    /// Devices the BIST accepted (both backends — counted on the
    /// behavioural verdict).
    pub accepted: u64,
}

/// Outcome of a differential sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DifferentialResult {
    /// Devices swept.
    pub devices: u64,
    /// Total (device × scenario) comparisons.
    pub comparisons: u64,
    /// Comparisons with bit-exact verdict agreement.
    pub agreements: u64,
    /// Every disagreement observed.
    pub divergences: Vec<Divergence>,
    /// Agreement accounting per sweep cell (stable grid order).
    pub per_scenario: Vec<ScenarioTally>,
}

impl DifferentialResult {
    /// Whether the sweep found no divergence at all.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.agreements == self.comparisons
    }

    /// Fraction of comparisons in bit-exact agreement.
    pub fn agreement_rate(&self) -> f64 {
        if self.comparisons == 0 {
            0.0
        } else {
            self.agreements as f64 / self.comparisons as f64
        }
    }

    /// Merges a partial result from another worker (scenario tallies
    /// merge cell-wise; both sides carry the same grid order).
    pub fn merge(&mut self, other: &DifferentialResult) {
        self.devices += other.devices;
        self.comparisons += other.comparisons;
        self.agreements += other.agreements;
        self.divergences.extend_from_slice(&other.divergences);
        if self.per_scenario.is_empty() {
            self.per_scenario = other.per_scenario.clone();
        } else {
            debug_assert_eq!(self.per_scenario.len(), other.per_scenario.len());
            for (mine, theirs) in self.per_scenario.iter_mut().zip(&other.per_scenario) {
                debug_assert_eq!(mine.scenario, theirs.scenario);
                mine.comparisons += theirs.comparisons;
                mine.agreements += theirs.agreements;
                mine.accepted += theirs.accepted;
            }
        }
    }
}

impl fmt::Display for DifferentialResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices × {} scenarios: {}/{} verdicts bit-exact ({} divergences)",
            self.devices,
            self.per_scenario.len(),
            self.agreements,
            self.comparisons,
            self.divergences.len()
        )
    }
}

/// The sweep grid: every counter width × deglitch × noise point, with
/// the BIST config built once per cell.
fn scenario_grid() -> Vec<(ScenarioId, BistConfig, NoiseConfig)> {
    let spec = LinearitySpec::paper_stringent();
    let mut grid = Vec::new();
    for &counter_bits in &COUNTER_BITS {
        for deglitch in [false, true] {
            let config = BistConfig::builder(bist_adc::types::Resolution::SIX_BIT, spec)
                .counter_bits(counter_bits)
                .deglitch(deglitch)
                .build()
                .expect("paper operating points are valid");
            for noise in NoisePoint::ALL {
                grid.push((
                    ScenarioId {
                        counter_bits,
                        deglitch,
                        noise,
                    },
                    config,
                    noise.config(),
                ));
            }
        }
    }
    grid
}

/// RNG-stream salt decorrelating the differential sweep from device
/// generation and the other experiments.
const DIFF_SALT: usize = 0xd1ff_0000;

/// Runs the differential sweep over a device range — the unit of work
/// for the parallel fan-out. Both backends consume bit-identical code
/// streams (same `(seed, device, scenario)`-derived RNG), so any
/// disagreement is a genuine datapath divergence, not sampling noise.
pub fn run_differential_range(
    batch: &Batch,
    slope_error: f64,
    from: usize,
    to: usize,
) -> DifferentialResult {
    let grid = scenario_grid();
    let mut behavioral_backend = BehavioralBackend;
    // One RTL backend per grid cell: the device-outer sweep order would
    // otherwise thrash the backend's single cached BistTop (one rebuild
    // per config change); per-cell backends keep every cache hit an
    // in-place reset.
    let mut rtl_backends: Vec<RtlBackend> = grid.iter().map(|_| RtlBackend::new()).collect();
    let mut scratch_b = Scratch::new();
    let mut scratch_r = Scratch::new();
    let mut result = DifferentialResult {
        per_scenario: grid
            .iter()
            .map(|(id, ..)| ScenarioTally {
                scenario: *id,
                comparisons: 0,
                agreements: 0,
                accepted: 0,
            })
            .collect(),
        ..DifferentialResult::default()
    };
    let to = to.min(batch.size);
    for i in from..to {
        let tf = batch.device(i);
        result.devices += 1;
        for (cell, (id, config, noise)) in grid.iter().enumerate() {
            // Cell stride 2^24: overflow-free even on 32-bit targets
            // (cell < 48) and collision-free below 16M devices.
            let rng_seed = i ^ DIFF_SALT ^ (cell << 24);
            let behavioral = run_static_bist_with_backend(
                &mut behavioral_backend,
                &tf,
                config,
                noise,
                slope_error,
                &mut batch.device_rng(rng_seed),
                &mut scratch_b,
            );
            let rtl = run_static_bist_with_backend(
                &mut rtl_backends[cell],
                &tf,
                config,
                noise,
                slope_error,
                &mut batch.device_rng(rng_seed),
                &mut scratch_r,
            );
            result.comparisons += 1;
            result.per_scenario[cell].comparisons += 1;
            if behavioral == rtl {
                result.agreements += 1;
                result.per_scenario[cell].agreements += 1;
            } else {
                result.divergences.push(Divergence {
                    device: i,
                    scenario: *id,
                    behavioral,
                    rtl,
                });
            }
            if behavioral.accepted() {
                result.per_scenario[cell].accepted += 1;
            }
        }
    }
    result
}

/// Runs the full differential sweep over a batch, fanned out across
/// `workers` threads (0 = available parallelism). Deterministic in the
/// worker count: devices and RNG streams derive from `(seed, index,
/// scenario)` alone.
pub fn run_differential(batch: &Batch, slope_error: f64, workers: usize) -> DifferentialResult {
    let partials = partitioned(batch.size, workers, |from, to| {
        run_differential_range(batch, slope_error, from, to)
    });
    let mut total = DifferentialResult::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

// ---------------------------------------------------------------------
// The dynamic seam: behavioural Goertzel bank vs fixed-point DynBistTop.
// ---------------------------------------------------------------------

/// Converter resolutions of the dynamic sweep.
pub const DYN_RESOLUTION_BITS: [u32; 2] = [6, 8];

/// Code-width mismatch points of the dynamic sweep, milli-LSB (0 =
/// ideal, 160/210 = the paper's circuit-simulation range).
pub const DYN_SIGMA_MILLI: [u32; 3] = [0, 160, 210];

/// Coherent-bin choices of the dynamic sweep (cycles per record, both
/// odd and coprime with the record length).
pub const DYN_CYCLES: [u32; 2] = [1021, 997];

/// Samples per coherent record in the dynamic sweep.
pub const DYN_RECORD_LEN: usize = 4096;

/// One cell of the dynamic sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynScenarioId {
    /// Converter resolution in bits.
    pub resolution_bits: u32,
    /// Code-width mismatch σ_w in milli-LSB.
    pub sigma_milli_lsb: u32,
    /// Sine cycles per record (= the fundamental bin).
    pub cycles: u32,
}

impl fmt::Display for DynScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit/σ0.{:03}/{}c",
            self.resolution_bits, self.sigma_milli_lsb, self.cycles
        )
    }
}

/// A device/scenario where the two dynamic backends disagreed on a
/// decision, with both verdicts for the post-mortem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynDivergence {
    /// Device index within the sweep.
    pub device: usize,
    /// The sweep cell.
    pub scenario: DynScenarioId,
    /// What the behavioural bank concluded.
    pub behavioral: DynamicVerdict,
    /// What the fixed-point datapath concluded.
    pub rtl: DynamicVerdict,
}

impl fmt::Display for DynDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} [{}]: behavioral {} vs rtl {}",
            self.device, self.scenario, self.behavioral, self.rtl
        )
    }
}

/// Per-cell agreement accounting of the dynamic sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynScenarioTally {
    /// The sweep cell.
    pub scenario: DynScenarioId,
    /// Devices compared in this cell.
    pub comparisons: u64,
    /// Devices with decision-exact verdict agreement.
    pub agreements: u64,
    /// Devices accepted (counted on the behavioural verdict).
    pub accepted: u64,
}

/// Outcome of a dynamic differential sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DynDifferentialResult {
    /// Devices swept.
    pub devices: u64,
    /// Total (device × scenario) comparisons.
    pub comparisons: u64,
    /// Comparisons with decision-exact agreement.
    pub agreements: u64,
    /// Every disagreement observed.
    pub divergences: Vec<DynDivergence>,
    /// Agreement accounting per sweep cell (stable grid order).
    pub per_scenario: Vec<DynScenarioTally>,
}

impl DynDifferentialResult {
    /// Whether the sweep found no divergence at all.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.agreements == self.comparisons
    }

    /// Fraction of comparisons in decision-exact agreement.
    pub fn agreement_rate(&self) -> f64 {
        if self.comparisons == 0 {
            0.0
        } else {
            self.agreements as f64 / self.comparisons as f64
        }
    }

    /// Merges a partial result from another worker (cell-wise, like the
    /// static [`DifferentialResult::merge`]).
    pub fn merge(&mut self, other: &DynDifferentialResult) {
        self.devices += other.devices;
        self.comparisons += other.comparisons;
        self.agreements += other.agreements;
        self.divergences.extend_from_slice(&other.divergences);
        if self.per_scenario.is_empty() {
            self.per_scenario = other.per_scenario.clone();
        } else {
            debug_assert_eq!(self.per_scenario.len(), other.per_scenario.len());
            for (mine, theirs) in self.per_scenario.iter_mut().zip(&other.per_scenario) {
                debug_assert_eq!(mine.scenario, theirs.scenario);
                mine.comparisons += theirs.comparisons;
                mine.agreements += theirs.agreements;
                mine.accepted += theirs.accepted;
            }
        }
    }
}

impl fmt::Display for DynDifferentialResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices × {} scenarios: {}/{} dynamic decisions exact ({} divergences)",
            self.devices,
            self.per_scenario.len(),
            self.agreements,
            self.comparisons,
            self.divergences.len()
        )
    }
}

/// The dynamic sweep grid: every resolution × mismatch σ × coherent-bin
/// choice, with the device model and test plan built once per cell.
fn dyn_scenario_grid() -> Vec<(DynScenarioId, FlashConfig, DynamicConfig)> {
    let mut grid = Vec::new();
    for &bits in &DYN_RESOLUTION_BITS {
        let resolution = Resolution::new(bits).expect("sweep resolutions are valid");
        // Keep the seed's 0.1 V/LSB convention at every resolution.
        let high = Volts(0.1 * resolution.code_count() as f64);
        for &sigma_milli in &DYN_SIGMA_MILLI {
            let flash = FlashConfig::new(resolution, Volts(0.0), high)
                .with_width_sigma_lsb(sigma_milli as f64 / 1000.0);
            for &cycles in &DYN_CYCLES {
                // Drive at exactly full scale: the default overdrive's
                // clipping distortion (~−37 dBc, resolution-independent)
                // would bury the 8-bit quantisation floor and reject
                // even ideal devices.
                let config = DynamicConfig::new(resolution, DYN_RECORD_LEN, cycles)
                    .expect("sweep bins are valid")
                    .with_overdrive(0.0);
                grid.push((
                    DynScenarioId {
                        resolution_bits: bits,
                        sigma_milli_lsb: sigma_milli,
                        cycles,
                    },
                    flash,
                    config,
                ));
            }
        }
    }
    grid
}

/// RNG-stream salts decorrelating dynamic device generation and
/// acquisition noise from each other and from the other experiments.
const DYN_DEVICE_SALT: u64 = 0xdd1f_f000;
const DYN_NOISE_SALT: u64 = 0xdd1f_f001;

/// A seeded RNG for `(seed, salt, device, cell)` — every cell gets its
/// own device and noise streams, so the sweep is deterministic in the
/// worker count and cells never share draws (the shared
/// [`crate::batch::stream_rng`] mixing).
fn dyn_stream_rng(seed: u64, device: usize, cell: usize, salt: u64) -> StdRng {
    crate::batch::stream_rng(seed, &[salt, device as u64, cell as u64])
}

/// Whether two dynamic verdicts agree on everything the silicon
/// latches: the per-limit decisions, the sample count and the
/// completeness expectation. The raw dB metrics are allowed to differ
/// by the RTL's bounded fixed-point quantisation.
pub fn dyn_decisions_agree(a: &DynamicVerdict, b: &DynamicVerdict) -> bool {
    a.checks == b.checks && a.samples == b.samples && a.expected_samples == b.expected_samples
}

/// Runs the dynamic differential sweep over a device range — the unit
/// of work for the parallel fan-out. Both backends consume
/// bit-identical code streams (same `(seed, device, cell)`-derived
/// device and noise RNG), so any decision disagreement is a genuine
/// datapath divergence.
pub fn run_dyn_differential_range(seed: u64, from: usize, to: usize) -> DynDifferentialResult {
    let grid = dyn_scenario_grid();
    let mut behavioral_backend = BehavioralBackend;
    // One RTL backend and one behavioural scratch per cell: the
    // device-outer sweep order would otherwise thrash the cached
    // DynBistTop / Goertzel bank (one rebuild per config change).
    let mut rtl_backends: Vec<RtlBackend> = grid.iter().map(|_| RtlBackend::new()).collect();
    let mut scratches: Vec<DynScratch> = grid.iter().map(|_| DynScratch::new()).collect();
    let mut rtl_scratch = DynScratch::new(); // unused by the RTL backend
    let noise = NoiseConfig::noiseless().with_input_noise(0.002);
    let mut result = DynDifferentialResult {
        per_scenario: grid
            .iter()
            .map(|(id, ..)| DynScenarioTally {
                scenario: *id,
                comparisons: 0,
                agreements: 0,
                accepted: 0,
            })
            .collect(),
        ..DynDifferentialResult::default()
    };
    for i in from..to {
        result.devices += 1;
        for (cell, (id, flash, config)) in grid.iter().enumerate() {
            let adc = flash.sample(&mut dyn_stream_rng(seed, i, cell, DYN_DEVICE_SALT));
            let behavioral = run_dynamic_bist_with_backend(
                &mut behavioral_backend,
                &adc,
                config,
                &noise,
                &mut dyn_stream_rng(seed, i, cell, DYN_NOISE_SALT),
                &mut scratches[cell],
            );
            let rtl = run_dynamic_bist_with_backend(
                &mut rtl_backends[cell],
                &adc,
                config,
                &noise,
                &mut dyn_stream_rng(seed, i, cell, DYN_NOISE_SALT),
                &mut rtl_scratch,
            );
            result.comparisons += 1;
            result.per_scenario[cell].comparisons += 1;
            if dyn_decisions_agree(&behavioral, &rtl) {
                result.agreements += 1;
                result.per_scenario[cell].agreements += 1;
            } else {
                result.divergences.push(DynDivergence {
                    device: i,
                    scenario: *id,
                    behavioral,
                    rtl,
                });
            }
            if behavioral.accepted() {
                result.per_scenario[cell].accepted += 1;
            }
        }
    }
    result
}

/// Runs the full dynamic differential sweep over `devices` devices,
/// fanned out across `workers` threads (0 = available parallelism).
/// Deterministic in the worker count: devices and RNG streams derive
/// from `(seed, index, cell)` alone.
pub fn run_dyn_differential(seed: u64, devices: usize, workers: usize) -> DynDifferentialResult {
    let partials = partitioned(devices, workers, |from, to| {
        run_dyn_differential_range(seed, from, to)
    });
    let mut total = DynDifferentialResult::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_is_bit_exact() {
        let batch = Batch::paper_simulation(31, 12);
        let result = run_differential(&batch, 0.0, 0);
        assert_eq!(result.devices, 12);
        assert_eq!(result.comparisons, 12 * 24);
        assert!(
            result.is_clean(),
            "divergences: {:#?}",
            &result.divergences[..result.divergences.len().min(3)]
        );
        // The sweep does real screening work: some devices accepted,
        // some rejected, across the grid.
        let accepted: u64 = result.per_scenario.iter().map(|s| s.accepted).sum();
        assert!(accepted > 0);
        assert!(accepted < result.comparisons);
    }

    #[test]
    fn slope_error_sweep_is_bit_exact() {
        // The paper's "slightly too steep" ramp shifts every count;
        // both datapaths must shift identically.
        let batch = Batch::paper_simulation(37, 8);
        let result = run_differential(&batch, -0.022, 0);
        assert!(result.is_clean(), "{result}");
    }

    #[test]
    fn independent_of_worker_count() {
        let batch = Batch::paper_simulation(41, 10);
        let seq = run_differential(&batch, 0.0, 1);
        let par = run_differential(&batch, 0.0, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn merge_accumulates_cellwise() {
        let batch = Batch::paper_simulation(43, 6);
        let whole = run_differential_range(&batch, 0.0, 0, 6);
        let mut parts = run_differential_range(&batch, 0.0, 0, 2);
        parts.merge(&run_differential_range(&batch, 0.0, 2, 6));
        assert_eq!(whole.comparisons, parts.comparisons);
        assert_eq!(whole.agreements, parts.agreements);
        assert_eq!(whole.per_scenario, parts.per_scenario);
    }

    #[test]
    fn display_summarises() {
        let batch = Batch::paper_simulation(47, 2);
        let r = run_differential(&batch, 0.0, 1);
        let s = r.to_string();
        assert!(s.contains("2 devices"), "{s}");
        assert!(s.contains("bit-exact"), "{s}");
    }

    #[test]
    fn dyn_small_fleet_is_decision_exact() {
        let result = run_dyn_differential(31, 8, 0);
        assert_eq!(result.devices, 8);
        assert_eq!(result.comparisons, 8 * 12);
        assert!(
            result.is_clean(),
            "divergences: {:#?}",
            &result.divergences[..result.divergences.len().min(3)]
        );
        // The sweep does real screening work: the ideal cells accept,
        // the worst-case mismatch cells reject at least someone.
        let accepted: u64 = result.per_scenario.iter().map(|s| s.accepted).sum();
        assert!(accepted > 0);
        assert!(accepted < result.comparisons, "nothing was rejected");
    }

    #[test]
    fn dyn_independent_of_worker_count() {
        let seq = run_dyn_differential(41, 6, 1);
        let par = run_dyn_differential(41, 6, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn dyn_merge_accumulates_cellwise() {
        let whole = run_dyn_differential_range(43, 0, 4);
        let mut parts = run_dyn_differential_range(43, 0, 1);
        parts.merge(&run_dyn_differential_range(43, 1, 4));
        assert_eq!(whole.comparisons, parts.comparisons);
        assert_eq!(whole.agreements, parts.agreements);
        assert_eq!(whole.per_scenario, parts.per_scenario);
    }

    #[test]
    fn dyn_cells_draw_independent_devices() {
        // The satellite fix behind run_dyn_differential: every cell has
        // its own seeded device stream, so two cells at the same device
        // index see different silicon.
        let a = dyn_stream_rng(7, 3, 0, DYN_DEVICE_SALT);
        let b = dyn_stream_rng(7, 3, 1, DYN_DEVICE_SALT);
        let mut a = a;
        let mut b = b;
        use rand::RngCore;
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn dyn_display_summarises() {
        let r = run_dyn_differential(47, 2, 1);
        let s = r.to_string();
        assert!(s.contains("2 devices"), "{s}");
        assert!(s.contains("decisions exact"), "{s}");
    }
}
