//! Differential fleet validation of the behavioural↔RTL verdict seam —
//! static and dynamic workloads alike.
//!
//! The streaming engine judges devices through pluggable backends
//! (`bist_core::backend`): the behavioural accumulators the fleet runs
//! in production, and the gate-accurate `bist_rtl::BistTop`. This
//! module sweeps both over the *same* code streams — random devices ×
//! counter widths 4–7 × deglitch on/off × noise configurations × ramp
//! slope errors — and demands **bit-exact agreement on every verdict
//! field** (codes judged, DNL/INL failure counts, functional
//! checks/mismatches, sample count, acceptance).
//!
//! Any disagreement is a [`Divergence`] carrying both verdicts; the
//! `rtl_fleet` reproduction binary fails its run (and CI) if one
//! appears. The equivalence holds because every harness sweep dwells
//! past its last transition (10-LSB overshoot), which is exactly the
//! drain contract the RTL needs to flush its synchroniser latency —
//! see `bist_core::backend` for the fine print.
//!
//! The **dynamic** seam gets the same treatment
//! ([`run_dyn_differential`], driven by the `dyn_fleet` binary): random
//! flash devices × converter resolution × mismatch σ × coherent-bin
//! choice, each screened by the behavioural Goertzel bank and the
//! fixed-point `bist_rtl::DynBistTop` on bit-identical code streams.
//! There the raw dB metrics legitimately differ by the RTL's bounded
//! quantisation, so agreement is demanded on what silicon latches: the
//! per-limit *decisions*, the sample count and the completeness
//! expectation ([`bist_core::dynamic::DynChecks`] plus the counters).
//! Any disagreement is a [`DynDivergence`] and fails the run.

use crate::batch::Batch;
use crate::parallel::partitioned;
use bist_adc::flash::FlashConfig;
use bist_adc::noise::NoiseConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::{Resolution, Volts};
use bist_core::analytic::WidthDistribution;
use bist_core::backend::RtlBackend;
use bist_core::config::BistConfig;
use bist_core::dynamic::{DynamicConfig, DynamicVerdict};
use bist_core::harness::BistVerdict;
use bist_core::priors::{PriorsBank, SeqTally};
use bist_core::screener::{Screener, Workload};
use bist_core::sequencer::{SeqDecision, SeqOutcome, SequencerConfig, SweptVerdict};
use bist_core::source::{Architecture, DeviceSource, IidWidthSource, SourceSpec};
use rand::rngs::StdRng;
use std::fmt;

/// The counter widths the paper sweeps (Table 1).
pub const COUNTER_BITS: [u32; 4] = [4, 5, 6, 7];

/// The acquisition noise points of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NoisePoint {
    /// The §3 theory setting: no noise at all.
    Noiseless,
    /// Comparator transition noise (the §3 toggle mechanism, ~0.04 LSB
    /// at the paper's 0.1 V LSB) — the deglitcher's raison d'être.
    Transition,
    /// Input noise + transition noise + aperture jitter together.
    Mixed,
}

impl NoisePoint {
    /// All sweep points.
    pub const ALL: [NoisePoint; 3] = [
        NoisePoint::Noiseless,
        NoisePoint::Transition,
        NoisePoint::Mixed,
    ];

    /// The acquisition noise this point injects.
    pub fn config(self) -> NoiseConfig {
        match self {
            NoisePoint::Noiseless => NoiseConfig::noiseless(),
            NoisePoint::Transition => NoiseConfig::noiseless().with_transition_noise(0.004),
            NoisePoint::Mixed => NoiseConfig::noiseless()
                .with_input_noise(0.002)
                .with_transition_noise(0.003)
                .with_jitter(1e-7),
        }
    }

    /// Stable label for reports and CSV artifacts.
    pub fn label(self) -> &'static str {
        match self {
            NoisePoint::Noiseless => "noiseless",
            NoisePoint::Transition => "transition",
            NoisePoint::Mixed => "mixed",
        }
    }
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioId {
    /// Counter width in bits.
    pub counter_bits: u32,
    /// Whether the deglitch filters are in the datapath.
    pub deglitch: bool,
    /// Acquisition noise point.
    pub noise: NoisePoint,
}

impl fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit/{}/{}",
            self.counter_bits,
            if self.deglitch { "deglitch" } else { "raw" },
            self.noise.label()
        )
    }
}

/// A device/scenario where the two backends disagreed, with both
/// verdicts for the post-mortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Device index within the batch.
    pub device: usize,
    /// The sweep cell.
    pub scenario: ScenarioId,
    /// What the behavioural accumulators latched.
    pub behavioral: BistVerdict,
    /// What the gate-accurate datapath latched.
    pub rtl: BistVerdict,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} [{}]: behavioral {:?} vs rtl {:?}",
            self.device, self.scenario, self.behavioral, self.rtl
        )
    }
}

/// Per-scenario agreement accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioTally {
    /// The sweep cell.
    pub scenario: ScenarioId,
    /// Devices compared in this cell.
    pub comparisons: u64,
    /// Devices with bit-exact verdict agreement.
    pub agreements: u64,
    /// Devices the BIST accepted (both backends — counted on the
    /// behavioural verdict).
    pub accepted: u64,
}

/// Outcome of a differential sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DifferentialResult {
    /// Devices swept.
    pub devices: u64,
    /// Total (device × scenario) comparisons.
    pub comparisons: u64,
    /// Comparisons with bit-exact verdict agreement.
    pub agreements: u64,
    /// Every disagreement observed.
    pub divergences: Vec<Divergence>,
    /// Agreement accounting per sweep cell (stable grid order).
    pub per_scenario: Vec<ScenarioTally>,
}

impl DifferentialResult {
    /// Whether the sweep found no divergence at all.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.agreements == self.comparisons
    }

    /// Fraction of comparisons in bit-exact agreement.
    pub fn agreement_rate(&self) -> f64 {
        if self.comparisons == 0 {
            0.0
        } else {
            self.agreements as f64 / self.comparisons as f64
        }
    }

    /// Merges a partial result from another worker (scenario tallies
    /// merge cell-wise; both sides carry the same grid order).
    pub fn merge(&mut self, other: &DifferentialResult) {
        self.devices += other.devices;
        self.comparisons += other.comparisons;
        self.agreements += other.agreements;
        self.divergences.extend_from_slice(&other.divergences);
        if self.per_scenario.is_empty() {
            self.per_scenario = other.per_scenario.clone();
        } else {
            debug_assert_eq!(self.per_scenario.len(), other.per_scenario.len());
            for (mine, theirs) in self.per_scenario.iter_mut().zip(&other.per_scenario) {
                debug_assert_eq!(mine.scenario, theirs.scenario);
                mine.comparisons += theirs.comparisons;
                mine.agreements += theirs.agreements;
                mine.accepted += theirs.accepted;
            }
        }
    }
}

impl fmt::Display for DifferentialResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices × {} scenarios: {}/{} verdicts bit-exact ({} divergences)",
            self.devices,
            self.per_scenario.len(),
            self.agreements,
            self.comparisons,
            self.divergences.len()
        )
    }
}

/// The sweep grid: every counter width × deglitch × noise point, with
/// the BIST config built once per cell.
fn scenario_grid() -> Vec<(ScenarioId, BistConfig, NoiseConfig)> {
    let spec = LinearitySpec::paper_stringent();
    let mut grid = Vec::new();
    for &counter_bits in &COUNTER_BITS {
        for deglitch in [false, true] {
            let config = BistConfig::builder(bist_adc::types::Resolution::SIX_BIT, spec)
                .counter_bits(counter_bits)
                .deglitch(deglitch)
                .build()
                .expect("paper operating points are valid");
            for noise in NoisePoint::ALL {
                grid.push((
                    ScenarioId {
                        counter_bits,
                        deglitch,
                        noise,
                    },
                    config,
                    noise.config(),
                ));
            }
        }
    }
    grid
}

/// RNG-stream salt decorrelating the differential sweep from device
/// generation and the other experiments.
const DIFF_SALT: usize = 0xd1ff_0000;

/// Runs the differential sweep over a device range — the unit of work
/// for the parallel fan-out. Both backends consume bit-identical code
/// streams (same `(seed, device, scenario)`-derived RNG), so any
/// disagreement is a genuine datapath divergence, not sampling noise.
pub fn run_differential_range(
    batch: &Batch,
    slope_error: f64,
    from: usize,
    to: usize,
) -> DifferentialResult {
    let grid = scenario_grid();
    // One screener per (grid cell, backend): the device-outer sweep
    // order would otherwise thrash the RTL backend's single cached
    // BistTop (one rebuild per config change); per-cell screeners keep
    // every cache hit an in-place reset.
    let mut behavioral: Vec<Screener> = grid
        .iter()
        .map(|(_, config, noise)| {
            Screener::new(
                Workload::static_ramp(*config)
                    .with_noise(*noise)
                    .with_slope_error(slope_error),
            )
        })
        .collect();
    let mut rtl: Vec<Screener<RtlBackend>> = grid
        .iter()
        .map(|(_, config, noise)| {
            Screener::new(
                Workload::static_ramp(*config)
                    .with_noise(*noise)
                    .with_slope_error(slope_error),
            )
            .backend(RtlBackend::new())
        })
        .collect();
    let mut result = DifferentialResult {
        per_scenario: grid
            .iter()
            .map(|(id, ..)| ScenarioTally {
                scenario: *id,
                comparisons: 0,
                agreements: 0,
                accepted: 0,
            })
            .collect(),
        ..DifferentialResult::default()
    };
    let to = to.min(batch.size);
    for i in from..to {
        let tf = batch.device(i);
        result.devices += 1;
        for (cell, (id, ..)) in grid.iter().enumerate() {
            // Cell stride 2^24: overflow-free even on 32-bit targets
            // (cell < 48) and collision-free below 16M devices.
            let rng_seed = i ^ DIFF_SALT ^ (cell << 24);
            let behavioral = behavioral[cell]
                .screen_one(&tf, &mut batch.device_rng(rng_seed))
                .as_static()
                .expect("static workload")
                .verdict;
            let rtl = rtl[cell]
                .screen_one(&tf, &mut batch.device_rng(rng_seed))
                .as_static()
                .expect("static workload")
                .verdict;
            result.comparisons += 1;
            result.per_scenario[cell].comparisons += 1;
            if behavioral == rtl {
                result.agreements += 1;
                result.per_scenario[cell].agreements += 1;
            } else {
                result.divergences.push(Divergence {
                    device: i,
                    scenario: *id,
                    behavioral,
                    rtl,
                });
            }
            if behavioral.accepted() {
                result.per_scenario[cell].accepted += 1;
            }
        }
    }
    result
}

/// Runs the full differential sweep over a batch, fanned out across
/// `workers` threads (0 = available parallelism). Deterministic in the
/// worker count: devices and RNG streams derive from `(seed, index,
/// scenario)` alone.
pub fn run_differential(batch: &Batch, slope_error: f64, workers: usize) -> DifferentialResult {
    let partials = partitioned(batch.size, workers, |from, to| {
        run_differential_range(batch, slope_error, from, to)
    });
    let mut total = DifferentialResult::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

// ---------------------------------------------------------------------
// The dynamic seam: behavioural Goertzel bank vs fixed-point DynBistTop.
// ---------------------------------------------------------------------

/// Converter resolutions of the dynamic sweep.
pub const DYN_RESOLUTION_BITS: [u32; 2] = [6, 8];

/// Code-width mismatch points of the dynamic sweep, milli-LSB (0 =
/// ideal, 160/210 = the paper's circuit-simulation range).
pub const DYN_SIGMA_MILLI: [u32; 3] = [0, 160, 210];

/// Coherent-bin choices of the dynamic sweep (cycles per record, both
/// odd and coprime with the record length).
pub const DYN_CYCLES: [u32; 2] = [1021, 997];

/// Samples per coherent record in the dynamic sweep.
pub const DYN_RECORD_LEN: usize = 4096;

/// One cell of the dynamic sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynScenarioId {
    /// Converter resolution in bits.
    pub resolution_bits: u32,
    /// Code-width mismatch σ_w in milli-LSB.
    pub sigma_milli_lsb: u32,
    /// Sine cycles per record (= the fundamental bin).
    pub cycles: u32,
}

impl fmt::Display for DynScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit/σ0.{:03}/{}c",
            self.resolution_bits, self.sigma_milli_lsb, self.cycles
        )
    }
}

/// A device/scenario where the two dynamic backends disagreed on a
/// decision, with both verdicts for the post-mortem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynDivergence {
    /// Device index within the sweep.
    pub device: usize,
    /// The sweep cell.
    pub scenario: DynScenarioId,
    /// What the behavioural bank concluded.
    pub behavioral: DynamicVerdict,
    /// What the fixed-point datapath concluded.
    pub rtl: DynamicVerdict,
}

impl fmt::Display for DynDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} [{}]: behavioral {} vs rtl {}",
            self.device, self.scenario, self.behavioral, self.rtl
        )
    }
}

/// Per-cell agreement accounting of the dynamic sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynScenarioTally {
    /// The sweep cell.
    pub scenario: DynScenarioId,
    /// Devices compared in this cell.
    pub comparisons: u64,
    /// Devices with decision-exact verdict agreement.
    pub agreements: u64,
    /// Devices accepted (counted on the behavioural verdict).
    pub accepted: u64,
}

/// Outcome of a dynamic differential sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DynDifferentialResult {
    /// Devices swept.
    pub devices: u64,
    /// Total (device × scenario) comparisons.
    pub comparisons: u64,
    /// Comparisons with decision-exact agreement.
    pub agreements: u64,
    /// Every disagreement observed.
    pub divergences: Vec<DynDivergence>,
    /// Agreement accounting per sweep cell (stable grid order).
    pub per_scenario: Vec<DynScenarioTally>,
}

impl DynDifferentialResult {
    /// Whether the sweep found no divergence at all.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.agreements == self.comparisons
    }

    /// Fraction of comparisons in decision-exact agreement.
    pub fn agreement_rate(&self) -> f64 {
        if self.comparisons == 0 {
            0.0
        } else {
            self.agreements as f64 / self.comparisons as f64
        }
    }

    /// Merges a partial result from another worker (cell-wise, like the
    /// static [`DifferentialResult::merge`]).
    pub fn merge(&mut self, other: &DynDifferentialResult) {
        self.devices += other.devices;
        self.comparisons += other.comparisons;
        self.agreements += other.agreements;
        self.divergences.extend_from_slice(&other.divergences);
        if self.per_scenario.is_empty() {
            self.per_scenario = other.per_scenario.clone();
        } else {
            debug_assert_eq!(self.per_scenario.len(), other.per_scenario.len());
            for (mine, theirs) in self.per_scenario.iter_mut().zip(&other.per_scenario) {
                debug_assert_eq!(mine.scenario, theirs.scenario);
                mine.comparisons += theirs.comparisons;
                mine.agreements += theirs.agreements;
                mine.accepted += theirs.accepted;
            }
        }
    }
}

impl fmt::Display for DynDifferentialResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices × {} scenarios: {}/{} dynamic decisions exact ({} divergences)",
            self.devices,
            self.per_scenario.len(),
            self.agreements,
            self.comparisons,
            self.divergences.len()
        )
    }
}

/// The dynamic sweep grid: every resolution × mismatch σ × coherent-bin
/// choice, with the device model and test plan built once per cell.
fn dyn_scenario_grid() -> Vec<(DynScenarioId, FlashConfig, DynamicConfig)> {
    let mut grid = Vec::new();
    for &bits in &DYN_RESOLUTION_BITS {
        let resolution = Resolution::new(bits).expect("sweep resolutions are valid");
        // Keep the seed's 0.1 V/LSB convention at every resolution.
        let high = Volts(0.1 * resolution.code_count() as f64);
        for &sigma_milli in &DYN_SIGMA_MILLI {
            let flash = FlashConfig::new(resolution, Volts(0.0), high)
                .with_width_sigma_lsb(sigma_milli as f64 / 1000.0);
            for &cycles in &DYN_CYCLES {
                // Drive at exactly full scale: the default overdrive's
                // clipping distortion (~−37 dBc, resolution-independent)
                // would bury the 8-bit quantisation floor and reject
                // even ideal devices.
                let config = DynamicConfig::new(resolution, DYN_RECORD_LEN, cycles)
                    .expect("sweep bins are valid")
                    .with_overdrive(0.0);
                grid.push((
                    DynScenarioId {
                        resolution_bits: bits,
                        sigma_milli_lsb: sigma_milli,
                        cycles,
                    },
                    flash,
                    config,
                ));
            }
        }
    }
    grid
}

/// RNG-stream salts decorrelating dynamic device generation and
/// acquisition noise from each other and from the other experiments.
const DYN_DEVICE_SALT: u64 = 0xdd1f_f000;
const DYN_NOISE_SALT: u64 = 0xdd1f_f001;

/// A seeded RNG for `(seed, salt, device, cell)` — every cell gets its
/// own device and noise streams, so the sweep is deterministic in the
/// worker count and cells never share draws (the shared
/// [`crate::batch::stream_rng`] mixing).
fn dyn_stream_rng(seed: u64, device: usize, cell: usize, salt: u64) -> StdRng {
    crate::batch::stream_rng(seed, &[salt, device as u64, cell as u64])
}

/// Whether two dynamic verdicts agree on everything the silicon
/// latches: the per-limit decisions, the sample count and the
/// completeness expectation. The raw dB metrics are allowed to differ
/// by the RTL's bounded fixed-point quantisation.
pub fn dyn_decisions_agree(a: &DynamicVerdict, b: &DynamicVerdict) -> bool {
    a.checks == b.checks && a.samples == b.samples && a.expected_samples == b.expected_samples
}

/// Runs the dynamic differential sweep over a device range — the unit
/// of work for the parallel fan-out. Both backends consume
/// bit-identical code streams (same `(seed, device, cell)`-derived
/// device and noise RNG), so any decision disagreement is a genuine
/// datapath divergence.
pub fn run_dyn_differential_range(seed: u64, from: usize, to: usize) -> DynDifferentialResult {
    let grid = dyn_scenario_grid();
    let noise = NoiseConfig::noiseless().with_input_noise(0.002);
    // One screener per (grid cell, backend): the device-outer sweep
    // order would otherwise thrash the cached DynBistTop / Goertzel
    // bank (one rebuild per config change).
    let mut behavioral: Vec<Screener> = grid
        .iter()
        .map(|(.., config)| Screener::new(Workload::dynamic_sine(*config).with_noise(noise)))
        .collect();
    let mut rtl: Vec<Screener<RtlBackend>> = grid
        .iter()
        .map(|(.., config)| {
            Screener::new(Workload::dynamic_sine(*config).with_noise(noise))
                .backend(RtlBackend::new())
        })
        .collect();
    let mut result = DynDifferentialResult {
        per_scenario: grid
            .iter()
            .map(|(id, ..)| DynScenarioTally {
                scenario: *id,
                comparisons: 0,
                agreements: 0,
                accepted: 0,
            })
            .collect(),
        ..DynDifferentialResult::default()
    };
    for i in from..to {
        result.devices += 1;
        for (cell, (id, flash, _)) in grid.iter().enumerate() {
            let adc = flash.sample(&mut dyn_stream_rng(seed, i, cell, DYN_DEVICE_SALT));
            let behavioral = behavioral[cell]
                .screen_one(&adc, &mut dyn_stream_rng(seed, i, cell, DYN_NOISE_SALT))
                .as_dynamic()
                .expect("dynamic workload")
                .verdict;
            let rtl = rtl[cell]
                .screen_one(&adc, &mut dyn_stream_rng(seed, i, cell, DYN_NOISE_SALT))
                .as_dynamic()
                .expect("dynamic workload")
                .verdict;
            result.comparisons += 1;
            result.per_scenario[cell].comparisons += 1;
            if dyn_decisions_agree(&behavioral, &rtl) {
                result.agreements += 1;
                result.per_scenario[cell].agreements += 1;
            } else {
                result.divergences.push(DynDivergence {
                    device: i,
                    scenario: *id,
                    behavioral,
                    rtl,
                });
            }
            if behavioral.accepted() {
                result.per_scenario[cell].accepted += 1;
            }
        }
    }
    result
}

/// Runs the full dynamic differential sweep over `devices` devices,
/// fanned out across `workers` threads (0 = available parallelism).
/// Deterministic in the worker count: devices and RNG streams derive
/// from `(seed, index, cell)` alone.
pub fn run_dyn_differential(seed: u64, devices: usize, workers: usize) -> DynDifferentialResult {
    let partials = partitioned(devices, workers, |from, to| {
        run_dyn_differential_range(seed, from, to)
    });
    let mut total = DynDifferentialResult::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

// ---------------------------------------------------------------------
// The sequenced early-stop seam: both backends under the sequencer,
// validated against full-sweep ground truth.
// ---------------------------------------------------------------------

/// Counter widths of the sequenced static cells.
pub const SEQ_STATIC_COUNTER_BITS: [u32; 2] = [4, 7];

/// Static mismatch points of the sequenced sweep, milli-LSB.
pub const SEQ_STATIC_SIGMA_MILLI: [u32; 2] = [50, 210];

/// Dynamic mismatch points of the sequenced sweep, milli-LSB.
pub const SEQ_DYN_SIGMA_MILLI: [u32; 3] = [0, 160, 210];

/// Converter resolutions of the sequenced dynamic cells.
pub const SEQ_DYN_RESOLUTION_BITS: [u32; 2] = [6, 8];

/// Counter widths of the per-architecture sequenced cells.
pub const ARCH_COUNTER_BITS: [u32; 2] = [4, 6];

/// One cell of the sequenced sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqScenarioId {
    /// A static-linearity cell.
    Static {
        /// Counter width in bits.
        counter_bits: u32,
        /// Code-width mismatch σ_w in milli-LSB (iid-width devices).
        sigma_milli_lsb: u32,
        /// Whether the deglitch filters are in the datapath.
        deglitch: bool,
        /// Acquisition noise point.
        noise: NoisePoint,
    },
    /// A dynamic (coherent-record) cell.
    Dynamic {
        /// Converter resolution in bits.
        resolution_bits: u32,
        /// Code-width mismatch σ_w in milli-LSB (flash devices).
        sigma_milli_lsb: u32,
        /// Sine cycles per record.
        cycles: u32,
    },
    /// A static cell drawing paper-preset devices of one named zoo
    /// architecture — the per-architecture seam validation that feeds
    /// [`bist_core::priors`].
    Arch {
        /// The device architecture the cell draws from.
        arch: Architecture,
        /// Counter width in bits.
        counter_bits: u32,
    },
}

impl SeqScenarioId {
    /// The device architecture this cell draws from. The legacy static
    /// grid sweeps iid-width devices; the dynamic grid sweeps flash.
    pub fn architecture(&self) -> Architecture {
        match self {
            SeqScenarioId::Static { .. } => Architecture::IidWidths,
            SeqScenarioId::Dynamic { .. } => Architecture::Flash,
            SeqScenarioId::Arch { arch, .. } => *arch,
        }
    }
}

impl fmt::Display for SeqScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqScenarioId::Static {
                counter_bits,
                sigma_milli_lsb,
                deglitch,
                noise,
            } => write!(
                f,
                "static/{counter_bits}-bit/σ0.{sigma_milli_lsb:03}/{}/{}",
                if *deglitch { "deglitch" } else { "raw" },
                noise.label()
            ),
            SeqScenarioId::Dynamic {
                resolution_bits,
                sigma_milli_lsb,
                cycles,
            } => write!(
                f,
                "dynamic/{resolution_bits}-bit/σ0.{sigma_milli_lsb:03}/{cycles}c"
            ),
            SeqScenarioId::Arch { arch, counter_bits } => {
                write!(f, "arch/{}/{counter_bits}-bit", arch.label())
            }
        }
    }
}

/// What the silicon latches from one sequenced run — the part that must
/// be identical across backends for every workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqLatch {
    /// The sequencer decision (kind and decision sample).
    pub decision: SeqDecision,
    /// The device-level decision.
    pub accepted: bool,
    /// ADC samples physically consumed.
    pub samples: u64,
}

impl SeqLatch {
    fn of<V: SweptVerdict>(outcome: &SeqOutcome<V>) -> Self {
        SeqLatch {
            decision: outcome.decision,
            accepted: outcome.accepted(),
            samples: outcome.samples_consumed(),
        }
    }
}

impl fmt::Display for SeqLatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} after {} samples)",
            self.decision,
            if self.accepted { "ACCEPT" } else { "REJECT" },
            self.samples
        )
    }
}

/// A device/scenario where the two sequenced backends disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqDivergence {
    /// Device index within the sweep.
    pub device: usize,
    /// The sweep cell.
    pub scenario: SeqScenarioId,
    /// What the behavioural path latched.
    pub behavioral: SeqLatch,
    /// What the gate-accurate path latched.
    pub rtl: SeqLatch,
}

impl fmt::Display for SeqDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} [{}]: behavioral {} vs rtl {}",
            self.device, self.scenario, self.behavioral, self.rtl
        )
    }
}

/// A candidate cell the grid builder dropped because its configuration
/// failed validation (e.g. a fixed-point-unrealisable dynamic plan).
/// Skipped cells carry no screened devices and are excluded from every
/// throughput and drift figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqSkippedCell {
    /// The rejected cell.
    pub scenario: SeqScenarioId,
    /// The validation error.
    pub reason: String,
}

/// Per-cell accounting of the sequenced sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqScenarioTally {
    /// The sweep cell.
    pub scenario: SeqScenarioId,
    /// Devices compared in this cell.
    pub comparisons: u64,
    /// Devices with latch-identical backend agreement.
    pub agreements: u64,
    /// Sequenced runs that stopped before the full stimulus.
    pub early_stops: u64,
    /// Early stops that accepted the device.
    pub early_accepts: u64,
    /// Early stops that rejected the device.
    pub early_rejects: u64,
    /// Sequenced samples over early-stopping runs only.
    pub seq_samples_early: u64,
    /// Devices the full sweep accepts (ground truth).
    pub full_accepted: u64,
    /// Sequencer rejected a device the full sweep accepts.
    pub drift_i: u64,
    /// Sequencer accepted a device the full sweep rejects.
    pub drift_ii: u64,
    /// Total full-sweep samples (ground truth cost).
    pub full_samples: u64,
    /// Total sequenced samples (behavioural path).
    pub seq_samples: u64,
    /// Full-sweep samples over ground-truth-accepted devices.
    pub full_samples_accepted: u64,
    /// Sequenced samples over ground-truth-accepted devices.
    pub seq_samples_accepted: u64,
}

impl SeqScenarioTally {
    fn new(scenario: SeqScenarioId) -> Self {
        SeqScenarioTally {
            scenario,
            comparisons: 0,
            agreements: 0,
            early_stops: 0,
            early_accepts: 0,
            early_rejects: 0,
            seq_samples_early: 0,
            full_accepted: 0,
            drift_i: 0,
            drift_ii: 0,
            full_samples: 0,
            seq_samples: 0,
            full_samples_accepted: 0,
            seq_samples_accepted: 0,
        }
    }

    /// Mean samples-to-decision reduction in this cell (full / seq).
    pub fn reduction(&self) -> f64 {
        if self.seq_samples == 0 {
            0.0
        } else {
            self.full_samples as f64 / self.seq_samples as f64
        }
    }
}

/// Outcome of a sequenced differential sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeqDifferentialResult {
    /// Devices swept.
    pub devices: u64,
    /// Total (device × valid scenario) comparisons.
    pub comparisons: u64,
    /// Comparisons with latch-identical backend agreement.
    pub agreements: u64,
    /// Every backend disagreement observed.
    pub divergences: Vec<SeqDivergence>,
    /// Accounting per valid sweep cell (stable grid order).
    pub per_scenario: Vec<SeqScenarioTally>,
    /// Candidate cells rejected by config validation — excluded from
    /// all throughput figures so devices/s stays comparable.
    pub skipped_cells: Vec<SeqSkippedCell>,
}

impl SeqDifferentialResult {
    /// Whether the sweep found no backend divergence at all.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.agreements == self.comparisons
    }

    fn sum<F: Fn(&SeqScenarioTally) -> u64>(&self, f: F) -> u64 {
        self.per_scenario.iter().map(f).sum()
    }

    /// Empirical type I drift rate: P(sequencer rejects | full sweep
    /// accepts).
    pub fn type_i_drift(&self) -> f64 {
        let good = self.sum(|t| t.full_accepted);
        if good == 0 {
            0.0
        } else {
            self.sum(|t| t.drift_i) as f64 / good as f64
        }
    }

    /// Empirical type II drift rate: P(sequencer accepts | full sweep
    /// rejects).
    pub fn type_ii_drift(&self) -> f64 {
        let bad = self.comparisons - self.sum(|t| t.full_accepted);
        if bad == 0 {
            0.0
        } else {
            self.sum(|t| t.drift_ii) as f64 / bad as f64
        }
    }

    /// Mean samples-to-decision reduction over all devices.
    pub fn reduction_overall(&self) -> f64 {
        let seq = self.sum(|t| t.seq_samples);
        if seq == 0 {
            0.0
        } else {
            self.sum(|t| t.full_samples) as f64 / seq as f64
        }
    }

    /// Mean samples-to-decision reduction over ground-truth-accepted
    /// (passing) devices — the headline figure: even devices that must
    /// be accepted stop early.
    pub fn reduction_accepted(&self) -> f64 {
        let seq = self.sum(|t| t.seq_samples_accepted);
        if seq == 0 {
            0.0
        } else {
            self.sum(|t| t.full_samples_accepted) as f64 / seq as f64
        }
    }

    /// Mean samples-to-decision reduction over ground-truth-rejected
    /// devices.
    pub fn reduction_rejected(&self) -> f64 {
        let seq = self.sum(|t| t.seq_samples) - self.sum(|t| t.seq_samples_accepted);
        if seq == 0 {
            0.0
        } else {
            (self.sum(|t| t.full_samples) - self.sum(|t| t.full_samples_accepted)) as f64
                / seq as f64
        }
    }

    /// Fraction of sequenced runs that stopped early.
    pub fn early_stop_rate(&self) -> f64 {
        if self.comparisons == 0 {
            0.0
        } else {
            self.sum(|t| t.early_stops) as f64 / self.comparisons as f64
        }
    }

    /// Folds every cell's sequenced accounting into a priors bank,
    /// keyed by the cell's device architecture. This is the feedback
    /// edge of the zoo: differential sweeps measure per-architecture
    /// samples-to-decision, the bank turns that into
    /// architecture-conditioned sequencer hints.
    pub fn seed_priors(&self, bank: &mut PriorsBank) {
        for t in &self.per_scenario {
            bank.absorb(
                t.scenario.architecture(),
                SeqTally {
                    runs: t.comparisons,
                    early_accepts: t.early_accepts,
                    early_rejects: t.early_rejects,
                    seq_samples: t.seq_samples,
                    seq_samples_early: t.seq_samples_early,
                    full_samples: t.full_samples,
                },
            );
        }
    }

    /// Merges a partial result from another worker (cell-wise; skipped
    /// cells are grid-derived and identical on every worker).
    pub fn merge(&mut self, other: &SeqDifferentialResult) {
        self.devices += other.devices;
        self.comparisons += other.comparisons;
        self.agreements += other.agreements;
        self.divergences.extend_from_slice(&other.divergences);
        if self.per_scenario.is_empty() {
            self.per_scenario = other.per_scenario.clone();
            self.skipped_cells = other.skipped_cells.clone();
        } else {
            debug_assert_eq!(self.per_scenario.len(), other.per_scenario.len());
            for (mine, theirs) in self.per_scenario.iter_mut().zip(&other.per_scenario) {
                debug_assert_eq!(mine.scenario, theirs.scenario);
                mine.comparisons += theirs.comparisons;
                mine.agreements += theirs.agreements;
                mine.early_stops += theirs.early_stops;
                mine.early_accepts += theirs.early_accepts;
                mine.early_rejects += theirs.early_rejects;
                mine.seq_samples_early += theirs.seq_samples_early;
                mine.full_accepted += theirs.full_accepted;
                mine.drift_i += theirs.drift_i;
                mine.drift_ii += theirs.drift_ii;
                mine.full_samples += theirs.full_samples;
                mine.seq_samples += theirs.seq_samples;
                mine.full_samples_accepted += theirs.full_samples_accepted;
                mine.seq_samples_accepted += theirs.seq_samples_accepted;
            }
        }
    }
}

impl fmt::Display for SeqDifferentialResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices × {} scenarios: {}/{} sequenced latches identical \
             ({} divergences, {:.0}% early stops, {:.2}x samples overall, \
             drift I {:.2e} / II {:.2e})",
            self.devices,
            self.per_scenario.len(),
            self.agreements,
            self.comparisons,
            self.divergences.len(),
            100.0 * self.early_stop_rate(),
            self.reduction_overall(),
            self.type_i_drift(),
            self.type_ii_drift(),
        )
    }
}

/// A validated cell of the sequenced grid. Devices in either arm come
/// from the [`DeviceSource`] seam, so one loop screens flash, iid-width,
/// SAR and pipeline silicon alike.
enum SeqCell {
    Static {
        config: BistConfig,
        source: SourceSpec,
        noise: NoiseConfig,
    },
    Dynamic {
        config: DynamicConfig,
        source: SourceSpec,
    },
}

/// The per-cell screeners of the sequenced sweep: the full-sweep
/// behavioural ground truth plus both sequenced backends, all sharing
/// the cell's workload.
enum SeqRunner {
    Static {
        full: Screener,
        seq_b: Screener,
        seq_r: Screener<RtlBackend>,
        source: SourceSpec,
    },
    Dynamic {
        full: Screener,
        seq_b: Screener,
        seq_r: Screener<RtlBackend>,
        source: SourceSpec,
    },
}

impl SeqRunner {
    fn new(cell: &SeqCell, policy: &SequencerConfig) -> Self {
        match cell {
            SeqCell::Static {
                config,
                source,
                noise,
            } => {
                let w = Workload::static_ramp(*config).with_noise(*noise);
                SeqRunner::Static {
                    full: Screener::new(w),
                    seq_b: Screener::new(w).sequencer(*policy),
                    seq_r: Screener::new(w)
                        .sequencer(*policy)
                        .backend(RtlBackend::new()),
                    source: *source,
                }
            }
            SeqCell::Dynamic { config, source } => {
                let w = Workload::dynamic_sine(*config)
                    .with_noise(NoiseConfig::noiseless().with_input_noise(0.002));
                SeqRunner::Dynamic {
                    full: Screener::new(w),
                    seq_b: Screener::new(w).sequencer(*policy),
                    seq_r: Screener::new(w)
                        .sequencer(*policy)
                        .backend(RtlBackend::new()),
                    source: *source,
                }
            }
        }
    }
}

/// The sequenced sweep grid: static cells (counter width × mismatch σ,
/// plus one deglitched transition-noise cell) and dynamic cells
/// (resolution × mismatch σ at the paper bin, plus the Nyquist-folding
/// 1024-cycle candidates — of which the 8-bit one is rejected by the
/// fixed-point register audit and recorded as a skipped cell).
fn seq_scenario_grid() -> (Vec<(SeqScenarioId, SeqCell)>, Vec<SeqSkippedCell>) {
    let spec = LinearitySpec::paper_stringent();
    let mut grid = Vec::new();
    let mut skipped = Vec::new();
    for &counter_bits in &SEQ_STATIC_COUNTER_BITS {
        for &sigma_milli in &SEQ_STATIC_SIGMA_MILLI {
            let id = SeqScenarioId::Static {
                counter_bits,
                sigma_milli_lsb: sigma_milli,
                deglitch: false,
                noise: NoisePoint::Noiseless,
            };
            let config = BistConfig::builder(Resolution::SIX_BIT, spec)
                .counter_bits(counter_bits)
                .build()
                .expect("paper operating points are valid");
            let dist = WidthDistribution::new(1.0, sigma_milli as f64 / 1000.0);
            grid.push((
                id,
                SeqCell::Static {
                    config,
                    source: IidWidthSource::new(Resolution::SIX_BIT, dist).into(),
                    noise: NoiseConfig::noiseless(),
                },
            ));
        }
    }
    // One deglitched, transition-noise cell: the filters and the quiet
    // dwell of the completion-accept rule under sequencing.
    grid.push((
        SeqScenarioId::Static {
            counter_bits: 5,
            sigma_milli_lsb: 210,
            deglitch: true,
            noise: NoisePoint::Transition,
        },
        SeqCell::Static {
            config: BistConfig::builder(Resolution::SIX_BIT, spec)
                .counter_bits(5)
                .deglitch(true)
                .build()
                .expect("paper operating points are valid"),
            source: IidWidthSource::new(Resolution::SIX_BIT, WidthDistribution::new(1.0, 0.21))
                .into(),
            noise: NoisePoint::Transition.config(),
        },
    ));
    let mut dyn_candidates: Vec<(u32, u32, u32)> = Vec::new();
    for &bits in &SEQ_DYN_RESOLUTION_BITS {
        for &sigma_milli in &SEQ_DYN_SIGMA_MILLI {
            dyn_candidates.push((bits, sigma_milli, 1021));
        }
        // Nyquist-folding candidate: valid at 6 bits, rejected by the
        // fixed-point register audit at 8 bits.
        dyn_candidates.push((bits, 160, 1024));
    }
    for (bits, sigma_milli, cycles) in dyn_candidates {
        let id = SeqScenarioId::Dynamic {
            resolution_bits: bits,
            sigma_milli_lsb: sigma_milli,
            cycles,
        };
        let resolution = Resolution::new(bits).expect("sweep resolutions are valid");
        let high = Volts(0.1 * resolution.code_count() as f64);
        let flash = FlashConfig::new(resolution, Volts(0.0), high)
            .with_width_sigma_lsb(sigma_milli as f64 / 1000.0);
        match DynamicConfig::new(resolution, DYN_RECORD_LEN, cycles) {
            Ok(config) => grid.push((
                id,
                SeqCell::Dynamic {
                    config: config.with_overdrive(0.0),
                    source: flash.into(),
                },
            )),
            Err(e) => skipped.push(SeqSkippedCell {
                scenario: id,
                reason: e.to_string(),
            }),
        }
    }
    (grid, skipped)
}

/// The per-architecture grid: every zoo paper preset (flash, iid-width,
/// SAR, pipeline) × counter width, all static-ramp noiseless cells.
/// Every candidate validates, so the skipped list is always empty.
fn arch_scenario_grid() -> (Vec<(SeqScenarioId, SeqCell)>, Vec<SeqSkippedCell>) {
    let spec = LinearitySpec::paper_stringent();
    let sources = [
        SourceSpec::paper_flash(),
        SourceSpec::paper_iid(),
        SourceSpec::paper_sar(),
        SourceSpec::paper_pipeline(),
    ];
    let mut grid = Vec::new();
    for &counter_bits in &ARCH_COUNTER_BITS {
        for source in sources {
            let id = SeqScenarioId::Arch {
                arch: source.architecture(),
                counter_bits,
            };
            let config = BistConfig::builder(Resolution::SIX_BIT, spec)
                .counter_bits(counter_bits)
                .build()
                .expect("paper operating points are valid");
            grid.push((
                id,
                SeqCell::Static {
                    config,
                    source,
                    noise: NoiseConfig::noiseless(),
                },
            ));
        }
    }
    (grid, Vec::new())
}

/// RNG-stream salts of the sequenced sweep.
const SEQ_DEVICE_SALT: u64 = 0x5e9_f000;
const SEQ_NOISE_SALT: u64 = 0x5e9_f001;
/// RNG-stream salts of the per-architecture sweep — disjoint from the
/// sequenced grid's so the two sweeps draw independent silicon even at
/// the same seed.
const ARCH_DEVICE_SALT: u64 = 0x5e9_f002;
const ARCH_NOISE_SALT: u64 = 0x5e9_f003;

fn seq_stream_rng(seed: u64, device: usize, cell: usize, salt: u64) -> StdRng {
    crate::batch::stream_rng(seed, &[salt, device as u64, cell as u64])
}

/// Runs the sequenced differential sweep over a device range — the unit
/// of work for the parallel fan-out. For every device × valid cell,
/// three runs consume bit-identical code streams: the full sweep
/// (behavioural ground truth), the sequenced behavioural path and the
/// sequenced RTL path. Backends must latch identical decisions; the
/// sequenced decision is scored against the full sweep for empirical
/// type I/II drift and samples-to-decision.
pub fn run_seq_differential_range(
    seed: u64,
    policy: &SequencerConfig,
    from: usize,
    to: usize,
) -> SeqDifferentialResult {
    let (grid, skipped) = seq_scenario_grid();
    run_seq_grid_range(
        &grid,
        skipped,
        (SEQ_DEVICE_SALT, SEQ_NOISE_SALT),
        seed,
        policy,
        from,
        to,
    )
}

/// The shared device-outer loop behind every sequenced sweep: for each
/// device × cell, three runs on bit-identical streams (full behavioural
/// ground truth, sequenced behavioural, sequenced RTL), latch-compared
/// and tallied. Which silicon a cell draws is entirely the cell's
/// [`SourceSpec`] — the grid, not the loop, knows the architecture.
#[allow(clippy::too_many_lines)]
fn run_seq_grid_range(
    grid: &[(SeqScenarioId, SeqCell)],
    skipped: Vec<SeqSkippedCell>,
    (device_salt, noise_salt): (u64, u64),
    seed: u64,
    policy: &SequencerConfig,
    from: usize,
    to: usize,
) -> SeqDifferentialResult {
    // Three screeners per cell: the full-sweep behavioural ground
    // truth, the sequenced behavioural path and the sequenced
    // gate-accurate path (per-cell so the cached RTL tops and scratch
    // buffers reset in place across the device-outer sweep order).
    let mut runners: Vec<SeqRunner> = grid
        .iter()
        .map(|(_, spec)| SeqRunner::new(spec, policy))
        .collect();
    let mut result = SeqDifferentialResult {
        per_scenario: grid
            .iter()
            .map(|(id, _)| SeqScenarioTally::new(*id))
            .collect(),
        skipped_cells: skipped,
        ..SeqDifferentialResult::default()
    };
    for i in from..to {
        result.devices += 1;
        for (cell, (id, _)) in grid.iter().enumerate() {
            let noise_rng = || seq_stream_rng(seed, i, cell, noise_salt);
            let (full_accepted, full_samples, b_latch, r_latch, verdicts_agree) =
                match &mut runners[cell] {
                    SeqRunner::Static {
                        full,
                        seq_b,
                        seq_r,
                        source,
                    } => {
                        let tf =
                            source.sample_transfer(&mut seq_stream_rng(seed, i, cell, device_salt));
                        let full = full
                            .screen_one(&tf, &mut noise_rng())
                            .as_static()
                            .expect("static workload")
                            .verdict;
                        let b = *seq_b
                            .screen_one(&tf, &mut noise_rng())
                            .as_static()
                            .expect("static workload");
                        let r = *seq_r
                            .screen_one(&tf, &mut noise_rng())
                            .as_static()
                            .expect("static workload");
                        (
                            full.accepted(),
                            full.samples,
                            SeqLatch::of(&b),
                            SeqLatch::of(&r),
                            b.verdict == r.verdict,
                        )
                    }
                    SeqRunner::Dynamic {
                        full,
                        seq_b,
                        seq_r,
                        source,
                    } => {
                        let adc =
                            source.sample_transfer(&mut seq_stream_rng(seed, i, cell, device_salt));
                        let full = full
                            .screen_one(&adc, &mut noise_rng())
                            .as_dynamic()
                            .expect("dynamic workload")
                            .verdict;
                        let b = *seq_b
                            .screen_one(&adc, &mut noise_rng())
                            .as_dynamic()
                            .expect("dynamic workload");
                        let r = *seq_r
                            .screen_one(&adc, &mut noise_rng())
                            .as_dynamic()
                            .expect("dynamic workload");
                        // Completed records additionally demand the
                        // decision-exact dynamic verdict contract.
                        let verdicts_agree =
                            b.stopped_early() || dyn_decisions_agree(&b.verdict, &r.verdict);
                        (
                            full.accepted(),
                            full.samples,
                            SeqLatch::of(&b),
                            SeqLatch::of(&r),
                            verdicts_agree,
                        )
                    }
                };
            result.comparisons += 1;
            let agree = b_latch == r_latch && verdicts_agree;
            if agree {
                result.agreements += 1;
            } else {
                result.divergences.push(SeqDivergence {
                    device: i,
                    scenario: *id,
                    behavioral: b_latch,
                    rtl: r_latch,
                });
            }
            let tally = &mut result.per_scenario[cell];
            tally.comparisons += 1;
            tally.agreements += u64::from(agree);
            tally.early_stops += u64::from(b_latch.decision.stops());
            match b_latch.decision {
                SeqDecision::AcceptEarly(_) => {
                    tally.early_accepts += 1;
                    tally.seq_samples_early += b_latch.samples;
                }
                SeqDecision::RejectEarly(_) => {
                    tally.early_rejects += 1;
                    tally.seq_samples_early += b_latch.samples;
                }
                SeqDecision::Continue => {}
            }
            tally.full_accepted += u64::from(full_accepted);
            tally.full_samples += full_samples;
            tally.seq_samples += b_latch.samples;
            if full_accepted {
                tally.full_samples_accepted += full_samples;
                tally.seq_samples_accepted += b_latch.samples;
                tally.drift_i += u64::from(!b_latch.accepted);
            } else {
                tally.drift_ii += u64::from(b_latch.accepted);
            }
        }
    }
    result
}

/// Runs the full sequenced differential sweep over `devices` devices,
/// fanned out across `workers` threads (0 = available parallelism).
/// Deterministic in the worker count: devices and RNG streams derive
/// from `(seed, index, cell)` alone.
pub fn run_seq_differential(
    seed: u64,
    policy: &SequencerConfig,
    devices: usize,
    workers: usize,
) -> SeqDifferentialResult {
    let partials = partitioned(devices, workers, |from, to| {
        run_seq_differential_range(seed, policy, from, to)
    });
    let mut total = SeqDifferentialResult::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

/// Runs the per-architecture sequenced differential over a device
/// range: every zoo paper preset (flash, iid-width, SAR, pipeline) ×
/// counter width, three runs per device × cell on bit-identical
/// streams. Backends must latch identically for every architecture —
/// the paper's architecture-agnostic claim, checked at the gate level.
pub fn run_arch_differential_range(
    seed: u64,
    policy: &SequencerConfig,
    from: usize,
    to: usize,
) -> SeqDifferentialResult {
    let (grid, skipped) = arch_scenario_grid();
    run_seq_grid_range(
        &grid,
        skipped,
        (ARCH_DEVICE_SALT, ARCH_NOISE_SALT),
        seed,
        policy,
        from,
        to,
    )
}

/// Runs the full per-architecture sequenced differential over
/// `devices` devices, fanned out across `workers` threads (0 =
/// available parallelism). Deterministic in the worker count. The
/// result's per-cell tallies carry per-architecture samples-to-decision
/// accounting; feed them to a [`PriorsBank`] with
/// [`SeqDifferentialResult::seed_priors`] to derive
/// architecture-conditioned sequencer policies.
pub fn run_arch_differential(
    seed: u64,
    policy: &SequencerConfig,
    devices: usize,
    workers: usize,
) -> SeqDifferentialResult {
    let partials = partitioned(devices, workers, |from, to| {
        run_arch_differential_range(seed, policy, from, to)
    });
    let mut total = SeqDifferentialResult::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_is_bit_exact() {
        let batch = Batch::paper_simulation(31, 12);
        let result = run_differential(&batch, 0.0, 0);
        assert_eq!(result.devices, 12);
        assert_eq!(result.comparisons, 12 * 24);
        assert!(
            result.is_clean(),
            "divergences: {:#?}",
            &result.divergences[..result.divergences.len().min(3)]
        );
        // The sweep does real screening work: some devices accepted,
        // some rejected, across the grid.
        let accepted: u64 = result.per_scenario.iter().map(|s| s.accepted).sum();
        assert!(accepted > 0);
        assert!(accepted < result.comparisons);
    }

    #[test]
    fn slope_error_sweep_is_bit_exact() {
        // The paper's "slightly too steep" ramp shifts every count;
        // both datapaths must shift identically.
        let batch = Batch::paper_simulation(37, 8);
        let result = run_differential(&batch, -0.022, 0);
        assert!(result.is_clean(), "{result}");
    }

    #[test]
    fn independent_of_worker_count() {
        let batch = Batch::paper_simulation(41, 10);
        let seq = run_differential(&batch, 0.0, 1);
        let par = run_differential(&batch, 0.0, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn merge_accumulates_cellwise() {
        let batch = Batch::paper_simulation(43, 6);
        let whole = run_differential_range(&batch, 0.0, 0, 6);
        let mut parts = run_differential_range(&batch, 0.0, 0, 2);
        parts.merge(&run_differential_range(&batch, 0.0, 2, 6));
        assert_eq!(whole.comparisons, parts.comparisons);
        assert_eq!(whole.agreements, parts.agreements);
        assert_eq!(whole.per_scenario, parts.per_scenario);
    }

    #[test]
    fn display_summarises() {
        let batch = Batch::paper_simulation(47, 2);
        let r = run_differential(&batch, 0.0, 1);
        let s = r.to_string();
        assert!(s.contains("2 devices"), "{s}");
        assert!(s.contains("bit-exact"), "{s}");
    }

    #[test]
    fn dyn_small_fleet_is_decision_exact() {
        let result = run_dyn_differential(31, 8, 0);
        assert_eq!(result.devices, 8);
        assert_eq!(result.comparisons, 8 * 12);
        assert!(
            result.is_clean(),
            "divergences: {:#?}",
            &result.divergences[..result.divergences.len().min(3)]
        );
        // The sweep does real screening work: the ideal cells accept,
        // the worst-case mismatch cells reject at least someone.
        let accepted: u64 = result.per_scenario.iter().map(|s| s.accepted).sum();
        assert!(accepted > 0);
        assert!(accepted < result.comparisons, "nothing was rejected");
    }

    #[test]
    fn dyn_independent_of_worker_count() {
        let seq = run_dyn_differential(41, 6, 1);
        let par = run_dyn_differential(41, 6, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn dyn_merge_accumulates_cellwise() {
        let whole = run_dyn_differential_range(43, 0, 4);
        let mut parts = run_dyn_differential_range(43, 0, 1);
        parts.merge(&run_dyn_differential_range(43, 1, 4));
        assert_eq!(whole.comparisons, parts.comparisons);
        assert_eq!(whole.agreements, parts.agreements);
        assert_eq!(whole.per_scenario, parts.per_scenario);
    }

    #[test]
    fn dyn_cells_draw_independent_devices() {
        // The satellite fix behind run_dyn_differential: every cell has
        // its own seeded device stream, so two cells at the same device
        // index see different silicon.
        let a = dyn_stream_rng(7, 3, 0, DYN_DEVICE_SALT);
        let b = dyn_stream_rng(7, 3, 1, DYN_DEVICE_SALT);
        let mut a = a;
        let mut b = b;
        use rand::RngCore;
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn dyn_display_summarises() {
        let r = run_dyn_differential(47, 2, 1);
        let s = r.to_string();
        assert!(s.contains("2 devices"), "{s}");
        assert!(s.contains("decisions exact"), "{s}");
    }

    #[test]
    fn seq_small_fleet_is_latch_exact_and_saves_samples() {
        let policy = SequencerConfig::default();
        let result = run_seq_differential(31, &policy, 6, 0);
        assert_eq!(result.devices, 6);
        assert_eq!(result.comparisons as usize, 6 * result.per_scenario.len());
        assert!(
            result.is_clean(),
            "divergences: {:#?}",
            &result.divergences[..result.divergences.len().min(3)]
        );
        // The invalid 8-bit Nyquist-folding candidate was skipped, not run.
        assert_eq!(result.skipped_cells.len(), 1);
        assert!(result.skipped_cells[0].reason.contains("unrealisable"));
        // Real early stopping happened and saved samples overall.
        assert!(result.early_stop_rate() > 0.3, "{result}");
        assert!(result.reduction_overall() > 1.2, "{result}");
    }

    #[test]
    fn seq_independent_of_worker_count() {
        let policy = SequencerConfig::default();
        let seq1 = run_seq_differential(41, &policy, 5, 1);
        let seq4 = run_seq_differential(41, &policy, 5, 4);
        assert_eq!(seq1, seq4);
    }

    #[test]
    fn seq_merge_accumulates_cellwise() {
        let policy = SequencerConfig::default();
        let whole = run_seq_differential_range(43, &policy, 0, 4);
        let mut parts = run_seq_differential_range(43, &policy, 0, 1);
        parts.merge(&run_seq_differential_range(43, &policy, 1, 4));
        assert_eq!(whole.comparisons, parts.comparisons);
        assert_eq!(whole.agreements, parts.agreements);
        assert_eq!(whole.per_scenario, parts.per_scenario);
        assert_eq!(whole.skipped_cells, parts.skipped_cells);
    }

    #[test]
    fn seq_min_samples_never_violated() {
        let policy = SequencerConfig {
            min_samples: 300,
            check_interval: 50,
            ..Default::default()
        };
        let result = run_seq_differential(59, &policy, 4, 0);
        assert!(result.is_clean());
        // Per-decision at_sample checks live in
        // crates/core/tests/sequencer_equivalence.rs; here: no cell's
        // sequenced runs averaged fewer samples than the floor.
        for t in &result.per_scenario {
            if t.comparisons > 0 && t.early_stops == t.comparisons {
                assert!(t.seq_samples >= t.comparisons * 300);
            }
        }
    }

    #[test]
    fn seq_display_summarises() {
        let policy = SequencerConfig::default();
        let r = run_seq_differential(61, &policy, 2, 1);
        let s = r.to_string();
        assert!(s.contains("2 devices"), "{s}");
        assert!(s.contains("early stops"), "{s}");
        assert!(r.per_scenario[0].scenario.to_string().contains("static/"));
    }

    #[test]
    fn sar_and_pipeline_fleets_are_bit_exact_through_rtl() {
        // The full (non-sequenced) fleet validator over the new
        // architectures: behavioural and RTL datapaths must agree on
        // every verdict field for SAR and pipeline silicon too.
        for source in [SourceSpec::paper_sar(), SourceSpec::paper_pipeline()] {
            let batch = Batch::of(source).seed(53).size(3);
            let result = run_differential(&batch, 0.0, 0);
            assert_eq!(result.comparisons, 3 * 24, "{source}");
            assert!(result.is_clean(), "{source}: {result}");
        }
    }

    #[test]
    fn arch_sweep_is_latch_exact_across_architectures() {
        let policy = SequencerConfig::default();
        let result = run_arch_differential(31, &policy, 4, 0);
        assert_eq!(result.devices, 4);
        assert_eq!(
            result.per_scenario.len(),
            Architecture::COUNT * ARCH_COUNTER_BITS.len()
        );
        assert!(result.skipped_cells.is_empty());
        assert!(
            result.is_clean(),
            "divergences: {:#?}",
            &result.divergences[..result.divergences.len().min(3)]
        );
        // Every architecture appears in the grid, labelled.
        for arch in Architecture::ALL {
            assert!(
                result
                    .per_scenario
                    .iter()
                    .any(|t| t.scenario.architecture() == arch),
                "{arch} missing from the grid"
            );
        }
        assert!(result.per_scenario[0]
            .scenario
            .to_string()
            .starts_with("arch/"));
    }

    #[test]
    fn arch_sweep_independent_of_worker_count() {
        let policy = SequencerConfig::default();
        let seq1 = run_arch_differential(41, &policy, 3, 1);
        let seq4 = run_arch_differential(41, &policy, 3, 4);
        assert_eq!(seq1, seq4);
    }

    #[test]
    fn early_split_fields_account_for_every_early_stop() {
        let policy = SequencerConfig::default();
        let result = run_arch_differential(43, &policy, 4, 0);
        for t in &result.per_scenario {
            assert_eq!(
                t.early_accepts + t.early_rejects,
                t.early_stops,
                "{}",
                t.scenario
            );
            if t.early_stops == 0 {
                assert_eq!(t.seq_samples_early, 0);
            } else {
                assert!(t.seq_samples_early >= t.early_stops * policy.min_samples);
                assert!(t.seq_samples_early <= t.seq_samples);
            }
        }
    }

    #[test]
    fn seed_priors_accumulates_by_architecture() {
        let policy = SequencerConfig::default();
        let result = run_arch_differential(47, &policy, 5, 0);
        let mut bank = PriorsBank::new(policy);
        result.seed_priors(&mut bank);
        assert_eq!(bank.runs(), result.comparisons);
        for arch in Architecture::ALL {
            let expected: u64 = result
                .per_scenario
                .iter()
                .filter(|t| t.scenario.architecture() == arch)
                .map(|t| t.comparisons)
                .sum();
            assert_eq!(bank.tally(arch).runs, expected, "{arch}");
            // Whatever the bank derives must be a valid policy.
            bank.policy_for(arch)
                .validate()
                .expect("derived policy validates");
        }
    }
}
