//! Proportion estimation with confidence intervals.
//!
//! Monte-Carlo error rates are binomial proportions; the Wilson score
//! interval behaves well even for the small counts of a 364-device batch
//! and for near-zero rates (Table 2's ppm regime).

use bist_dsp::special::normal_quantile;
use std::fmt;

/// A binomial proportion estimate with its Wilson score interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// Creates the estimate from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(
            successes <= trials,
            "successes ({successes}) exceed trials ({trials})"
        );
        Proportion { successes, trials }
    }

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The point estimate; `None` for zero trials.
    pub fn point(&self) -> Option<f64> {
        if self.trials == 0 {
            None
        } else {
            Some(self.successes as f64 / self.trials as f64)
        }
    }

    /// The Wilson score interval at the given confidence (e.g. 0.95).
    /// Returns `None` for zero trials.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    pub fn wilson(&self, confidence: f64) -> Option<(f64, f64)> {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)"
        );
        if self.trials == 0 {
            return None;
        }
        let z = normal_quantile(0.5 + confidence / 2.0);
        let n = self.trials as f64;
        let p = self.successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        Some(((center - half).max(0.0), (center + half).min(1.0)))
    }

    /// Whether the 95 % interval contains `p`.
    pub fn consistent_with(&self, p: f64) -> bool {
        match self.wilson(0.95) {
            Some((lo, hi)) => (lo..=hi).contains(&p),
            None => false,
        }
    }
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.point(), self.wilson(0.95)) {
            (Some(p), Some((lo, hi))) => {
                write!(
                    f,
                    "{p:.4} [{lo:.4}, {hi:.4}] ({}/{})",
                    self.successes, self.trials
                )
            }
            _ => write!(f, "-/0"),
        }
    }
}

/// Number of trials needed so a proportion near `p` is estimated with
/// absolute half-width `half_width` at ~95 % confidence.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` or `half_width` is not positive.
pub fn trials_for_half_width(p: f64, half_width: f64) -> u64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    assert!(half_width > 0.0, "half width must be positive");
    let z = 1.959963984540054;
    ((z * z * p * (1.0 - p)) / (half_width * half_width)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate() {
        let p = Proportion::new(30, 100);
        assert_eq!(p.point(), Some(0.3));
        assert_eq!(Proportion::new(0, 0).point(), None);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_successes_than_trials_panics() {
        Proportion::new(5, 4);
    }

    #[test]
    fn wilson_contains_truth_for_fair_coin() {
        let p = Proportion::new(50, 100);
        let (lo, hi) = p.wilson(0.95).unwrap();
        assert!(lo < 0.5 && hi > 0.5);
        assert!(hi - lo < 0.22);
    }

    #[test]
    fn wilson_zero_successes_has_positive_width() {
        // Even 0/100 leaves room for small p (unlike the Wald interval).
        let p = Proportion::new(0, 100);
        let (lo, hi) = p.wilson(0.95).unwrap();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
    }

    #[test]
    fn wilson_narrows_with_n() {
        let wide = Proportion::new(10, 100).wilson(0.95).unwrap();
        let narrow = Proportion::new(1000, 10_000).wilson(0.95).unwrap();
        assert!(narrow.1 - narrow.0 < wide.1 - wide.0);
    }

    #[test]
    fn consistent_with_checks_interval() {
        let p = Proportion::new(13, 100); // the paper's measured 0.13
        assert!(p.consistent_with(0.13));
        assert!(!p.consistent_with(0.5));
    }

    #[test]
    fn trials_for_half_width_sane() {
        // p = 0.1 within ±0.01 needs ~3458 trials.
        let n = trials_for_half_width(0.1, 0.01);
        assert!((3300..3600).contains(&n), "n {n}");
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0,1)")]
    fn bad_confidence_panics() {
        Proportion::new(1, 2).wilson(1.0);
    }

    #[test]
    fn display_shows_counts() {
        let p = Proportion::new(3, 10);
        assert!(p.to_string().contains("3/10"));
    }
}
