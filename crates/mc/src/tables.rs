//! Drivers that regenerate the paper's tables and figures.
//!
//! Each function returns structured rows; the `bist-bench` binaries
//! format them next to the paper's published values. Interpretation
//! conventions (recorded in DESIGN.md §4): Table 1 probabilities are
//! *conditional* rates — `P(reject|good)`, `P(accept|faulty)` — while
//! Table 2 is *joint* device fractions (the 10–100 ppm shipped-part
//! language); both conventions are emitted so readers can compare.

use crate::batch::{conditional_faulty_widths, transfer_from_widths, Batch};
use crate::estimate::Proportion;
use crate::experiment::Experiment;
use crate::parallel::{partitioned, run_parallel};
use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::analytic::{
    code_probabilities, device_probabilities, DeviceProbabilities, WidthDistribution,
};
use bist_core::config::BistConfig;
use bist_core::limits::{plan_delta_s, CountLimits};
use bist_core::screener::{Screener, Workload};

/// Number of codes a full sweep judges on the paper's 6-bit device
/// (inner codes only).
pub const JUDGED_CODES: u64 = 62;

/// Evaluates the §3 theory at one operating point.
pub fn analytic_point(
    spec: &LinearitySpec,
    sigma_lsb: f64,
    delta_s: f64,
    codes: u64,
) -> DeviceProbabilities {
    let dist = WidthDistribution::new(1.0, sigma_lsb);
    let limits = CountLimits::from_spec(spec, delta_s).expect("valid operating point");
    let c = code_probabilities(&dist, spec, delta_s, &limits);
    device_probabilities(&c, codes)
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Counter size in bits (the paper sweeps 4–7).
    pub counter_bits: u32,
    /// The balanced step size used, in LSB.
    pub delta_s: f64,
    /// Analytic (theory) conditional type I — the paper's SIM column.
    pub sim_type_i: f64,
    /// Analytic conditional type II.
    pub sim_type_ii: f64,
    /// Monte-Carlo type I on iid-width devices (validates the theory).
    pub sim_mc_type_i: Proportion,
    /// Monte-Carlo type II on iid-width devices.
    pub sim_mc_type_ii: Proportion,
    /// "Measured" type I: physical flash batch with the slope error.
    pub meas_type_i: Proportion,
    /// "Measured" type II.
    pub meas_type_ii: Proportion,
}

/// Configuration of the Table 1 reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Config {
    /// Devices in the iid-width (simulation) batch.
    pub sim_batch: usize,
    /// Devices in the physical-flash (measurement) batch. The paper had
    /// 364; larger values tighten the confidence intervals.
    pub meas_batch: usize,
    /// Ramp slope error applied to the measurement runs, expressed as
    /// the relative error *at the 4-bit operating point* in per-mille.
    /// The paper inferred its measurement ramp made Δs ≈ 0.002 LSB
    /// smaller at Δs ≈ 0.091 (−22 ‰); each row scales the relative
    /// error by `Δs_row/Δs_4bit` so the absolute miscalibration stays a
    /// fixed fraction of the count spacing, matching the per-counter
    /// recalibration of the paper's measurements.
    pub slope_error_millis: i32,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub workers: usize,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            sim_batch: 4000,
            meas_batch: 4000,
            // Δs 2.2 % smaller ≈ the paper's −0.002 LSB at Δs ≈ 0.091.
            slope_error_millis: -22,
            seed: 1997,
            workers: 0,
        }
    }
}

/// Regenerates Table 1: type I/II for counter sizes 4–7 under the
/// stringent ±0.5 LSB spec.
pub fn table1(cfg: &Table1Config) -> Vec<Table1Row> {
    let spec = LinearitySpec::paper_stringent();
    let ds_4bit = plan_delta_s(&spec, 4).0;
    (4..=7)
        .map(|bits| {
            let bist = BistConfig::builder(Resolution::SIX_BIT, spec)
                .counter_bits(bits)
                .build()
                .expect("paper operating points are valid");
            let ds = bist.delta_s().0;
            let analytic = analytic_point(&spec, 0.21, ds, JUDGED_CODES);

            let sim_batch = Batch::paper_simulation(cfg.seed, cfg.sim_batch);
            let sim = run_parallel(&Experiment::new(sim_batch, bist), cfg.workers);

            let mut meas_batch = Batch::paper_measurement(cfg.seed ^ 0xABCD);
            meas_batch.size = cfg.meas_batch;
            // Scale the relative slope error with Δs so the absolute
            // miscalibration stays a fixed fraction of the count spacing
            // (see `Table1Config::slope_error_millis`).
            let slope_error = cfg.slope_error_millis as f64 / 1000.0 * (ds / ds_4bit);
            let meas = run_parallel(
                &Experiment::new(meas_batch, bist).with_slope_error(slope_error),
                cfg.workers,
            );

            Table1Row {
                counter_bits: bits,
                delta_s: ds,
                sim_type_i: analytic.type_i,
                sim_type_ii: analytic.type_ii,
                sim_mc_type_i: sim.type_i(),
                sim_mc_type_ii: sim.type_ii(),
                meas_type_i: meas.type_i(),
                meas_type_ii: meas.type_ii(),
            }
        })
        .collect()
}

/// One row of the Table 2 reproduction (actual spec ±1 LSB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Counter size in bits.
    pub counter_bits: u32,
    /// Joint type I `P(reject ∧ good)` (the paper prints ×10⁻⁶).
    pub type_i_joint: f64,
    /// Joint type II `P(accept ∧ faulty)`.
    pub type_ii_joint: f64,
    /// Conditional type II `P(accept | faulty)` from the theory.
    pub type_ii_conditional: f64,
    /// Conditional type II from the rare-event Monte Carlo (devices
    /// sampled conditioned on being faulty).
    pub mc_type_ii_conditional: Proportion,
    /// The paper's "max. error made" column: ΔV_max/2^k in LSB.
    pub max_error_lsb: f64,
}

/// Regenerates Table 2: joint error probabilities at the actual ±1 LSB
/// spec, with a conditional Monte-Carlo check of `P(accept|faulty)`
/// (`faulty_devices` conditioned draws per counter size, fanned out
/// across `workers` threads with per-worker scratch reuse; 0 = auto).
pub fn table2(faulty_devices: usize, seed: u64, workers: usize) -> Vec<Table2Row> {
    let spec = LinearitySpec::paper_actual();
    let dist = WidthDistribution::paper_worst_case();
    (4..=7)
        .map(|bits| {
            let ds = plan_delta_s(&spec, bits).0;
            let analytic = analytic_point(&spec, 0.21, ds, JUDGED_CODES);
            let bist = BistConfig::builder(Resolution::SIX_BIT, spec)
                .counter_bits(bits)
                .build()
                .expect("paper operating points are valid");

            // Rare-event MC: sample devices conditioned on exactly one
            // out-of-spec code (P(≥2 bad | faulty) ≈ 3×10⁻³, negligible)
            // and run the full counting BIST on each. Devices derive
            // from `(seed, index)`, so the fan-out is deterministic.
            let batch = Batch::paper_simulation(seed ^ u64::from(bits), 1);
            let accepted: u64 = partitioned(faulty_devices, workers, |from, to| {
                let mut screener = Screener::new(Workload::static_ramp(bist));
                let mut accepted = 0u64;
                for i in from..to {
                    let mut rng = batch.device_rng(i ^ 0x7ab1e2);
                    let widths = conditional_faulty_widths(&dist, &spec, 62, &mut rng);
                    let tf = transfer_from_widths(Resolution::SIX_BIT, &widths);
                    if screener.screen_one(&tf, &mut rng).accepted() {
                        accepted += 1;
                    }
                }
                accepted
            })
            .into_iter()
            .sum();

            Table2Row {
                counter_bits: bits,
                type_i_joint: analytic.type_i_joint,
                type_ii_joint: analytic.type_ii_joint,
                type_ii_conditional: analytic.type_ii,
                mc_type_ii_conditional: Proportion::new(accepted, faulty_devices as u64),
                max_error_lsb: 2.0 / (1u64 << bits) as f64,
            }
        })
        .collect()
}

/// One point of the Figure 7 reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure7Point {
    /// Step size Δs in LSB.
    pub delta_s: f64,
    /// Analytic conditional type I at this Δs.
    pub type_i: f64,
    /// Analytic conditional type II.
    pub type_ii: f64,
    /// Count window at this Δs.
    pub i_min: u64,
    /// Count window at this Δs.
    pub i_max: u64,
}

/// Regenerates Figure 7: P(type I) and P(type II) as a function of Δs
/// over the region where a `counter_bits` counter suffices
/// (`ΔV_max/(2^k+1) < Δs ≤ ΔV_max/2^(k-1)`-ish; the paper plots the
/// 4-bit region).
pub fn figure7(counter_bits: u32, points: usize) -> Vec<Figure7Point> {
    assert!(points >= 2, "need at least two sweep points");
    let spec = LinearitySpec::paper_stringent();
    let (_, hi) = spec.width_window_lsb();
    let cap = (1u64 << counter_bits) as f64;
    // Sweep from "counter exactly full" to "counter half used".
    let ds_lo = hi.0 / (cap + 1.0) + 1e-9;
    let ds_hi = hi.0 / (cap / 2.0 + 1.0);
    (0..points)
        .map(|i| {
            let ds = ds_lo + (ds_hi - ds_lo) * i as f64 / (points - 1) as f64;
            let limits = CountLimits::from_spec(&spec, ds).expect("within counter region");
            let d = analytic_point(&spec, 0.21, ds, JUDGED_CODES);
            Figure7Point {
                delta_s: ds,
                type_i: d.type_i,
                type_ii: d.type_ii,
                i_min: limits.i_min(),
                i_max: limits.i_max(),
            }
        })
        .collect()
}

/// Monte-Carlo overlay for Figure 7 at selected Δs values.
pub fn figure7_mc(
    delta_s_values: &[f64],
    batch_size: usize,
    seed: u64,
    workers: usize,
) -> Vec<(f64, Proportion, Proportion)> {
    let spec = LinearitySpec::paper_stringent();
    delta_s_values
        .iter()
        .map(|&ds| {
            // A 16-bit counter never saturates in this region; the Δs
            // itself defines the window.
            let bist = BistConfig::builder(Resolution::SIX_BIT, spec)
                .counter_bits(16)
                .delta_s(bist_adc::types::Lsb(ds))
                .build()
                .expect("sweep points are valid");
            let batch = Batch::paper_simulation(seed, batch_size);
            let r = run_parallel(&Experiment::new(batch, bist), workers);
            (ds, r.type_i(), r.type_ii())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_point_reproduces_yield() {
        let d = analytic_point(&LinearitySpec::paper_stringent(), 0.21, 0.091, 64);
        assert!((0.28..0.38).contains(&d.p_good));
    }

    #[test]
    fn table1_small_run_is_consistent() {
        let cfg = Table1Config {
            sim_batch: 400,
            meas_batch: 400,
            slope_error_millis: -22,
            seed: 7,
            workers: 1,
        };
        let rows = table1(&cfg);
        assert_eq!(rows.len(), 4);
        // Counter sizes 4..=7 in order; type I decreasing (analytic).
        for w in rows.windows(2) {
            assert_eq!(w[1].counter_bits, w[0].counter_bits + 1);
            assert!(w[1].sim_type_i <= w[0].sim_type_i * 1.05);
        }
        // MC agrees with the analytic sim column within its interval
        // (allow the interval to miss occasionally — check 3 of 4 rows).
        let hits = rows
            .iter()
            .filter(|r| {
                let (lo, hi) = r.sim_mc_type_i.wilson(0.99).expect("non-empty batch");
                r.sim_type_i >= lo - 0.01 && r.sim_type_i <= hi + 0.01
            })
            .count();
        assert!(hits >= 3, "analytic/MC disagree in {}/4 rows", 4 - hits);
        // Measurement (slope error) raises type I above the sim column —
        // the paper's observation (meas ≈ 2× sim at 4 bits).
        let r4 = &rows[0];
        assert!(
            r4.meas_type_i.point().expect("non-empty") > r4.sim_type_i,
            "meas {} vs sim {}",
            r4.meas_type_i,
            r4.sim_type_i
        );
    }

    #[test]
    fn table2_joint_probabilities_in_ppm_range() {
        let rows = table2(300, 3, 0);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // The paper's values are 5–70 ppm; ours must land in the
            // same decade band (1–200 ppm).
            assert!(
                (1e-6..2e-4).contains(&r.type_ii_joint),
                "counter {}: joint type II {}",
                r.counter_bits,
                r.type_ii_joint
            );
            // The conditional MC must agree with the conditional theory.
            assert!(
                r.mc_type_ii_conditional
                    .wilson(0.99)
                    .map(|(lo, hi)| r.type_ii_conditional >= lo - 0.05
                        && r.type_ii_conditional <= hi + 0.05)
                    .unwrap_or(false),
                "counter {}: cond {} vs MC {}",
                r.counter_bits,
                r.type_ii_conditional,
                r.mc_type_ii_conditional
            );
        }
        // Max-error column: 1/8, 1/16, 1/32, 1/64.
        assert_eq!(rows[0].max_error_lsb, 0.125);
        assert_eq!(rows[3].max_error_lsb, 0.015625);
    }

    #[test]
    fn table2_independent_of_workers() {
        let a = table2(120, 5, 1);
        let b = table2(120, 5, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mc_type_ii_conditional, y.mc_type_ii_conditional);
        }
    }

    #[test]
    fn figure7_sweep_shape() {
        let pts = figure7(4, 40);
        assert_eq!(pts.len(), 40);
        // All points usable by a 4-bit counter (counts stored as i−1).
        assert!(pts.iter().all(|p| p.i_max <= 16));
        // Type I/II must oscillate: the sweep crosses window-placement
        // resonances, so the max/min ratio is large.
        let max_i = pts.iter().map(|p| p.type_i).fold(0.0f64, f64::max);
        let min_i = pts.iter().map(|p| p.type_i).fold(1.0f64, f64::min);
        assert!(
            max_i / min_i.max(1e-9) > 2.0,
            "flat type I: {min_i}..{max_i}"
        );
    }

    #[test]
    fn figure7_mc_overlay_matches_theory() {
        let pts = figure7_mc(&[0.0909], 600, 11, 1);
        let (ds, p1, _) = &pts[0];
        let theory = analytic_point(&LinearitySpec::paper_stringent(), 0.21, *ds, JUDGED_CODES);
        let (lo, hi) = p1.wilson(0.99).expect("non-empty");
        assert!(
            theory.type_i >= lo - 0.02 && theory.type_i <= hi + 0.02,
            "theory {} outside MC [{lo}, {hi}]",
            theory.type_i
        );
    }

    #[test]
    #[should_panic(expected = "at least two sweep points")]
    fn figure7_single_point_panics() {
        figure7(4, 1);
    }
}
