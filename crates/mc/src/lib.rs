//! # bist-mc
//!
//! Monte-Carlo experiment engine for the `adc-bist` reproduction of
//! R. de Vries et al., *Built-In Self-Test Methodology for A/D
//! Converters* (ED&TC 1997).
//!
//! * [`batch`] — seeded device batches: iid-width devices (the paper's
//!   simulation model) and physical flash devices (the stand-in for its
//!   364 measured parts), plus rare-event conditional sampling.
//! * [`experiment`] — run the BIST/reference/conventional tests over a
//!   batch and account type I/II errors plus throughput (devices/s,
//!   samples/s). Each device is screened by the streaming engine
//!   (stimulus → code stream → accumulators) with a per-worker
//!   `Scratch`, so the hot path allocates nothing after warm-up. The
//!   verdict backend is pluggable
//!   ([`experiment::Experiment::run_range_with`]): the behavioural
//!   accumulators by default, or the gate-accurate `bist-rtl` datapath.
//! * [`differential`] — the behavioural↔RTL seam validator: sweep both
//!   backends over identical code streams at fleet scale and demand
//!   bit-exact verdict agreement. The dynamic seam gets the same
//!   treatment ([`differential::run_dyn_differential`]): devices ×
//!   resolution × mismatch σ × coherent-bin choice, decision-exact
//!   agreement between the Goertzel bank and the fixed-point RTL.
//!   [`experiment::DynExperiment`] is the matching fleet-screening
//!   entry point with throughput accounting. The **sequenced** seam
//!   ([`differential::run_seq_differential`], driven by the `seq_fleet`
//!   binary) validates the early-stop layer: both backends under the
//!   sequencer must latch identical decisions at identical sample
//!   indices, and the sequenced decision is scored against full-sweep
//!   ground truth for empirical type I/II drift and samples-to-decision
//!   reduction. Sweep cells rejected by config validation are recorded
//!   as skipped, never screened, and excluded from throughput.
//! * [`parallel`] — deterministic thread fan-out
//!   ([`parallel::run_parallel`], the default under
//!   [`experiment::Experiment::run`]; [`parallel::run_parallel_with`]
//!   for a per-worker backend) and the generic range partitioner
//!   behind it.
//! * [`estimate`] — Wilson confidence intervals for the error rates.
//! * [`tables`] — the drivers that regenerate Table 1, Table 2 and
//!   Figure 7.
//!
//! ## Example: a miniature Table-1 cell
//!
//! ```
//! use bist_adc::spec::LinearitySpec;
//! use bist_adc::types::Resolution;
//! use bist_core::config::BistConfig;
//! use bist_mc::batch::Batch;
//! use bist_mc::experiment::Experiment;
//!
//! # fn main() -> Result<(), bist_core::limits::PlanLimitsError> {
//! let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
//!     .counter_bits(4)
//!     .build()?;
//! let result = Experiment::new(Batch::paper_simulation(1, 200), cfg).run();
//! println!("type I = {}", result.type_i());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod differential;
pub mod estimate;
pub mod experiment;
pub mod parallel;
pub mod tables;

pub use batch::{Batch, DeviceModel};
pub use differential::{
    run_arch_differential, run_differential, run_dyn_differential, run_seq_differential,
    DifferentialResult, Divergence, DynDifferentialResult, DynDivergence, SeqDifferentialResult,
    SeqDivergence, SeqLatch, SeqScenarioId, SeqSkippedCell,
};
pub use estimate::Proportion;
pub use experiment::{
    DynExperiment, DynExperimentResult, Experiment, ExperimentResult, GroundTruthMode,
    InvalidCellError,
};
pub use parallel::{run_parallel, run_parallel_with};
