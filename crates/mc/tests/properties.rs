//! Property-based tests of the Monte-Carlo estimator invariants.

use bist_adc::types::Resolution;
use bist_mc::batch::{transfer_from_widths, Batch};
use bist_mc::estimate::Proportion;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Wilson interval always contains the point estimate and is
    /// ordered.
    #[test]
    fn wilson_contains_point(successes in 0u64..1000, extra in 0u64..1000) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let p = Proportion::new(successes, trials);
        let point = p.point().expect("trials > 0");
        let (lo, hi) = p.wilson(0.95).expect("trials > 0");
        prop_assert!(lo <= point + 1e-12, "lo {lo} > point {point}");
        prop_assert!(hi >= point - 1e-12, "hi {hi} < point {point}");
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
    }

    /// Higher confidence never narrows the interval.
    #[test]
    fn wilson_monotone_in_confidence(successes in 0u64..100, extra in 1u64..100) {
        let p = Proportion::new(successes, successes + extra);
        let (lo90, hi90) = p.wilson(0.90).expect("non-empty");
        let (lo99, hi99) = p.wilson(0.99).expect("non-empty");
        prop_assert!(lo99 <= lo90 + 1e-12);
        prop_assert!(hi99 >= hi90 - 1e-12);
    }

    /// Wilson coverage: across many simulated binomial draws the 95 %
    /// interval misses the true p at roughly the nominal rate (checked
    /// loosely: at least 85 % coverage).
    #[test]
    fn wilson_coverage(p_num in 1u32..99) {
        let p_true = f64::from(p_num) / 100.0;
        let trials_per_rep = 200u64;
        let reps = 200;
        // Deterministic pseudo-binomial draws via splitmix64.
        let mut state = 0x1234_5678u64 ^ u64::from(p_num) << 32;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let mut covered = 0;
        for _ in 0..reps {
            let successes = (0..trials_per_rep).filter(|_| next() < p_true).count() as u64;
            if Proportion::new(successes, trials_per_rep).consistent_with(p_true) {
                covered += 1;
            }
        }
        let coverage = f64::from(covered) / f64::from(reps);
        prop_assert!(coverage > 0.85, "coverage {coverage} at p {p_true}");
    }

    /// Batch devices are pure functions of (seed, index): regenerating
    /// any device reproduces it exactly, in any order.
    #[test]
    fn batch_devices_are_pure(seed in 0u64..10_000, index in 0usize..300) {
        let batch = Batch::paper_simulation(seed, 300);
        let a = batch.device(index);
        // Access other devices in between.
        let _ = batch.device((index + 7) % 300);
        let b = batch.device(index);
        prop_assert_eq!(a.transitions(), b.transitions());
    }

    /// transfer_from_widths round-trips the width vector (clamped at 0).
    #[test]
    fn widths_round_trip(widths in prop::collection::vec(0.0f64..2.5, 62)) {
        let tf = transfer_from_widths(Resolution::SIX_BIT, &widths);
        let got = tf.code_widths_lsb();
        prop_assert_eq!(got.len(), widths.len());
        for (g, w) in got.iter().zip(&widths) {
            prop_assert!((g.0 - w).abs() < 1e-9, "width {} vs {}", g.0, w);
        }
    }
}
