//! Property tests of the behavioural↔RTL verdict seam: for the same
//! code stream, `LsbMonitorAcc` + `FunctionalAcc` (via
//! `BehavioralBackend`) and the gate-accurate `bist_rtl::BistTop` (via
//! `RtlBackend`) must produce identical pass/fail, DNL-failure counts,
//! functional-mismatch counts and per-code measurements — including
//! counter saturation, INL drift and glitch-toggled streams.
//!
//! Stream contract: the behavioural accumulators stop dead at the last
//! sample, while the RTL drains its synchroniser by recirculating the
//! deglitch filters. On the raw (undeglitched) path the two are exact
//! for *any* stream. With the deglitch filters in the path, a
//! majority/median window still in flight at the last sample is
//! undecidable in stream-time, so bit-exactness requires the stimulus
//! to dwell a few samples past the final transition — which every
//! harness ramp guarantees by overshooting full scale by 10 LSB. The
//! generators below mirror that: glitches land anywhere except the
//! final `DWELL` samples when deglitching is enabled.

use bist_adc::spec::LinearitySpec;
use bist_adc::types::{Code, Resolution};
use bist_core::backend::{Backend, BehavioralBackend, RtlBackend};
use bist_core::config::BistConfig;
use bist_core::harness::Scratch;
use proptest::prelude::*;

/// Samples of settled input required after the last transition for the
/// deglitched path (median/majority window + synchroniser).
const DWELL: usize = 4;

fn config(counter_bits: u32, deglitch: bool, check_inl: bool) -> BistConfig {
    let spec = if check_inl {
        LinearitySpec::new(0.5, 1.0)
    } else {
        LinearitySpec::paper_stringent()
    };
    BistConfig::builder(Resolution::SIX_BIT, spec)
        .counter_bits(counter_bits)
        .deglitch(deglitch)
        .build()
        .expect("planned operating points are valid")
}

/// Builds a staircase with the given per-code widths, LSB-toggles the
/// samples at `glitches` (wrapped into range), and — when `deglitch` —
/// holds the last code for `DWELL` extra samples.
fn stream(widths: &[u8], glitches: &[usize], deglitch: bool) -> Vec<Code> {
    let mut codes = Vec::new();
    for (c, &w) in widths.iter().enumerate() {
        codes.extend(std::iter::repeat_n(Code(c as u32), w as usize));
    }
    if codes.is_empty() {
        return codes;
    }
    let safe = codes.len().saturating_sub(if deglitch { DWELL } else { 0 });
    if safe > 0 {
        for &g in glitches {
            let i = g % safe;
            codes[i] = Code(codes[i].0 ^ 1);
        }
    }
    if deglitch {
        let last = *codes.last().expect("non-empty");
        codes.extend(std::iter::repeat_n(last, DWELL));
    }
    codes
}

fn run_both(config: &BistConfig, codes: &[Code]) -> (Scratch, Scratch) {
    let mut scratch_b = Scratch::new();
    let mut scratch_r = Scratch::new();
    let behavioral = BehavioralBackend.process(config, codes.iter().copied(), &mut scratch_b);
    let rtl = RtlBackend::new().process(config, codes.iter().copied(), &mut scratch_r);
    assert_eq!(
        behavioral,
        rtl,
        "verdict mismatch for {} codes at {config}",
        codes.len()
    );
    (scratch_b, scratch_r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Clean and glitched staircases, all counter widths, with and
    /// without INL checking: the full verdict (acceptance, completeness,
    /// DNL/INL failure counts, functional checks and mismatches, sample
    /// count) is identical, and so is every per-code measurement the
    /// monitor records — including saturated (overflowed) codes.
    #[test]
    fn backends_agree_on_random_staircases(
        widths in prop::collection::vec(0u8..48, 2..64),
        glitches in prop::collection::vec(0usize..10_000, 0..6),
        counter_bits in 4u32..=8,
        deglitch in any::<bool>(),
        check_inl in any::<bool>(),
    ) {
        let config = config(counter_bits, deglitch, check_inl);
        let codes = stream(&widths, &glitches, deglitch);
        let (scratch_b, scratch_r) = run_both(&config, &codes);
        // Per-code detail: the hardware's view differs only in the
        // engineering width estimate of saturated codes (it cannot know
        // the unmeasurable raw width), so compare the on-chip fields.
        prop_assert_eq!(scratch_b.monitor_codes().len(), scratch_r.monitor_codes().len());
        for (b, r) in scratch_b.monitor_codes().iter().zip(scratch_r.monitor_codes()) {
            prop_assert_eq!(b.index, r.index);
            prop_assert_eq!(b.count, r.count);
            prop_assert_eq!(b.overflow, r.overflow);
            prop_assert_eq!(b.dnl_verdict, r.dnl_verdict);
            prop_assert_eq!(b.inl_counts, r.inl_counts);
            prop_assert_eq!(b.inl_pass, r.inl_pass);
            if !b.overflow {
                prop_assert_eq!(b.width_lsb, r.width_lsb);
            }
        }
    }

    /// The undeglitched path needs no dwell: streams may end anywhere —
    /// including exactly at a transition, the case the RTL can only
    /// recover through its drain cycles.
    #[test]
    fn raw_path_agrees_on_abruptly_ending_streams(
        widths in prop::collection::vec(1u8..20, 2..40),
        counter_bits in 4u32..=7,
        tail in 0u32..4,
    ) {
        let config = config(counter_bits, false, false);
        let mut codes = stream(&widths, &[], false);
        // Close with a fresh transition and 0–3 samples after it.
        let next = Code(codes.last().map_or(0, |c| c.0 ^ 1));
        codes.extend(std::iter::repeat_n(next, 1 + tail as usize));
        run_both(&config, &codes);
    }

    /// Saturation stress: every code far wider than the counter
    /// capacity — the overflow flag, the clamped counts and the
    /// resulting verdicts line up.
    #[test]
    fn backends_agree_under_heavy_saturation(
        widths in prop::collection::vec(30u8..250, 2..20),
        counter_bits in 4u32..=5,
    ) {
        let config = config(counter_bits, false, true);
        let codes = stream(&widths, &[], false);
        let (scratch_b, scratch_r) = run_both(&config, &codes);
        prop_assert!(scratch_b
            .monitor_codes()
            .iter()
            .zip(scratch_r.monitor_codes())
            .all(|(b, r)| b.overflow == r.overflow && b.count == r.count));
    }
}

/// A stuck-at-toggling LSB emits far more transitions than expected:
/// both backends must (a) count the surplus identically and (b) reject
/// via the exact-count completeness rule even when every split run
/// happens to pass the window.
#[test]
fn toggling_lsb_breaks_completeness_in_both_backends() {
    let config = config(4, false, false);
    // Width 12 per code with the planned window [6, 16]: splitting each
    // run into 6 + 6 passes the DNL window on every half.
    let codes: Vec<Code> = (0u32..64)
        .flat_map(|c| {
            (0..12).map(move |k| {
                // Toggle the LSB halfway through each code's run.
                if k >= 6 {
                    Code(c ^ 1)
                } else {
                    Code(c)
                }
            })
        })
        .collect();
    let mut scratch_b = Scratch::new();
    let mut scratch_r = Scratch::new();
    let behavioral = BehavioralBackend.process(&config, codes.iter().copied(), &mut scratch_b);
    let rtl = RtlBackend::new().process(&config, codes.iter().copied(), &mut scratch_r);
    assert_eq!(behavioral, rtl);
    assert!(behavioral.codes_judged > behavioral.expected_codes);
    assert!(
        !behavioral.complete(),
        "surplus transitions must not read complete"
    );
    assert!(!behavioral.accepted());
}
