//! Proves the acceptance criterion of the streaming engine: after
//! warm-up, the single-device hot path (`run_static_bist_with` with a
//! reused `Scratch`) performs **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; the test
//! warms the scratch on a first device, snapshots the allocation
//! counter, screens several more devices and asserts the counter did
//! not move. Kept alone in this integration-test binary so no sibling
//! test thread can perturb the counter.

use bist_adc::noise::NoiseConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_core::config::BistConfig;
use bist_core::harness::{run_static_bist_with, Scratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A mildly non-ideal device so the monitor exercises failure paths too.
fn device() -> TransferFunction {
    let mut t: Vec<f64> = (1..=63).map(|k| k as f64 * 0.1).collect();
    t[20] += 0.04;
    t[40] -= 0.03;
    TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t)
}

#[test]
fn hot_path_is_allocation_free_after_warmup() {
    // Cover the configuration space of the hot path: plain, deglitched,
    // and noisy sweeps (noise draws use stack-only samplers).
    let plain = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(5)
        .build()
        .unwrap();
    let deglitched = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .deglitch(true)
        .build()
        .unwrap();
    let noise = NoiseConfig::noiseless().with_transition_noise(0.003);
    let adc = device();
    let mut scratch = Scratch::new();

    // Warm-up: run the exact sweeps measured below once, so the scratch
    // buffers reach the capacity every measured round needs (the
    // contract is "allocation-free after warm-up", i.e. once buffers
    // have seen the workload's high-water mark).
    for round in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(round);
        run_static_bist_with(
            &adc,
            &plain,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng,
            &mut scratch,
        );
        run_static_bist_with(&adc, &deglitched, &noise, -0.01, &mut rng, &mut scratch);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut accepted = 0u32;
    for round in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(round);
        let a = run_static_bist_with(
            &adc,
            &plain,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng,
            &mut scratch,
        );
        let b = run_static_bist_with(&adc, &deglitched, &noise, -0.01, &mut rng, &mut scratch);
        accepted += u32::from(a.accepted()) + u32::from(b.accepted());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "hot path allocated {} times after warm-up",
        after - before
    );
    // The verdicts themselves must still be real work, not dead code.
    assert!(accepted <= 10);

    // The gate-accurate backend gets the same guarantee: each backend
    // caches one BistTop per configuration and resets it in place
    // between devices (nothing reconstructed), and the scratch buffers
    // are already warm — so the rtl device→verdict path is also
    // allocation-free after its first sweep. One backend per config,
    // as a fleet screener would hold them.
    use bist_core::backend::RtlBackend;
    use bist_core::harness::run_static_bist_with_backend;
    let mut plain_rtl = RtlBackend::new();
    let mut deglitched_rtl = RtlBackend::new();
    for round in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(round);
        run_static_bist_with_backend(
            &mut plain_rtl,
            &adc,
            &plain,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng,
            &mut scratch,
        );
        run_static_bist_with_backend(
            &mut deglitched_rtl,
            &adc,
            &deglitched,
            &noise,
            -0.01,
            &mut rng,
            &mut scratch,
        );
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut accepted = 0u32;
    for round in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(round);
        let a = run_static_bist_with_backend(
            &mut plain_rtl,
            &adc,
            &plain,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng,
            &mut scratch,
        );
        let b = run_static_bist_with_backend(
            &mut deglitched_rtl,
            &adc,
            &deglitched,
            &noise,
            -0.01,
            &mut rng,
            &mut scratch,
        );
        accepted += u32::from(a.accepted()) + u32::from(b.accepted());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "rtl path allocated {} times after warm-up",
        after - before
    );
    assert!(accepted <= 10);

    // The dynamic verdict path gets the same guarantee on both
    // backends: the behavioural Goertzel bank lives in a reusable
    // DynScratch (reset in place between devices), and the RTL backend
    // caches one DynBistTop per configuration — so after warm-up the
    // coherent-record device→verdict path allocates nothing either.
    use bist_core::dynamic::{
        run_dynamic_bist_with, run_dynamic_bist_with_backend, DynScratch, DynamicConfig,
    };
    let dyn_config = DynamicConfig::paper_default();
    let dyn_noise = NoiseConfig::noiseless().with_input_noise(0.002);
    let mut dyn_scratch = DynScratch::new();
    let mut dyn_rtl = RtlBackend::new();
    for round in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(round);
        run_dynamic_bist_with(&adc, &dyn_config, &dyn_noise, &mut rng, &mut dyn_scratch);
        run_dynamic_bist_with_backend(
            &mut dyn_rtl,
            &adc,
            &dyn_config,
            &dyn_noise,
            &mut rng,
            &mut dyn_scratch,
        );
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut dyn_accepted = 0u32;
    for round in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(round);
        let a = run_dynamic_bist_with(&adc, &dyn_config, &dyn_noise, &mut rng, &mut dyn_scratch);
        let b = run_dynamic_bist_with_backend(
            &mut dyn_rtl,
            &adc,
            &dyn_config,
            &dyn_noise,
            &mut rng,
            &mut dyn_scratch,
        );
        dyn_accepted += u32::from(a.accepted()) + u32::from(b.accepted());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "dynamic path allocated {} times after warm-up",
        after - before
    );
    assert!(dyn_accepted <= 10);

    // The sequencer-wrapped device→verdict paths get the same
    // guarantee on both backends: the StaticSequencer is inline state
    // only, the DynSequencer's block buffer is cleared (never shrunk)
    // by `begin`, and the early-stop wrappers reuse the same cached
    // tops and scratches as the plain engines.
    use bist_core::sequencer::{
        run_seq_dynamic_bist_with_backend, run_seq_static_bist_with_backend, DynSequencer,
        SequencerConfig, StaticSequencer,
    };
    let mut static_seq = StaticSequencer::new(SequencerConfig::default());
    let mut dyn_seq = DynSequencer::new(SequencerConfig::default());
    let mut seq_rtl = RtlBackend::new();
    for round in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(round);
        run_seq_static_bist_with_backend(
            &mut bist_core::backend::BehavioralBackend,
            &adc,
            &plain,
            &mut static_seq,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng,
            &mut scratch,
        );
        run_seq_static_bist_with_backend(
            &mut seq_rtl,
            &adc,
            &plain,
            &mut static_seq,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng,
            &mut scratch,
        );
        run_seq_dynamic_bist_with_backend(
            &mut bist_core::backend::BehavioralBackend,
            &adc,
            &dyn_config,
            &mut dyn_seq,
            &dyn_noise,
            &mut rng,
            &mut dyn_scratch,
        );
        run_seq_dynamic_bist_with_backend(
            &mut seq_rtl,
            &adc,
            &dyn_config,
            &mut dyn_seq,
            &dyn_noise,
            &mut rng,
            &mut dyn_scratch,
        );
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut seq_decided = 0u32;
    for round in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(round);
        let a = run_seq_static_bist_with_backend(
            &mut bist_core::backend::BehavioralBackend,
            &adc,
            &plain,
            &mut static_seq,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng,
            &mut scratch,
        );
        let b = run_seq_static_bist_with_backend(
            &mut seq_rtl,
            &adc,
            &plain,
            &mut static_seq,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng,
            &mut scratch,
        );
        let c = run_seq_dynamic_bist_with_backend(
            &mut bist_core::backend::BehavioralBackend,
            &adc,
            &dyn_config,
            &mut dyn_seq,
            &dyn_noise,
            &mut rng,
            &mut dyn_scratch,
        );
        let d = run_seq_dynamic_bist_with_backend(
            &mut seq_rtl,
            &adc,
            &dyn_config,
            &mut dyn_seq,
            &dyn_noise,
            &mut rng,
            &mut dyn_scratch,
        );
        assert_eq!(a.decision, b.decision, "sequenced backends diverged");
        assert_eq!(
            c.decision, d.decision,
            "sequenced dynamic backends diverged"
        );
        seq_decided += u32::from(a.stopped_early())
            + u32::from(b.stopped_early())
            + u32::from(c.stopped_early())
            + u32::from(d.stopped_early());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "sequenced path allocated {} times after warm-up",
        after - before
    );
    // The sequencer must have done real early-stop work, not dead code.
    assert!(seq_decided > 0, "no sequenced run stopped early");
}
