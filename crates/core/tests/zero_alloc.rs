//! Proves the acceptance criterion of the streaming engine: after
//! warm-up, the device→verdict hot paths — scalar `Screener::screen_one`
//! on every workload × backend × sequencing combination, and the
//! lane-parallel `StaticBatch`/`DynBatch` engines — perform **zero heap
//! allocations**.
//!
//! A counting global allocator wraps the system allocator; the test
//! warms each engine on a first pass (buffers reach the workload's
//! high-water mark), snapshots the allocation counter, screens several
//! more devices and asserts the counter did not move. Kept alone in
//! this integration-test binary so no sibling test thread can perturb
//! the counter.

use bist_adc::noise::NoiseConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_core::backend::{BehavioralBackend, RtlBackend};
use bist_core::batch::{BatchDevice, DynBatch, StaticBatch};
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::pool::{drain_dyn, drain_static, DeviceQueue};
use bist_core::ring::Ring;
use bist_core::screener::{Screener, Workload};
use bist_core::sequencer::SequencerConfig;
use bist_core::shard::{JobKind, ResidentShard, ShardJob, ShardPlan, ShardVerdict};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System`'s allocator — every method
// forwards its arguments unchanged, so `System` upholds the `GlobalAlloc`
// contract; the only addition is a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (non-zero
    // `layout`); we forward it verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract (`ptr`
    // came from this allocator with `layout`); forwarded to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract (`ptr`
    // came from this allocator with `layout`); forwarded to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A mildly non-ideal device so the monitor exercises failure paths too.
fn device() -> TransferFunction {
    let mut t: Vec<f64> = (1..=63).map(|k| k as f64 * 0.1).collect();
    t[20] += 0.04;
    t[40] -= 0.03;
    TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t)
}

#[test]
fn hot_path_is_allocation_free_after_warmup() {
    // Cover the configuration space of the hot path: plain, deglitched,
    // and noisy sweeps (noise draws use stack-only samplers).
    let plain = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(5)
        .build()
        .unwrap();
    let deglitched = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .deglitch(true)
        .build()
        .unwrap();
    let noise = NoiseConfig::noiseless().with_transition_noise(0.003);
    let dyn_config = DynamicConfig::paper_default();
    let dyn_noise = NoiseConfig::noiseless().with_input_noise(0.002);
    let adc = device();

    // The one front door, every mode it can open: workload × backend ×
    // sequencing. Each `Screener` owns its scratch (and, when
    // sequenced, its sequencer), so one warm pass per screener reaches
    // the steady state a fleet loop would run in.
    let w_plain = Workload::static_ramp(plain);
    let w_noisy = Workload::static_ramp(deglitched)
        .with_noise(noise)
        .with_slope_error(-0.01);
    let w_dyn = Workload::dynamic_sine(dyn_config).with_noise(dyn_noise);
    let policy = SequencerConfig::default();

    let mut s_plain = Screener::new(w_plain);
    let mut s_noisy = Screener::new(w_noisy);
    let mut s_plain_rtl = Screener::new(w_plain).backend(RtlBackend::new());
    let mut s_noisy_rtl = Screener::new(w_noisy).backend(RtlBackend::new());
    let mut s_dyn = Screener::new(w_dyn);
    let mut s_dyn_rtl = Screener::new(w_dyn).backend(RtlBackend::new());
    let mut q_plain = Screener::new(w_plain).sequencer(policy);
    let mut q_plain_rtl = Screener::new(w_plain)
        .backend(RtlBackend::new())
        .sequencer(policy);
    let mut q_dyn = Screener::new(w_dyn).sequencer(policy);
    let mut q_dyn_rtl = Screener::new(w_dyn)
        .backend(RtlBackend::new())
        .sequencer(policy);

    let mut screen_all = |accepted: &mut u32, stopped: &mut u32| {
        for round in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(round);
            *accepted += u32::from(s_plain.screen_one(&adc, &mut rng).accepted());
            *accepted += u32::from(s_noisy.screen_one(&adc, &mut rng).accepted());
            *accepted += u32::from(s_plain_rtl.screen_one(&adc, &mut rng).accepted());
            *accepted += u32::from(s_noisy_rtl.screen_one(&adc, &mut rng).accepted());
            *accepted += u32::from(s_dyn.screen_one(&adc, &mut rng).accepted());
            *accepted += u32::from(s_dyn_rtl.screen_one(&adc, &mut rng).accepted());
            let a = q_plain.screen_one(&adc, &mut rng);
            let b = q_plain_rtl.screen_one(&adc, &mut rng);
            let c = q_dyn.screen_one(&adc, &mut rng);
            let d = q_dyn_rtl.screen_one(&adc, &mut rng);
            assert_eq!(a.decision(), b.decision(), "sequenced backends diverged");
            assert_eq!(
                c.decision(),
                d.decision(),
                "sequenced dynamic backends diverged"
            );
            *stopped += u32::from(a.stopped_early())
                + u32::from(b.stopped_early())
                + u32::from(c.stopped_early())
                + u32::from(d.stopped_early());
        }
    };

    let (mut warm_accepted, mut warm_stopped) = (0u32, 0u32);
    screen_all(&mut warm_accepted, &mut warm_stopped);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let (mut accepted, mut stopped) = (0u32, 0u32);
    screen_all(&mut accepted, &mut stopped);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "scalar hot path allocated {} times after warm-up",
        after - before
    );
    // The verdicts must still be real work, not dead code.
    assert!(accepted <= 18);
    assert!(stopped > 0, "no sequenced run stopped early");

    // The lane-parallel batch engines get the same guarantee: lanes,
    // the shared stimulus table, the rank LUTs, report buffers and the
    // refill queue all reach their high-water mark on the first pass,
    // and a reused batch drained with `finish_reports` +
    // `clear_reports` (not `take_reports`, which surrenders the
    // buffer) allocates nothing afterwards. Four batches cover
    // run-skip and fallback static lanes, and the paired-FMA and
    // fallback dynamic lanes, plain and sequenced.
    const FLEET: usize = 8;
    let mut b_static = StaticBatch::new(plain).with_lane_width(4);
    let mut b_static_seq = StaticBatch::new(deglitched)
        .with_noise(noise)
        .with_slope_error(-0.01)
        .with_sequencer(policy)
        .with_lane_width(4);
    let mut b_dyn = DynBatch::new(dyn_config).with_lane_width(4);
    let mut b_dyn_seq = DynBatch::new(dyn_config)
        .with_noise(dyn_noise)
        .with_sequencer(policy)
        .with_lane_width(4);

    let mut batch_all = |accepted: &mut u32| {
        for i in 0..FLEET {
            let rng = || StdRng::seed_from_u64(i as u64);
            b_static.push(BatchDevice::new(i, &adc, rng()));
            b_static_seq.push(BatchDevice::new(i, &adc, rng()));
            b_dyn.push(BatchDevice::new(i, &adc, rng()));
            b_dyn_seq.push(BatchDevice::new(i, &adc, rng()));
        }
        b_static.run_batched();
        b_static_seq.run_batched();
        b_dyn.run_batched();
        b_dyn_seq.run_batched();
        for r in b_static.finish_reports() {
            *accepted += u32::from(r.outcome.verdict.accepted());
        }
        for r in b_static_seq.finish_reports() {
            *accepted += u32::from(r.outcome.verdict.accepted());
        }
        for r in b_dyn.finish_reports() {
            *accepted += u32::from(r.outcome.verdict.accepted());
        }
        for r in b_dyn_seq.finish_reports() {
            *accepted += u32::from(r.outcome.verdict.accepted());
        }
        b_static.clear_reports();
        b_static_seq.clear_reports();
        b_dyn.clear_reports();
        b_dyn_seq.clear_reports();
    };

    let mut warm_batch_accepted = 0u32;
    batch_all(&mut warm_batch_accepted);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut batch_accepted = 0u32;
    batch_all(&mut batch_accepted);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "batched hot path allocated {} times after warm-up",
        after - before
    );
    assert!(batch_accepted <= 4 * FLEET as u32);
    assert_eq!(
        batch_accepted, warm_batch_accepted,
        "reused batches must reproduce the warm pass verdicts"
    );

    // The pooled per-worker drain gets the same guarantee: a worker's
    // steady state is claim → push → run, and claiming is one
    // `fetch_add` plus a buffer move. Packing a fleet into a
    // `DeviceQueue` allocates, so the queues are prebuilt before the
    // snapshot; the drain itself — warm lanes, reused reports — must
    // not allocate.
    let make_queue = |chunk: usize| {
        DeviceQueue::new(
            (0..FLEET).map(|i| BatchDevice::new(i, &adc, StdRng::seed_from_u64(i as u64))),
            chunk,
        )
    };
    let mut w_static = StaticBatch::new(plain).with_lane_width(4);
    let mut w_dyn = DynBatch::new(dyn_config).with_lane_width(4);

    let mut drain_accepted = |q_static: &DeviceQueue<_, _>, q_dyn: &DeviceQueue<_, _>| -> u32 {
        let mut accepted = 0u32;
        drain_static(&mut w_static, q_static, &mut BehavioralBackend);
        drain_dyn(&mut w_dyn, q_dyn, &mut BehavioralBackend);
        for r in w_static.finish_reports() {
            accepted += u32::from(r.outcome.verdict.accepted());
        }
        for r in w_dyn.finish_reports() {
            accepted += u32::from(r.outcome.verdict.accepted());
        }
        w_static.clear_reports();
        w_dyn.clear_reports();
        accepted
    };

    let warm_pool_accepted = drain_accepted(&make_queue(3), &make_queue(3));

    let q_static = make_queue(3);
    let q_dyn = make_queue(3);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let pool_accepted = drain_accepted(&q_static, &q_dyn);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "pooled worker drain allocated {} times after warm-up",
        after - before
    );
    assert_eq!(
        pool_accepted, warm_pool_accepted,
        "reused worker engines must reproduce the warm pass verdicts"
    );

    // The resident service steady state (`bist-serve`): submissions
    // enter a bounded ring, a resident shard screens the burst with
    // warm engines, and verdicts leave through a second ring. The
    // rings move items inside preallocated slots and the shard reuses
    // its id table and batch engines, so after one warm burst the
    // whole submit→verdict round trip must not allocate.
    const SERVICE_BURST: u64 = 12;
    let mut shard_plan = ShardPlan::for_workload(w_noisy);
    shard_plan.dynamic_workload = Some(Workload::dynamic_sine(dyn_config).with_noise(dyn_noise));
    shard_plan.lane_width = 4;
    let mut shard = ResidentShard::new(&shard_plan, BehavioralBackend);
    let submit: Ring<ShardJob<&TransferFunction, StdRng>> =
        Ring::with_capacity(SERVICE_BURST as usize);
    let verdict_ring: Ring<ShardVerdict> = Ring::with_capacity(SERVICE_BURST as usize);
    let mut service_round = |accepted: &mut u32| {
        for id in 0..SERVICE_BURST {
            let job = ShardJob {
                id,
                kind: if id % 2 == 0 {
                    JobKind::Static
                } else {
                    JobKind::Dynamic
                },
                adc: &adc,
                rng: StdRng::seed_from_u64(id),
            };
            assert!(submit.try_push(job).is_accepted());
        }
        shard.process(std::iter::from_fn(|| submit.try_pop()), |verdict| {
            assert!(verdict_ring.try_push(verdict).is_accepted());
        });
        while let Some(verdict) = verdict_ring.try_pop() {
            *accepted += u32::from(verdict.verdict.accepted());
        }
    };

    let mut warm_service_accepted = 0u32;
    service_round(&mut warm_service_accepted);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut service_accepted = 0u32;
    service_round(&mut service_accepted);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "resident shard submit→verdict steady state allocated {} times after warm-up",
        after - before
    );
    assert_eq!(
        service_accepted, warm_service_accepted,
        "the resident shard must reproduce the warm burst verdicts"
    );
}
