//! Property-based tests of the BIST method's invariants: acceptance
//! function laws, count-limit consistency, and planner monotonicity.

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::analytic::{acceptance_probability, code_probabilities, WidthDistribution};
use bist_core::limits::{plan_delta_s, CountLimits};
use bist_core::qmin::QminPlan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// h(ΔV, Δs) is a probability and is exactly the measure of sample
    /// phases whose count lands in the window.
    #[test]
    fn acceptance_is_probability(
        dv in 0.0f64..3.0,
        ds in 0.005f64..0.5,
        i_min in 1u64..20,
        extra in 0u64..30,
    ) {
        let i_max = i_min + extra;
        let h = acceptance_probability(dv, ds, i_min, i_max);
        prop_assert!((0.0..=1.0).contains(&h), "h = {h}");
        // Phase-measure cross-check at moderate resolution.
        let trials = 4000;
        let x = dv / ds;
        let hits = (0..trials)
            .filter(|&t| {
                let u = (t as f64 + 0.5) / trials as f64;
                let i = (x + u).floor() as u64;
                (i_min..=i_max).contains(&i)
            })
            .count();
        let emp = hits as f64 / trials as f64;
        prop_assert!((emp - h).abs() < 2e-3, "emp {emp} vs h {h}");
    }

    /// Widening the count window can only increase acceptance.
    #[test]
    fn acceptance_monotone_in_window(
        dv in 0.0f64..3.0,
        ds in 0.01f64..0.3,
        i_min in 2u64..15,
        extra in 0u64..20,
    ) {
        let i_max = i_min + extra;
        let h = acceptance_probability(dv, ds, i_min, i_max);
        let wider_low = acceptance_probability(dv, ds, i_min - 1, i_max);
        let wider_high = acceptance_probability(dv, ds, i_min, i_max + 1);
        prop_assert!(wider_low >= h - 1e-12);
        prop_assert!(wider_high >= h - 1e-12);
    }

    /// Count limits honour their definition: a width of exactly
    /// `i·Δs` is inside the spec window iff `i` is inside the limits
    /// (up to the open/closed boundary conventions of ceil/floor).
    #[test]
    fn count_limits_consistent_with_window(
        dnl_limit in 0.05f64..0.9,
        ds in 0.005f64..0.2,
    ) {
        let spec = LinearitySpec::dnl_only(dnl_limit);
        prop_assume!(CountLimits::from_spec(&spec, ds).is_ok());
        let lim = CountLimits::from_spec(&spec, ds).expect("checked");
        let (lo, hi) = spec.width_window_lsb();
        // Interior counts map to interior widths.
        for i in lim.i_min()..=lim.i_max() {
            let width = i as f64 * ds;
            prop_assert!(width >= lo.0 - 1e-12 && width <= hi.0 + 1e-12,
                "count {i} → width {width} outside [{}, {}]", lo.0, hi.0);
        }
        // Counts just outside map to widths outside.
        if lim.i_min() > 0 {
            let w = (lim.i_min() - 1) as f64 * ds;
            prop_assert!(w < lo.0 + 1e-12);
        }
        let w = (lim.i_max() + 1) as f64 * ds;
        prop_assert!(w > hi.0 - 1e-12);
    }

    /// The per-code probability masses always partition: good/faulty ×
    /// accept/reject sums to 1 (up to the sub-zero-width tail).
    #[test]
    fn code_probability_partition(
        sigma in 0.05f64..0.4,
        counter_bits in 4u32..9,
    ) {
        let spec = LinearitySpec::paper_stringent();
        let ds = plan_delta_s(&spec, counter_bits).0;
        let dist = WidthDistribution::new(1.0, sigma);
        let lim = CountLimits::from_spec(&spec, ds).expect("planned point");
        let c = code_probabilities(&dist, &spec, ds, &lim);
        prop_assert!(c.p_good >= 0.0 && c.p_good <= 1.0);
        prop_assert!(c.p_accept_and_good <= c.p_good + 1e-12);
        prop_assert!(c.p_accept() <= 1.0 + 1e-12);
        let type_i = c.type_i_conditional();
        let type_ii = c.type_ii_conditional();
        prop_assert!((0.0..=1.0).contains(&type_i));
        prop_assert!((0.0..=1.0).contains(&type_ii));
    }

    /// Larger counters (smaller planned Δs) never increase the analytic
    /// per-code type-I mass.
    #[test]
    fn finer_steps_shrink_per_code_type_i(sigma in 0.1f64..0.3) {
        let spec = LinearitySpec::paper_stringent();
        let dist = WidthDistribution::new(1.0, sigma);
        let mut last = f64::INFINITY;
        for bits in [4u32, 6, 8, 10] {
            let ds = plan_delta_s(&spec, bits).0;
            let lim = CountLimits::from_spec(&spec, ds).expect("planned point");
            let c = code_probabilities(&dist, &spec, ds, &lim);
            let mass = c.p_reject_and_good();
            prop_assert!(mass <= last * 1.2 + 1e-12, "bits {bits}: {mass} vs {last}");
            last = mass;
        }
    }

    /// q_min is monotone in stimulus frequency and never exceeds n.
    #[test]
    fn qmin_monotone(
        n in 4u32..14,
        dnl in 0.1f64..1.0,
        inl in 0.1f64..2.0,
    ) {
        let plan = QminPlan::new(Resolution::new(n).expect("valid"), dnl, inl);
        let mut last = 0u32;
        let mut became_untestable = false;
        for exp in -70..=0 {
            let ratio = 2f64.powf(exp as f64 / 10.0);
            match plan.q_min(ratio * 1e6, 1e6) {
                Some(q) => {
                    prop_assert!(!became_untestable, "testability regained at ratio {ratio}");
                    prop_assert!(q >= last, "ratio {ratio}: q {q} < {last}");
                    prop_assert!(q <= n);
                    last = q;
                }
                None => became_untestable = true,
            }
        }
    }
}
