//! Property tests of the early-stop sequencer: backend
//! decision-exactness under the visibility protocol, the min-samples /
//! checkpoint-lattice invariants, and the empirical type I/II drift
//! budgets on seeded fleets drawn from the process model the
//! statistical rules are calibrated against.

use bist_adc::flash::FlashConfig;
use bist_adc::noise::NoiseConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::{Resolution, Volts};
use bist_adc::Adc;
use bist_core::backend::{Backend, BehavioralBackend, RtlBackend};
use bist_core::config::BistConfig;
use bist_core::dynamic::{DynamicConfig, DynamicVerdict};
use bist_core::harness::BistVerdict;
use bist_core::screener::{Screener, Workload};
use bist_core::sequencer::{SeqDecision, SeqOutcome, SequencerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn static_config(counter_bits: u32, deglitch: bool) -> BistConfig {
    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(counter_bits)
        .deglitch(deglitch)
        .build()
        .expect("paper operating points are valid")
}

/// One sequenced static sweep through the `Screener` front door with an
/// explicit backend — the narrowest harness for latch-point equivalence.
fn seq_static<B: Backend>(
    backend: B,
    adc: &impl Adc,
    config: &BistConfig,
    policy: SequencerConfig,
    noise: &NoiseConfig,
    seed: u64,
) -> SeqOutcome<BistVerdict> {
    let mut screener = Screener::new(Workload::static_ramp(*config).with_noise(*noise))
        .backend(backend)
        .sequencer(policy);
    *screener
        .screen_one(adc, &mut StdRng::seed_from_u64(seed))
        .as_static()
        .expect("static workload")
}

/// The unsequenced full static sweep the early stops are drifted against.
fn full_static(adc: &impl Adc, config: &BistConfig, noise: &NoiseConfig, seed: u64) -> BistVerdict {
    let mut screener = Screener::new(Workload::static_ramp(*config).with_noise(*noise));
    screener
        .screen_one(adc, &mut StdRng::seed_from_u64(seed))
        .as_static()
        .expect("static workload")
        .verdict
}

/// [`seq_static`]'s dynamic-record counterpart.
fn seq_dyn<B: Backend>(
    backend: B,
    adc: &impl Adc,
    config: &DynamicConfig,
    policy: SequencerConfig,
    noise: &NoiseConfig,
    seed: u64,
) -> SeqOutcome<DynamicVerdict> {
    let mut screener = Screener::new(Workload::dynamic_sine(*config).with_noise(*noise))
        .backend(backend)
        .sequencer(policy);
    *screener
        .screen_one(adc, &mut StdRng::seed_from_u64(seed))
        .as_dynamic()
        .expect("dynamic workload")
}

/// Asserts an early decision respects the policy's lattice: no stop
/// before `min_samples`, and every stop on a checkpoint.
fn assert_on_lattice(decision: SeqDecision, policy: &SequencerConfig, dynamic: bool) {
    if let Some(at) = decision.at_sample() {
        assert!(
            at >= policy.min_samples,
            "decision at {at} violates min_samples {}",
            policy.min_samples
        );
        let anchor = if dynamic {
            // Dynamic checkpoints land on block boundaries.
            0
        } else {
            policy.min_samples
        };
        assert_eq!(
            (at - anchor) % policy.check_interval,
            0,
            "decision at {at} off the checkpoint lattice"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random flash devices, counter widths, deglitch and noise: both
    /// sequenced backends latch the identical decision at the identical
    /// sample index with identical verdict counters, and the policy's
    /// min-samples floor and checkpoint lattice are never violated.
    #[test]
    fn sequenced_backends_latch_identically_static(
        seed in 0u64..1_000_000,
        counter_bits in 4u32..=7,
        deglitch in any::<bool>(),
        noisy in any::<bool>(),
        min_samples in 64u64..512,
        check_interval in 16u64..128,
    ) {
        let config = static_config(counter_bits, deglitch);
        let policy = SequencerConfig {
            min_samples,
            check_interval,
            ..Default::default()
        };
        let noise = if noisy {
            NoiseConfig::noiseless().with_transition_noise(0.004)
        } else {
            NoiseConfig::noiseless()
        };
        let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(seed));
        let b = seq_static(BehavioralBackend, &adc, &config, policy, &noise, seed ^ 0xabc);
        let r = seq_static(RtlBackend::new(), &adc, &config, policy, &noise, seed ^ 0xabc);
        prop_assert_eq!(b.decision, r.decision);
        prop_assert_eq!(b.verdict, r.verdict);
        prop_assert_eq!(b.accepted(), r.accepted());
        assert_on_lattice(b.decision, &policy, false);
    }

    /// Same contract on the dynamic workload: the sequencer owns its
    /// statistic, so the decision is backend-independent, and on an
    /// early stop both backends report the same consumed-sample count.
    #[test]
    fn sequenced_backends_latch_identically_dynamic(
        seed in 0u64..1_000_000,
        sigma_milli in 0u32..300,
        min_samples in 128u64..768,
    ) {
        let config = DynamicConfig::paper_default();
        let policy = SequencerConfig {
            min_samples,
            check_interval: 64,
            ..Default::default()
        };
        let adc = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_width_sigma_lsb(sigma_milli as f64 / 1000.0)
            .sample(&mut StdRng::seed_from_u64(seed));
        let noise = NoiseConfig::noiseless().with_input_noise(0.002);
        let b = seq_dyn(BehavioralBackend, &adc, &config, policy, &noise, seed ^ 0xdef);
        let r = seq_dyn(RtlBackend::new(), &adc, &config, policy, &noise, seed ^ 0xdef);
        prop_assert_eq!(b.decision, r.decision);
        prop_assert_eq!(b.accepted(), r.accepted());
        prop_assert_eq!(b.samples_consumed(), r.samples_consumed());
        assert_on_lattice(b.decision, &policy, true);
    }

    /// A sweep that never reaches `min_samples` worth of checkpoints
    /// must run to completion and reproduce the plain full-sweep
    /// verdict bit-for-bit on both backends.
    #[test]
    fn late_min_samples_reduces_to_full_sweep(
        seed in 0u64..100_000,
        counter_bits in 4u32..=7,
    ) {
        let config = static_config(counter_bits, false);
        let policy = SequencerConfig {
            min_samples: 10_000_000,
            ..Default::default()
        };
        let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(seed));
        let noise = NoiseConfig::noiseless();
        let full = full_static(&adc, &config, &noise, seed);
        for run_rtl in [false, true] {
            let out = if run_rtl {
                seq_static(RtlBackend::new(), &adc, &config, policy, &noise, seed)
            } else {
                seq_static(BehavioralBackend, &adc, &config, policy, &noise, seed)
            };
            prop_assert_eq!(out.decision, SeqDecision::Continue);
            prop_assert_eq!(out.verdict, full);
        }
    }
}

/// Empirical drift harness: screens a seeded fleet with the sequencer
/// and counts disagreements with the full-sweep verdict. Two persistent
/// screeners — one sequenced, one not — reuse their scratches across
/// the fleet exactly like a production screening loop.
fn static_drift(
    policy: &SequencerConfig,
    sigma: f64,
    devices: usize,
    seed: u64,
) -> (u64, u64, u64) {
    use bist_core::analytic::WidthDistribution;
    use bist_mc_free::iid_transfer;
    let config = static_config(6, false);
    let dist = WidthDistribution::new(1.0, sigma);
    let mut full_screener = Screener::new(Workload::static_ramp(config));
    let mut seq_screener = Screener::new(Workload::static_ramp(config)).sequencer(*policy);
    let (mut good, mut drift_i, mut drift_ii) = (0u64, 0u64, 0u64);
    for i in 0..devices {
        let tf = iid_transfer(&dist, &mut StdRng::seed_from_u64(seed ^ (i as u64) << 3));
        let full = full_screener
            .screen_one(&tf, &mut StdRng::seed_from_u64(seed ^ 0x77))
            .as_static()
            .expect("static workload")
            .verdict;
        let out = *seq_screener
            .screen_one(&tf, &mut StdRng::seed_from_u64(seed ^ 0x77))
            .as_static()
            .expect("static workload");
        assert!(
            out.decision.at_sample().unwrap_or(policy.min_samples) >= policy.min_samples,
            "min_samples violated"
        );
        if full.accepted() {
            good += 1;
            drift_i += u64::from(!out.accepted());
        } else {
            drift_ii += u64::from(out.accepted());
        }
    }
    (good, drift_i, drift_ii)
}

/// Minimal iid-width device builder (duplicated from `bist-mc`, which
/// this crate cannot depend on without a cycle).
mod bist_mc_free {
    use bist_adc::transfer::TransferFunction;
    use bist_adc::types::{Resolution, Volts};
    use bist_core::analytic::WidthDistribution;
    use rand::Rng;

    pub fn iid_transfer<R: Rng>(dist: &WidthDistribution, rng: &mut R) -> TransferFunction {
        let q = 0.1;
        let n = Resolution::SIX_BIT.transition_count() as usize;
        let mut t = Vec::with_capacity(n);
        t.push(q);
        for _ in 1..n {
            let g: f64 = {
                // Box-Muller-ish via two uniforms (accuracy is
                // irrelevant — any fixed law works for the drift test).
                let u: f64 = rng.gen_range(1e-12..1.0);
                let v: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                (-2.0 * u.ln()).sqrt() * v.cos()
            };
            let w = (dist.mean() + dist.sigma() * g).max(0.0);
            t.push(t.last().unwrap() + w * q);
        }
        TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t)
    }
}

#[test]
fn empirical_static_drift_within_budgets() {
    // A fleet from the calibrated process model: the sequenced decision
    // may disagree with the full sweep at most alpha (on good devices)
    // / beta (on bad devices), with binomial slack for the finite
    // sample. At the default 1e-3 budgets and 400 devices the expected
    // drift count is < 1, so "within budget" means essentially zero.
    let policy = SequencerConfig::default();
    for sigma in [0.1, 0.21] {
        let (good, drift_i, drift_ii) = static_drift(&policy, sigma, 400, 97);
        let bad = 400 - good;
        let allow = |budget: f64, n: u64| {
            (budget * n as f64 + 3.0 * (budget * n as f64).sqrt()).ceil() as u64
        };
        assert!(
            drift_i <= allow(policy.alpha, good),
            "σ {sigma}: type I drift {drift_i}/{good} exceeds alpha {}",
            policy.alpha
        );
        assert!(
            drift_ii <= allow(policy.beta, bad),
            "σ {sigma}: type II drift {drift_ii}/{bad} exceeds beta {}",
            policy.beta
        );
    }
}

#[test]
fn empirical_dynamic_drift_within_budgets() {
    let policy = SequencerConfig {
        min_samples: 256,
        ..Default::default()
    };
    let config = DynamicConfig::paper_default();
    let mut full_screener = Screener::new(Workload::dynamic_sine(config));
    let mut seq_screener = Screener::new(Workload::dynamic_sine(config)).sequencer(policy);
    let (mut good, mut bad, mut drift_i, mut drift_ii) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..300u64 {
        // σ spread straddling the acceptance boundary.
        let sigma = 0.05 + 0.40 * (i as f64 / 300.0);
        let adc = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_width_sigma_lsb(sigma)
            .sample(&mut StdRng::seed_from_u64(1000 + i));
        let full = full_screener
            .screen_one(&adc, &mut StdRng::seed_from_u64(2000 + i))
            .as_dynamic()
            .expect("dynamic workload")
            .verdict;
        let out = *seq_screener
            .screen_one(&adc, &mut StdRng::seed_from_u64(2000 + i))
            .as_dynamic()
            .expect("dynamic workload");
        if full.accepted() {
            good += 1;
            drift_i += u64::from(!out.accepted());
        } else {
            bad += 1;
            drift_ii += u64::from(out.accepted());
        }
    }
    assert!(
        good > 50 && bad > 50,
        "sweep must straddle the boundary ({good}/{bad})"
    );
    let allow =
        |budget: f64, n: u64| (budget * n as f64 + 3.0 * (budget * n as f64).sqrt()).ceil() as u64;
    assert!(
        drift_i <= allow(policy.alpha, good),
        "type I drift {drift_i}/{good}"
    );
    assert!(
        drift_ii <= allow(policy.beta, bad),
        "type II drift {drift_ii}/{bad}"
    );
}
