//! Property-based equivalence of the lane-parallel SoA batch engines
//! against the scalar reference: for any fleet size, lane width, noise
//! setting, and refill order, `Screener::run` (and the raw
//! `StaticBatch`/`DynBatch` drivers) must produce reports bit-exact to
//! `Screener::screen_one` on the same devices with the same per-device
//! RNG streams — including the sequencer's latch points
//! (`SeqDecision`), not just the final verdicts.

use bist_adc::flash::{FlashAdc, FlashConfig};
use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_core::backend::BehavioralBackend;
use bist_core::batch::{BatchDevice, DynBatch, StaticBatch};
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::screener::{ScreenVerdict, Screener, Workload};
use bist_core::sequencer::SequencerConfig;
use bist_core::source::{SourceSpec, Zoo};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small mismatched-flash fleet; the devices (and their RNG streams)
/// are a pure function of `seed`, so scalar and batched runs screen
/// identical populations.
fn fleet(seed: u64, n: usize) -> Vec<FlashAdc> {
    let cfg = FlashConfig::paper_device();
    (0..n)
        .map(|i| {
            cfg.sample(&mut StdRng::seed_from_u64(
                seed ^ (i as u64).wrapping_mul(0x9e37),
            ))
        })
        .collect()
}

fn device_rng(seed: u64, i: usize) -> StdRng {
    StdRng::seed_from_u64(seed.rotate_left(17) ^ i as u64)
}

fn static_config(counter_bits: u32) -> BistConfig {
    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(counter_bits)
        .build()
        .expect("valid paper-range counter")
}

/// A short coherent record keeps each proptest case cheap while still
/// exercising the Goertzel bank, the LUT rank path and lane pairing.
fn dyn_config() -> DynamicConfig {
    DynamicConfig::new(Resolution::SIX_BIT, 512, 127).expect("coherent short record")
}

/// Scalar reference verdicts, one `screen_one` per device.
fn scalar_verdicts(
    workload: Workload,
    sequenced: bool,
    devices: &[FlashAdc],
    seed: u64,
) -> Vec<ScreenVerdict> {
    let mut screener = Screener::new(workload);
    if sequenced {
        screener = screener.sequencer(SequencerConfig::default());
    }
    devices
        .iter()
        .enumerate()
        .map(|(i, adc)| screener.screen_one(adc, &mut device_rng(seed, i)))
        .collect()
}

/// Batched verdicts through the `Screener::run` front door.
fn batched_verdicts(
    workload: Workload,
    sequenced: bool,
    lanes: usize,
    devices: &[FlashAdc],
    seed: u64,
) -> Vec<(usize, ScreenVerdict)> {
    let mut screener = Screener::new(workload).lane_width(lanes);
    if sequenced {
        screener = screener.sequencer(SequencerConfig::default());
    }
    screener
        .run(
            devices
                .iter()
                .enumerate()
                .map(|(i, adc)| (adc, device_rng(seed, i))),
        )
        .into_iter()
        .map(|r| (r.device, r.verdict))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Static workload: any fleet size × lane width × counter size ×
    /// sequencing choice gives reports bit-exact to the scalar engine.
    #[test]
    fn static_batched_matches_scalar(
        seed in any::<u64>(),
        n in 1usize..10,
        lanes in 1usize..9,
        counter_bits in 4u32..7,
        sequenced in any::<bool>(),
    ) {
        let devices = fleet(seed, n);
        let workload = Workload::static_ramp(static_config(counter_bits));
        let scalar = scalar_verdicts(workload, sequenced, &devices, seed);
        let batched = batched_verdicts(workload, sequenced, lanes, &devices, seed);
        prop_assert_eq!(batched.len(), n);
        for (i, (device, verdict)) in batched.into_iter().enumerate() {
            prop_assert_eq!(device, i);
            prop_assert_eq!(verdict, scalar[i]);
        }
    }

    /// Dynamic workload: the shared-stimulus table, LUT rank and FMA
    /// pair kernel never change a verdict or a latch point.
    #[test]
    fn dynamic_batched_matches_scalar(
        seed in any::<u64>(),
        n in 1usize..7,
        lanes in 1usize..6,
        sequenced in any::<bool>(),
    ) {
        let devices = fleet(seed, n);
        let workload = Workload::dynamic_sine(dyn_config());
        let scalar = scalar_verdicts(workload, sequenced, &devices, seed);
        let batched = batched_verdicts(workload, sequenced, lanes, &devices, seed);
        prop_assert_eq!(batched.len(), n);
        for (i, (device, verdict)) in batched.into_iter().enumerate() {
            prop_assert_eq!(device, i);
            prop_assert_eq!(verdict, scalar[i]);
        }
    }

    /// Worker pool: sharding the fleet across a work-stealing pool of
    /// any size, with any chunk size and lane width, on either workload
    /// with or without a sequencer, is bit-exact to the scalar engine —
    /// which worker screens a device cannot change its report.
    #[test]
    fn pooled_matches_scalar_for_any_worker_count(
        seed in any::<u64>(),
        n in 1usize..16,
        lanes in 1usize..5,
        workers in 1usize..17,
        chunk in 1usize..10,
        sequenced in any::<bool>(),
        dynamic in any::<bool>(),
    ) {
        let devices = fleet(seed, n);
        let workload = if dynamic {
            Workload::dynamic_sine(dyn_config())
        } else {
            Workload::static_ramp(static_config(5))
        };
        let scalar = scalar_verdicts(workload, sequenced, &devices, seed);
        let mut screener = Screener::new(workload)
            .lane_width(lanes)
            .workers(workers)
            .chunk_size(chunk);
        if sequenced {
            screener = screener.sequencer(SequencerConfig::default());
        }
        let pooled = screener.run(
            devices
                .iter()
                .enumerate()
                .map(|(i, adc)| (adc, device_rng(seed, i))),
        );
        prop_assert_eq!(pooled.len(), n);
        for (i, report) in pooled.into_iter().enumerate() {
            prop_assert_eq!(report.device, i);
            prop_assert_eq!(report.verdict, scalar[i]);
        }
    }

    /// Refill order: pushing the fleet in arbitrarily-sized waves with
    /// `run_batched` between waves (lanes refill mid-flight, reports
    /// accumulate across calls) matches the scalar engine.
    #[test]
    fn static_refill_order_is_irrelevant(
        seed in any::<u64>(),
        n in 1usize..12,
        lanes in 1usize..5,
        split in 0usize..12,
        sequenced in any::<bool>(),
    ) {
        let split = split.min(n);
        let devices = fleet(seed, n);
        let config = static_config(4);
        let scalar =
            scalar_verdicts(Workload::static_ramp(config), sequenced, &devices, seed);

        let mut batch = StaticBatch::new(config).with_lane_width(lanes);
        if sequenced {
            batch = batch.with_sequencer(SequencerConfig::default());
        }
        for (i, adc) in devices.iter().enumerate().take(split) {
            batch.push(BatchDevice::new(i, adc, device_rng(seed, i)));
        }
        batch.run_batched();
        for (i, adc) in devices.iter().enumerate().skip(split) {
            batch.push(BatchDevice::new(i, adc, device_rng(seed, i)));
        }
        batch.run_batched();
        let reports = batch.take_reports();
        prop_assert_eq!(reports.len(), n);
        for (i, report) in reports.into_iter().enumerate() {
            prop_assert_eq!(report.device, i);
            prop_assert_eq!(ScreenVerdict::Static(report.outcome), scalar[i]);
        }
    }

    /// Same refill property for the dynamic engine, and `run_scalar`
    /// through the raw batch driver agrees with `screen_one` too.
    #[test]
    fn dynamic_refill_order_is_irrelevant(
        seed in any::<u64>(),
        n in 1usize..7,
        lanes in 1usize..5,
        split in 0usize..7,
        sequenced in any::<bool>(),
    ) {
        let split = split.min(n);
        let devices = fleet(seed, n);
        let config = dyn_config();
        let scalar =
            scalar_verdicts(Workload::dynamic_sine(config), sequenced, &devices, seed);

        let mut batch = DynBatch::new(config).with_lane_width(lanes);
        if sequenced {
            batch = batch.with_sequencer(SequencerConfig::default());
        }
        for (i, adc) in devices.iter().enumerate().take(split) {
            batch.push(BatchDevice::new(i, adc, device_rng(seed, i)));
        }
        batch.run_batched();
        for (i, adc) in devices.iter().enumerate().skip(split) {
            batch.push(BatchDevice::new(i, adc, device_rng(seed, i)));
        }
        batch.run_batched();
        let reports = batch.take_reports();
        prop_assert_eq!(reports.len(), n);
        for (i, report) in reports.iter().enumerate() {
            prop_assert_eq!(report.device, i);
            prop_assert_eq!(ScreenVerdict::Dynamic(report.outcome), scalar[i]);
        }

        let mut raw = DynBatch::new(config).with_lane_width(lanes);
        if sequenced {
            raw = raw.with_sequencer(SequencerConfig::default());
        }
        for (i, adc) in devices.iter().enumerate() {
            raw.push(BatchDevice::new(i, adc, device_rng(seed, i)));
        }
        raw.run_scalar(&mut BehavioralBackend);
        prop_assert_eq!(raw.take_reports(), reports);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Architecture mixes through the zoo seam: any non-empty subset of
    /// {flash, iid, SAR, pipeline} × fleet size × lane width × worker
    /// count, on either workload with or without a sequencer, screens
    /// bit-exact to `screen_one` over the same zoo devices and noise
    /// streams — latch points included. Which architecture a device is,
    /// and which lane or worker it lands on, cannot change its report.
    #[test]
    fn zoo_mixes_match_scalar_for_any_workers_and_lanes(
        seed in any::<u64>(),
        mask in 1u8..16,
        n in 1usize..12,
        lanes in 1usize..6,
        workers in 1usize..9,
        sequenced in any::<bool>(),
        dynamic in any::<bool>(),
    ) {
        let sources: Vec<SourceSpec> = [
            SourceSpec::paper_flash(),
            SourceSpec::paper_iid(),
            SourceSpec::paper_sar(),
            SourceSpec::paper_pipeline(),
        ]
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| s)
        .collect();
        let zoo = Zoo::new(sources).with_seed(seed);
        let workload = if dynamic {
            Workload::dynamic_sine(dyn_config())
        } else {
            Workload::static_ramp(static_config(5))
        };

        let mut scalar_screener = Screener::new(workload);
        if sequenced {
            scalar_screener = scalar_screener.sequencer(SequencerConfig::default());
        }
        let scalar: Vec<ScreenVerdict> = (0..n)
            .map(|i| scalar_screener.screen_one(&zoo.device(i), &mut zoo.noise_rng(i)))
            .collect();

        let mut screener = Screener::new(workload).lane_width(lanes).workers(workers);
        if sequenced {
            screener = screener.sequencer(SequencerConfig::default());
        }
        let reports = screener.run(zoo.fleet(n));
        prop_assert_eq!(reports.len(), n);
        for (i, report) in reports.into_iter().enumerate() {
            prop_assert_eq!(report.device, i);
            prop_assert_eq!(&report.verdict, &scalar[i]);
        }
    }
}
