//! On-chip offset and gain estimation from the same LSB-monitor sweep.
//!
//! §2 lists the static parameters as "offset voltage, gain, DNL and
//! INL". DNL/INL come from the count window; this module shows the same
//! sweep also yields offset and gain with no extra analog hardware:
//!
//! * **offset** — the sample index of the *first* LSB transition marks
//!   where the ramp crossed `T[1]`; against the ideal crossing index it
//!   gives the offset error in LSB.
//! * **gain** — the total sample count between the first and last
//!   transitions measures `T[2ⁿ−1] − T[1]`; against its ideal span it
//!   gives the gain error in LSB.

use crate::config::BistConfig;
use bist_adc::types::Lsb;
use std::fmt;

/// Offset/gain estimates from one monitored sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticEstimate {
    /// Offset error in LSB (deviation of the first transition).
    pub offset_lsb: Lsb,
    /// Gain error in LSB (deviation of the first-to-last transition
    /// span).
    pub gain_lsb: Lsb,
    /// Number of transitions observed.
    pub transitions: usize,
}

impl fmt::Display for StaticEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offset {:+.3} LSB, gain {:+.3} LSB ({} transitions)",
            self.offset_lsb.0, self.gain_lsb.0, self.transitions
        )
    }
}

/// Estimates offset and gain from the monitored-bit stream of a ramp
/// sweep.
///
/// `ramp_start_lsb` is the ramp voltage at sample 0, expressed in LSB
/// relative to the converter's low reference (the harness starts 2 LSB
/// below, i.e. −2.0).
///
/// Returns `None` when fewer than two transitions are visible.
///
/// # Examples
///
/// ```
/// use bist_adc::spec::LinearitySpec;
/// use bist_adc::types::Resolution;
/// use bist_core::config::BistConfig;
/// use bist_core::static_params::estimate_offset_gain;
///
/// # fn main() -> Result<(), bist_core::limits::PlanLimitsError> {
/// let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
///     .counter_bits(6)
///     .build()?;
/// // An ideal 8-code stream starting at the low reference (0 LSB):
/// // each code occupies one LSB, so the first transition sits at +1 LSB.
/// let ds = cfg.delta_s().0;
/// let samples_per_lsb = (1.0 / ds).round() as usize;
/// let mut stream = Vec::new();
/// for code in 0..8 {
///     stream.extend(std::iter::repeat(code % 2 == 1).take(samples_per_lsb));
/// }
/// let est = estimate_offset_gain(&cfg, &stream, 0.0).expect("transitions visible");
/// assert!(est.offset_lsb.0.abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn estimate_offset_gain(
    config: &BistConfig,
    stream: &[bool],
    ramp_start_lsb: f64,
) -> Option<StaticEstimate> {
    let ds = config.delta_s().0;
    let mut transitions = Vec::new();
    let mut level = *stream.first()?;
    for (i, &bit) in stream.iter().enumerate() {
        if bit != level {
            transitions.push(i);
            level = bit;
        }
    }
    if transitions.len() < 2 {
        return None;
    }
    let first = transitions[0];
    let last = *transitions.last().expect("non-empty");

    // Voltage (in LSB above `low`) at the first transition: the ramp
    // reached it between samples first−1 and first; mid-estimate.
    let v_first = ramp_start_lsb + (first as f64 - 0.5) * ds;
    // Ideal: T[1] is one LSB above low, shifted by the monitored bit's
    // granularity (bit b's first transition is at code 2^b's edge).
    let granularity = (1u64 << config.monitored_bit()) as f64;
    let ideal_first = granularity;
    let offset = v_first - ideal_first;

    // Span between first and last observed transitions.
    let span = (last - first) as f64 * ds;
    let n_transitions = transitions.len() as f64;
    let ideal_span = (n_transitions - 1.0) * granularity;
    let gain = span - ideal_span;

    Some(StaticEstimate {
        offset_lsb: Lsb(offset),
        gain_lsb: Lsb(gain),
        transitions: transitions.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_adc::sampler::acquire;
    use bist_adc::sampler::SamplingConfig;
    use bist_adc::signal::Ramp;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::transfer::TransferFunction;
    use bist_adc::types::{Resolution, Volts};

    fn config() -> BistConfig {
        BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(6)
            .build()
            .expect("paper operating point")
    }

    /// Captures the LSB stream of a ramp over `adc`, starting 2 LSB low.
    fn sweep(adc: &TransferFunction, cfg: &BistConfig) -> Vec<bool> {
        let lsb = 0.1;
        let slope = cfg.delta_s().0 * lsb * 1.0e6;
        let samples = ((6.4 + 1.2) / slope * 1.0e6) as usize;
        acquire(
            adc,
            &Ramp::new(Volts(-0.2), slope),
            SamplingConfig::new(1.0e6, samples),
        )
        .bits(0)
        .collect()
    }

    #[test]
    fn ideal_device_zero_offset_gain() {
        let cfg = config();
        let adc = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        let est = estimate_offset_gain(&cfg, &sweep(&adc, &cfg), -2.0).expect("transitions");
        assert_eq!(est.transitions, 63);
        assert!(est.offset_lsb.0.abs() < 0.05, "offset {}", est.offset_lsb);
        assert!(est.gain_lsb.0.abs() < 0.05, "gain {}", est.gain_lsb);
    }

    #[test]
    fn detects_offset_error() {
        let cfg = config();
        let adc = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_offset(Volts(0.05)); // +0.5 LSB
        let est = estimate_offset_gain(&cfg, &sweep(&adc, &cfg), -2.0).expect("transitions");
        assert!(
            (est.offset_lsb.0 - 0.5).abs() < 0.05,
            "offset {}",
            est.offset_lsb
        );
        assert!(est.gain_lsb.0.abs() < 0.05);
    }

    #[test]
    fn detects_gain_error() {
        let cfg = config();
        let adc =
            TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_gain(1.02); // span stretches 2 %: 62 LSB → +1.24 LSB
        let est = estimate_offset_gain(&cfg, &sweep(&adc, &cfg), -2.0).expect("transitions");
        assert!((est.gain_lsb.0 - 1.24).abs() < 0.1, "gain {}", est.gain_lsb);
    }

    #[test]
    fn too_few_transitions_is_none() {
        let cfg = config();
        assert!(estimate_offset_gain(&cfg, &[], -2.0).is_none());
        assert!(estimate_offset_gain(&cfg, &[false; 100], -2.0).is_none());
        let one_edge: Vec<bool> = std::iter::repeat_n(false, 50)
            .chain(std::iter::repeat_n(true, 50))
            .collect();
        assert!(estimate_offset_gain(&cfg, &one_edge, -2.0).is_none());
    }

    #[test]
    fn display_mentions_offset() {
        let est = StaticEstimate {
            offset_lsb: Lsb(0.1),
            gain_lsb: Lsb(-0.2),
            transitions: 63,
        };
        assert!(est.to_string().contains("offset"));
    }
}
