//! BIST configuration: ties together the spec, the counter size and the
//! ramp operating point.

use crate::limits::{plan_delta_s, CountLimits, PlanLimitsError};
use bist_adc::spec::LinearitySpec;
use bist_adc::types::{Lsb, Resolution};
use std::error::Error;
use std::fmt;

/// The one configuration-validation error shared by every builder in the
/// subsystem: [`crate::sequencer::SequencerConfig`] policies,
/// [`crate::dynamic::DynamicConfig`] plans and the experiment-level
/// checks all fail through this enum, so callers match one type instead
/// of three per-module conventions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A static count-limit planning error (counter too small, empty
    /// window) from [`BistConfigBuilder::build`].
    StaticPlan(PlanLimitsError),
    /// Sequencer `alpha` must lie strictly inside (0, 1).
    BadAlpha(f64),
    /// Sequencer `beta` must lie strictly inside (0, 1).
    BadBeta(f64),
    /// Sequencer `min_samples` must be at least 1.
    BadMinSamples,
    /// Sequencer `check_interval` must be at least 1.
    BadCheckInterval,
    /// The dynamic fundamental must land strictly between DC and
    /// Nyquist.
    FundamentalOutOfRange {
        /// Requested cycles per record.
        cycles: u32,
        /// Record length in samples.
        record_len: usize,
    },
    /// The fixed-point RTL datapath cannot guarantee this dynamic plan
    /// (a resonator's worst-case excursion overflows its register). The
    /// behavioural bank could evaluate it, but the subsystem's contract
    /// is that every valid plan is judged by *either* backend, so the
    /// plan is rejected up front.
    FixedPointUnrealisable(bist_rtl::dyn_top::RegisterOverflowError),
    /// The functional check needs at least one bit above the monitored
    /// bit; this configuration monitors too high a bit for the
    /// resolution.
    UnmonitorableBit {
        /// The configured monitored bit index.
        monitored_bit: u32,
        /// The converter resolution in bits.
        bits: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::StaticPlan(e) => write!(f, "{e}"),
            ConfigError::BadAlpha(a) => {
                write!(f, "alpha must be strictly inside (0, 1), got {a}")
            }
            ConfigError::BadBeta(b) => {
                write!(f, "beta must be strictly inside (0, 1), got {b}")
            }
            ConfigError::BadMinSamples => write!(f, "min_samples must be at least 1"),
            ConfigError::BadCheckInterval => write!(f, "check_interval must be at least 1"),
            ConfigError::FundamentalOutOfRange { cycles, record_len } => write!(
                f,
                "fundamental at {cycles} cycles must lie strictly between DC and Nyquist \
                 of a {record_len}-sample record"
            ),
            ConfigError::FixedPointUnrealisable(e) => {
                write!(f, "plan is unrealisable in the fixed-point datapath: {e}")
            }
            ConfigError::UnmonitorableBit {
                monitored_bit,
                bits,
            } => write!(
                f,
                "no upper bit above monitored bit {monitored_bit} of a {bits}-bit converter"
            ),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::StaticPlan(e) => Some(e),
            ConfigError::FixedPointUnrealisable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanLimitsError> for ConfigError {
    fn from(e: PlanLimitsError) -> Self {
        ConfigError::StaticPlan(e)
    }
}

/// Complete configuration of a static-linearity BIST run.
///
/// Build with [`BistConfig::builder`]; the builder derives the count
/// limits (Eqs. 3–4) and validates them against the counter width.
///
/// # Examples
///
/// ```
/// use bist_adc::spec::LinearitySpec;
/// use bist_adc::types::Resolution;
/// use bist_core::config::BistConfig;
///
/// # fn main() -> Result<(), bist_core::limits::PlanLimitsError> {
/// // The paper's Table 1 measurement point: 4-bit counter, ±0.5 LSB.
/// let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
///     .counter_bits(4)
///     .build()?;
/// assert_eq!(cfg.limits().i_max(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BistConfig {
    resolution: Resolution,
    spec: LinearitySpec,
    counter_bits: u32,
    delta_s: Lsb,
    limits: CountLimits,
    inl_limit_counts: Option<u64>,
    deglitch: bool,
    monitored_bit: u32,
}

/// Builder for [`BistConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BistConfigBuilder {
    resolution: Resolution,
    spec: LinearitySpec,
    counter_bits: u32,
    delta_s: Option<Lsb>,
    inl_from_spec: bool,
    deglitch: bool,
    monitored_bit: u32,
}

impl BistConfig {
    /// Starts a builder with the paper's defaults: 4-bit counter, Δs
    /// planned to fill the counter, INL checking per the spec, no
    /// deglitcher, bit 0 monitored.
    pub fn builder(resolution: Resolution, spec: LinearitySpec) -> BistConfigBuilder {
        BistConfigBuilder {
            resolution,
            spec,
            counter_bits: 4,
            delta_s: None,
            inl_from_spec: true,
            deglitch: false,
            monitored_bit: 0,
        }
    }

    /// The converter resolution under test.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The linearity spec being screened.
    pub fn spec(&self) -> &LinearitySpec {
        &self.spec
    }

    /// The on-chip counter width in bits.
    pub fn counter_bits(&self) -> u32 {
        self.counter_bits
    }

    /// The voltage step between samples, in LSB (Eq. 5).
    pub fn delta_s(&self) -> Lsb {
        self.delta_s
    }

    /// The derived count limits (Eqs. 3–4).
    pub fn limits(&self) -> &CountLimits {
        &self.limits
    }

    /// The INL window in counter units, if INL checking is enabled.
    pub fn inl_limit_counts(&self) -> Option<u64> {
        self.inl_limit_counts
    }

    /// Whether the LSB deglitch filter is enabled.
    pub fn deglitch(&self) -> bool {
        self.deglitch
    }

    /// The monitored bit index (0 = LSB; `q − 1` in paper terms).
    pub fn monitored_bit(&self) -> u32 {
        self.monitored_bit
    }

    /// Expected number of complete measurements from one full ramp
    /// sweep: bit `b` toggles every `2^b` codes, giving `2^(n−b)` runs
    /// of which the first and last are partial — `2^(n−b) − 2` complete.
    /// For the paper's full BIST (bit 0, 6 bits) this is 62, one per
    /// inner code.
    pub fn expected_measurements(&self) -> u64 {
        (u64::from(self.resolution.code_count()) >> self.monitored_bit).saturating_sub(2)
    }

    /// Checks that the functional path can judge this configuration:
    /// there must be at least one bit above the monitored bit for the
    /// upper-word increment check (the RTL top asserts the same bound).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnmonitorableBit`] otherwise.
    pub fn validate_monitorable(&self) -> Result<(), ConfigError> {
        let bits = self.resolution.bits();
        if self.monitored_bit + 2 > bits {
            return Err(ConfigError::UnmonitorableBit {
                monitored_bit: self.monitored_bit,
                bits,
            });
        }
        Ok(())
    }

    /// The RTL datapath configuration equivalent to this config.
    pub fn to_rtl(&self) -> bist_rtl::datapath::LsbProcessorConfig {
        bist_rtl::datapath::LsbProcessorConfig {
            counter_bits: self.counter_bits,
            i_min: self.limits.i_min(),
            i_max: self.limits.i_max(),
            i_ideal: self.limits.i_ideal(),
            inl_limit_counts: self.inl_limit_counts,
            deglitch: self.deglitch,
        }
    }
}

impl fmt::Display for BistConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BIST {} {}: {}-bit counter, Δs {:.5} LSB, {}",
            self.resolution, self.spec, self.counter_bits, self.delta_s.0, self.limits
        )
    }
}

impl BistConfigBuilder {
    /// Sets the counter width (the paper sweeps 4–7).
    pub fn counter_bits(mut self, bits: u32) -> Self {
        self.counter_bits = bits;
        self
    }

    /// Overrides the step size Δs in LSB (default: planned so
    /// `i_max = 2^counter_bits`).
    pub fn delta_s(mut self, delta_s: Lsb) -> Self {
        self.delta_s = Some(delta_s);
        self
    }

    /// Enables or disables INL window checking (enabled by default when
    /// the spec carries an INL limit).
    pub fn check_inl(mut self, enable: bool) -> Self {
        self.inl_from_spec = enable;
        self
    }

    /// Inserts the majority-vote deglitcher in the monitored-bit path.
    pub fn deglitch(mut self, enable: bool) -> Self {
        self.deglitch = enable;
        self
    }

    /// Monitors bit `index` instead of the LSB (partial BIST with
    /// `q = index + 1`).
    pub fn monitored_bit(mut self, index: u32) -> Self {
        self.monitored_bit = index;
        self
    }

    /// Builds and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the planning error if the step size yields an empty count
    /// window or overflows the counter.
    pub fn build(self) -> Result<BistConfig, PlanLimitsError> {
        let delta_s = self
            .delta_s
            .unwrap_or_else(|| plan_delta_s(&self.spec, self.counter_bits));
        let limits = CountLimits::from_spec(&self.spec, delta_s.0)?;
        limits.check_counter(self.counter_bits)?;
        let inl_limit_counts = if self.inl_from_spec {
            self.spec
                .inl_limit()
                .map(|l| (l.0 / delta_s.0).floor().max(1.0) as u64)
        } else {
            None
        };
        Ok(BistConfig {
            resolution: self.resolution,
            spec: self.spec,
            counter_bits: self.counter_bits,
            delta_s,
            limits,
            inl_limit_counts,
            deglitch: self.deglitch,
            monitored_bit: self.monitored_bit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_plans_delta_s() {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(4)
            .build()
            .unwrap();
        assert!((cfg.delta_s().0 - 1.5 / 16.5).abs() < 1e-12);
        assert_eq!(cfg.limits().i_max(), 16);
        assert_eq!(cfg.limits().i_min(), 6);
        assert!(!cfg.deglitch());
        assert_eq!(cfg.monitored_bit(), 0);
    }

    #[test]
    fn explicit_delta_s_respected() {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(4)
            .delta_s(Lsb(0.091))
            .build()
            .unwrap();
        assert_eq!(cfg.delta_s().0, 0.091);
        assert_eq!(cfg.limits().i_ideal(), 11);
    }

    #[test]
    fn counter_overflow_is_error() {
        let err = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(4)
            .delta_s(Lsb(0.01)) // i_max = 150 > 16
            .build()
            .unwrap_err();
        assert!(matches!(err, PlanLimitsError::CounterTooSmall { .. }));
    }

    #[test]
    fn inl_limit_derived_from_spec() {
        let spec = LinearitySpec::new(0.5, 1.0);
        let cfg = BistConfig::builder(Resolution::SIX_BIT, spec)
            .counter_bits(4)
            .build()
            .unwrap();
        // INL ±1 LSB at the balanced Δs = 1.5/16.5: floor(16.5/1.5) = 11.
        assert_eq!(cfg.inl_limit_counts(), Some(11));
        let no_inl = BistConfig::builder(Resolution::SIX_BIT, spec)
            .counter_bits(4)
            .check_inl(false)
            .build()
            .unwrap();
        assert_eq!(no_inl.inl_limit_counts(), None);
    }

    #[test]
    fn dnl_only_spec_has_no_inl_window() {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(5)
            .build()
            .unwrap();
        assert_eq!(cfg.inl_limit_counts(), None);
    }

    #[test]
    fn expected_measurements_by_monitored_bit() {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(6)
            .build()
            .unwrap();
        assert_eq!(cfg.expected_measurements(), 62);
        let partial = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(6)
            .monitored_bit(1)
            .build()
            .unwrap();
        assert_eq!(partial.expected_measurements(), 30);
    }

    #[test]
    fn rtl_config_matches() {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(4)
            .deglitch(true)
            .build()
            .unwrap();
        let rtl = cfg.to_rtl();
        assert_eq!(rtl.counter_bits, 4);
        assert_eq!(rtl.i_min, cfg.limits().i_min());
        assert_eq!(rtl.i_max, cfg.limits().i_max());
        assert!(rtl.deglitch);
    }

    #[test]
    fn display_mentions_counter() {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(7)
            .build()
            .unwrap();
        assert!(cfg.to_string().contains("7-bit counter"));
    }
}
