//! The dynamic-test subsystem: streaming SINAD / THD / ENOB /
//! noise-power verdicts through the same fused pipeline and backend
//! seam as the static engine.
//!
//! §2 of the paper names the dynamic parameters — "the Total Harmonic
//! Distortion and the introduced noise power" — as the main test
//! parameters next to the static linearity tests, and advocates "simple
//! digital functions" for on-chip processing. This module is that
//! workload as a first-class citizen of the streaming engine:
//!
//! * **Stimulus** — a coherent full-scale sine ([`plan_sine`]), swept
//!   through the same lazy [`bist_adc::stream::CodeStream`]
//!   acquisition as the static
//!   ramp (noise injection included).
//! * **Accumulation** — a streaming Goertzel bank
//!   ([`bist_dsp::goertzel::GoertzelBank`]): fundamental + aliased
//!   harmonics + Welford total-power moments, so the record is never
//!   materialised. One reusable [`DynScratch`] per worker keeps the
//!   device→verdict hot path allocation-free after warm-up (enforced by
//!   `crates/core/tests/zero_alloc.rs`).
//! * **Verdict** — a compact [`DynamicVerdict`]: the four §2 metrics
//!   judged against configurable [`DynamicLimits`], plus an exact
//!   sample-count completeness check (a truncated record must never
//!   read as a valid measurement).
//! * **Backends** — the verdict stage is pluggable through
//!   [`crate::backend::Backend`]: the behavioural bank, or the
//!   gate-accurate fixed-point `bist_rtl::DynBistTop` clocked one code
//!   per tick. Both derive their metrics through the *same*
//!   [`TonePowers::metrics`] arithmetic, so the only behavioural↔RTL
//!   difference is the RTL's bounded fixed-point quantisation — the
//!   `bist_mc::differential` dynamic fleet sweep demands their
//!   *decisions* agree on every device.

use crate::config::ConfigError;
use crate::harness::SAMPLE_RATE;
use bist_adc::sampler::SamplingConfig;
use bist_adc::signal::SineWave;
use bist_adc::transfer::Adc;
use bist_adc::types::{Code, Resolution};
use bist_dsp::goertzel::{GoertzelBank, ToneMetrics, TonePowers};
use bist_dsp::spectrum::ideal_sinad_db;
use std::fmt;

/// Relative full-scale overdrive of the default dynamic stimulus: the
/// sine slightly over-ranges the converter so the end codes are
/// exercised and clipping stays negligible (the paper-era 4096-sample
/// capture used the same trick).
pub const DEFAULT_OVERDRIVE: f64 = 0.01875;

/// Default number of harmonic orders counted as distortion (matches
/// [`bist_dsp::spectrum::ToneAnalysisConfig`]).
pub const DEFAULT_HARMONICS: usize = 5;

/// Acceptance limits for the dynamic test parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicLimits {
    /// Minimum signal to noise-and-distortion, dB.
    pub min_sinad_db: f64,
    /// Maximum total harmonic distortion, dB (a *less negative* THD is
    /// worse).
    pub max_thd_db: f64,
    /// Minimum effective number of bits.
    pub min_enob: f64,
    /// Maximum introduced noise power, LSB² (the §2 parameter; excludes
    /// DC, carrier and harmonics).
    pub max_noise_power_lsb2: f64,
}

impl DynamicLimits {
    /// Screening limits for an `n`-bit converter: one effective bit of
    /// SINAD/ENOB allowance below ideal, −30 dB THD, and ½ LSB² of
    /// introduced noise (the ideal quantiser contributes 1/12 LSB²).
    pub fn for_resolution(resolution: Resolution) -> Self {
        let bits = resolution.bits() as f64;
        DynamicLimits {
            min_sinad_db: ideal_sinad_db(resolution.bits()) - 6.02,
            max_thd_db: -30.0,
            min_enob: bits - 1.0,
            max_noise_power_lsb2: 0.5,
        }
    }
}

impl fmt::Display for DynamicLimits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SINAD ≥ {:.1} dB, THD ≤ {:.1} dB, ENOB ≥ {:.2}, noise ≤ {:.3} LSB²",
            self.min_sinad_db, self.max_thd_db, self.min_enob, self.max_noise_power_lsb2
        )
    }
}

/// Complete configuration of a dynamic BIST run: the coherent capture
/// plan plus the acceptance limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    resolution: Resolution,
    record_len: usize,
    cycles: u32,
    harmonics: usize,
    overdrive: f64,
    limits: DynamicLimits,
}

impl DynamicConfig {
    /// Creates a dynamic test plan: `record_len` samples with `cycles`
    /// full sine periods in the record (`cycles` odd and coprime with
    /// `record_len` gives best code coverage). Harmonics, overdrive and
    /// limits start at their defaults ([`DEFAULT_HARMONICS`],
    /// [`DEFAULT_OVERDRIVE`], [`DynamicLimits::for_resolution`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the fundamental is not strictly
    /// between DC and Nyquist, or if the fixed-point RTL datapath
    /// cannot guarantee the plan (so both backends accept exactly the
    /// same configuration space).
    pub fn new(
        resolution: Resolution,
        record_len: usize,
        cycles: u32,
    ) -> Result<Self, ConfigError> {
        DynamicConfig::builder(resolution, record_len, cycles).build()
    }

    /// Starts a builder for a dynamic test plan — the validating front
    /// door for non-default harmonics, overdrive or limits (unlike the
    /// post-hoc `with_*` modifiers, an unrealisable plan surfaces as a
    /// [`ConfigError`] instead of a panic).
    pub fn builder(resolution: Resolution, record_len: usize, cycles: u32) -> DynamicConfigBuilder {
        DynamicConfigBuilder {
            config: DynamicConfig {
                resolution,
                record_len,
                cycles,
                harmonics: DEFAULT_HARMONICS,
                overdrive: DEFAULT_OVERDRIVE,
                limits: DynamicLimits::for_resolution(resolution),
            },
        }
    }

    /// The paper-scale operating point: the 6-bit vehicle with the
    /// 4096-sample, 1021-cycle coherent record of the dynamic-screening
    /// experiment.
    pub fn paper_default() -> Self {
        DynamicConfig::new(Resolution::SIX_BIT, 4096, 1021).expect("paper operating point is valid")
    }

    /// Overrides the acceptance limits.
    pub fn with_limits(mut self, limits: DynamicLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Overrides the number of harmonic orders counted as distortion.
    ///
    /// # Panics
    ///
    /// Panics if the enlarged tone-bin plan is unrealisable in the
    /// fixed-point datapath (same audit as [`DynamicConfig::new`]).
    pub fn with_harmonics(mut self, harmonics: usize) -> Self {
        self.harmonics = harmonics;
        if let Err(e) = self.to_rtl().validate() {
            panic!("plan is unrealisable in the fixed-point datapath: {e}");
        }
        self
    }

    /// Overrides the relative full-scale overdrive of the stimulus.
    ///
    /// # Panics
    ///
    /// Panics if `overdrive` is negative.
    pub fn with_overdrive(mut self, overdrive: f64) -> Self {
        assert!(overdrive >= 0.0, "overdrive must be non-negative");
        self.overdrive = overdrive;
        self
    }

    /// The converter resolution under test.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Samples per coherent record.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// Sine cycles per record (= the fundamental's DFT bin).
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Harmonic orders counted as distortion.
    pub fn harmonics(&self) -> usize {
        self.harmonics
    }

    /// Relative full-scale overdrive of the stimulus.
    pub fn overdrive(&self) -> f64 {
        self.overdrive
    }

    /// The acceptance limits.
    pub fn limits(&self) -> &DynamicLimits {
        &self.limits
    }

    /// The RTL datapath configuration equivalent to this plan.
    pub fn to_rtl(&self) -> bist_rtl::dyn_top::DynBistTopConfig {
        bist_rtl::dyn_top::DynBistTopConfig {
            adc_bits: self.resolution.bits(),
            record_len: self.record_len,
            fundamental_bin: self.cycles as usize,
            harmonics: self.harmonics,
        }
    }

    /// Judges a one-sided power decomposition (in LSB² units) against
    /// the limits — the single verdict path both backends share, so
    /// behavioural and RTL runs can only differ through the powers they
    /// feed in.
    pub fn judge_powers(&self, powers: &TonePowers, samples: u64) -> DynamicVerdict {
        let m: ToneMetrics = powers.metrics();
        let complete = samples == self.record_len as u64;
        DynamicVerdict {
            sinad_db: m.sinad_db,
            thd_db: m.thd_db,
            enob: m.enob,
            noise_power_lsb2: m.noise_power,
            samples,
            expected_samples: self.record_len as u64,
            checks: DynChecks {
                complete,
                sinad: m.sinad_db >= self.limits.min_sinad_db,
                thd: m.thd_db <= self.limits.max_thd_db,
                enob: m.enob >= self.limits.min_enob,
                noise: m.noise_power <= self.limits.max_noise_power_lsb2,
            },
        }
    }
}

impl fmt::Display for DynamicConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dynamic BIST {}: {} samples, {} cycles, H2..H{}, {}",
            self.resolution,
            self.record_len,
            self.cycles,
            self.harmonics + 1,
            self.limits
        )
    }
}

/// Builder for [`DynamicConfig`]: overrides applied before the single
/// validation in [`build`](DynamicConfigBuilder::build).
///
/// # Examples
///
/// ```
/// use bist_adc::types::Resolution;
/// use bist_core::dynamic::DynamicConfig;
///
/// # fn main() -> Result<(), bist_core::config::ConfigError> {
/// let plan = DynamicConfig::builder(Resolution::SIX_BIT, 4096, 1021)
///     .harmonics(4)
///     .overdrive(0.0)
///     .build()?;
/// assert_eq!(plan.harmonics(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfigBuilder {
    config: DynamicConfig,
}

impl DynamicConfigBuilder {
    /// Sets the number of harmonic orders counted as distortion.
    pub fn harmonics(mut self, harmonics: usize) -> Self {
        self.config.harmonics = harmonics;
        self
    }

    /// Sets the relative full-scale overdrive of the stimulus.
    ///
    /// # Panics
    ///
    /// Panics if `overdrive` is negative.
    pub fn overdrive(mut self, overdrive: f64) -> Self {
        assert!(overdrive >= 0.0, "overdrive must be non-negative");
        self.config.overdrive = overdrive;
        self
    }

    /// Sets the acceptance limits.
    pub fn limits(mut self, limits: DynamicLimits) -> Self {
        self.config.limits = limits;
        self
    }

    /// Builds and validates the plan: the fundamental must lie strictly
    /// between DC and Nyquist, and the full tone-bin plan (including
    /// any harmonics override) must fit the fixed-point registers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when either audit fails.
    pub fn build(self) -> Result<DynamicConfig, ConfigError> {
        let c = &self.config;
        if c.cycles == 0 || 2 * c.cycles as usize >= c.record_len {
            return Err(ConfigError::FundamentalOutOfRange {
                cycles: c.cycles,
                record_len: c.record_len,
            });
        }
        c.to_rtl()
            .validate()
            .map_err(ConfigError::FixedPointUnrealisable)?;
        Ok(self.config)
    }
}

/// The boolean outcome of every dynamic check — the part of a
/// [`DynamicVerdict`] that must be **bit-exact** across backends (the
/// raw dB metrics may differ by the RTL's bounded fixed-point
/// quantisation; the decisions may not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynChecks {
    /// Exactly the expected number of samples were processed.
    pub complete: bool,
    /// SINAD meets the limit.
    pub sinad: bool,
    /// THD meets the limit.
    pub thd: bool,
    /// ENOB meets the limit.
    pub enob: bool,
    /// Introduced noise power meets the limit.
    pub noise: bool,
}

impl DynChecks {
    /// Whether every check passed.
    pub fn all_pass(&self) -> bool {
        self.complete && self.sinad && self.thd && self.enob && self.noise
    }
}

/// Compact, heap-free verdict of one dynamic sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicVerdict {
    /// Signal to noise-and-distortion, dB.
    pub sinad_db: f64,
    /// Total harmonic distortion, dB relative to the carrier.
    pub thd_db: f64,
    /// Effective number of bits.
    pub enob: f64,
    /// Introduced noise power, LSB² (the §2 parameter).
    pub noise_power_lsb2: f64,
    /// ADC samples consumed by the sweep.
    pub samples: u64,
    /// Samples a healthy sweep must produce (the record length).
    pub expected_samples: u64,
    /// The per-limit decisions (bit-exact across backends).
    pub checks: DynChecks,
}

impl DynamicVerdict {
    /// Whether the sweep processed *exactly* the expected number of
    /// samples.
    pub fn complete(&self) -> bool {
        self.checks.complete
    }

    /// The device-level decision: complete and every metric within its
    /// limit.
    pub fn accepted(&self) -> bool {
        self.checks.all_pass()
    }
}

impl fmt::Display for DynamicVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SINAD {:.1} dB, THD {:.1} dB, ENOB {:.2} b, noise {:.3} LSB² | {} | device {}",
            self.sinad_db,
            self.thd_db,
            self.enob,
            self.noise_power_lsb2,
            if self.complete() {
                "complete".to_owned()
            } else {
                format!("INCOMPLETE ({}/{})", self.samples, self.expected_samples)
            },
            if self.accepted() {
                "ACCEPTED"
            } else {
                "REJECTED"
            }
        )
    }
}

/// Reusable per-worker state for the behavioural dynamic path: the
/// Goertzel bank is built once per configuration and *reset in place*
/// between devices, so after warm-up the device→verdict path performs
/// zero heap allocations (same contract as [`crate::harness::Scratch`]).
#[derive(Debug, Default)]
pub struct DynScratch {
    bank: Option<GoertzelBank>,
}

impl DynScratch {
    /// Creates an empty scratch (the bank warms up on first use).
    pub fn new() -> Self {
        DynScratch::default()
    }

    /// The bank for `config`: reset in place when the cached plan
    /// matches, rebuilt otherwise.
    pub(crate) fn bank_for(&mut self, config: &DynamicConfig) -> &mut GoertzelBank {
        let fits = self.bank.as_ref().is_some_and(|b| {
            b.n() == config.record_len
                && b.fundamental_bin() == config.cycles as usize
                && b.harmonics() == config.harmonics
        });
        if !fits {
            self.bank = Some(GoertzelBank::new(
                config.cycles as usize,
                config.record_len,
                config.harmonics,
            ));
        }
        let bank = self.bank.as_mut().expect("bank installed above");
        bank.reset();
        bank
    }
}

/// Builds the coherent sine stimulus and sampling plan realising the
/// config on the given converter: full scale plus the configured
/// overdrive, centred mid-range. Public so benches and diagnostics can
/// reproduce the exact sweep the harness drives.
pub fn plan_sine<A: Adc + ?Sized>(adc: &A, config: &DynamicConfig) -> (SineWave, SamplingConfig) {
    let (low, high) = adc.input_range();
    let amplitude = (high.0 - low.0) / 2.0 * (1.0 + config.overdrive);
    let offset = bist_adc::types::Volts((low.0 + high.0) / 2.0);
    let frequency = SineWave::coherent_frequency(config.cycles, config.record_len, SAMPLE_RATE);
    (
        SineWave::new(amplitude, frequency, 0.0, offset),
        SamplingConfig::new(SAMPLE_RATE, config.record_len),
    )
}

/// Runs the behavioural dynamic processing over any code stream in one
/// pass: every code feeds the Goertzel bank as its LSB-centred value
/// `code + ½ − 2ⁿ⁻¹` (so powers come out in LSB² directly), and the
/// verdict is judged at end of stream.
///
/// This is the engine under [`crate::screener::Screener::screen_one`]
/// (dynamic workloads); use it directly to analyse codes from an
/// external source without materialising them.
pub fn process_dyn_code_stream<I: IntoIterator<Item = Code>>(
    config: &DynamicConfig,
    codes: I,
    scratch: &mut DynScratch,
) -> DynamicVerdict {
    let bank = scratch.bank_for(config);
    let half_fs = (config.resolution.code_count() / 2) as f64;
    let mut samples = 0u64;
    for code in codes {
        bank.push(f64::from(code.0) + 0.5 - half_fs);
        samples += 1;
    }
    config.judge_powers(&bank.powers(), samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BehavioralBackend, RtlBackend};
    use crate::screener::{Screener, Workload};
    use bist_adc::flash::FlashConfig;
    use bist_adc::noise::NoiseConfig;
    use bist_adc::stream::CodeStream;
    use bist_adc::transfer::TransferFunction;
    use bist_adc::types::Volts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ideal() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    /// One-shot dynamic sweep through the screener front door.
    fn run_dynamic_bist<A: Adc + ?Sized>(
        adc: &A,
        config: &DynamicConfig,
        noise: &NoiseConfig,
        rng: &mut StdRng,
    ) -> DynamicVerdict {
        let mut screener = Screener::new(Workload::dynamic_sine(*config).with_noise(*noise));
        screener
            .screen_one(adc, rng)
            .as_dynamic()
            .expect("dynamic workload")
            .verdict
    }

    #[test]
    fn ideal_device_near_ideal_metrics() {
        let config = DynamicConfig::paper_default();
        let v = run_dynamic_bist(&ideal(), &config, &NoiseConfig::noiseless(), &mut rng(1));
        assert!(v.accepted(), "{v}");
        assert!(v.complete());
        assert_eq!(v.samples, 4096);
        // The overdriven stimulus clips a little, costing ~2 dB against
        // the textbook 6.02·n + 1.76.
        assert!((v.sinad_db - ideal_sinad_db(6)).abs() < 3.0, "{v}");
        // An ideal quantiser's noise power is q²/12 ≈ 0.083 LSB² (plus
        // a little of the clipped overdrive).
        assert!(v.noise_power_lsb2 < 0.2, "{v}");
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn mismatch_degrades_metrics_and_heavy_mismatch_rejects() {
        let config = DynamicConfig::paper_default();
        let good = run_dynamic_bist(&ideal(), &config, &NoiseConfig::noiseless(), &mut rng(2));
        let heavy = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_width_sigma_lsb(0.6)
            .sample(&mut rng(3));
        let bad = run_dynamic_bist(&heavy, &config, &NoiseConfig::noiseless(), &mut rng(4));
        assert!(bad.sinad_db < good.sinad_db);
        assert!(bad.noise_power_lsb2 > good.noise_power_lsb2);
        assert!(!bad.accepted(), "{bad}");
    }

    #[test]
    fn truncated_stream_is_incomplete() {
        let config = DynamicConfig::paper_default();
        let adc = ideal();
        let (sine, sampling) = plan_sine(&adc, &config);
        let mut scratch = DynScratch::new();
        let v = process_dyn_code_stream(
            &config,
            CodeStream::noiseless(&adc, &sine, sampling).take(4000),
            &mut scratch,
        );
        assert!(!v.complete());
        assert!(!v.accepted());
        assert_eq!(v.samples, 4000);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_and_survives_config_change() {
        let c_a = DynamicConfig::paper_default();
        let c_b = DynamicConfig::new(Resolution::SIX_BIT, 2048, 509).unwrap();
        let adc = FlashConfig::paper_device().sample(&mut rng(5));
        let mut scratch = DynScratch::new();
        let fresh = run_dynamic_bist(&adc, &c_a, &NoiseConfig::noiseless(), &mut rng(7));
        // One scratch across config changes, driven straight through
        // the backend seam the screener uses.
        for config in [&c_a, &c_b, &c_a] {
            let (sine, sampling) = plan_sine(&adc, config);
            let v = BehavioralBackend.process_dyn(
                config,
                CodeStream::noisy(
                    &adc,
                    &sine,
                    sampling,
                    &NoiseConfig::noiseless(),
                    &mut rng(7),
                ),
                &mut scratch,
            );
            if config == &c_a {
                assert_eq!(v, fresh);
            } else {
                assert_eq!(v.expected_samples, 2048);
            }
        }
    }

    #[test]
    fn plan_sine_spans_range_with_overdrive() {
        let config = DynamicConfig::paper_default();
        let (sine, sampling) = plan_sine(&ideal(), &config);
        assert_eq!(sampling.samples, 4096);
        assert!((sine.amplitude() - 3.2 * (1.0 + DEFAULT_OVERDRIVE)).abs() < 1e-12);
        assert!((sine.offset().0 - 3.2).abs() < 1e-12);
        // Coherency: an integer number of cycles in the record.
        let cycles = sine.frequency() * sampling.samples as f64 / sampling.sample_rate;
        assert!((cycles - 1021.0).abs() < 1e-9);
    }

    #[test]
    fn bad_fundamental_is_planning_error() {
        assert!(DynamicConfig::new(Resolution::SIX_BIT, 4096, 0).is_err());
        assert!(DynamicConfig::new(Resolution::SIX_BIT, 4096, 2048).is_err());
        let err = DynamicConfig::new(Resolution::SIX_BIT, 64, 40).unwrap_err();
        assert!(err.to_string().contains("strictly between"));
    }

    #[test]
    fn nyquist_folding_harmonic_is_judged_by_both_backends() {
        // 1024 cycles in 4096 samples folds H2 exactly onto Nyquist —
        // a corner the register audit must bound polynomially (the
        // 1/sin ω envelope degenerates there), not reject or overflow.
        let config = DynamicConfig::new(Resolution::SIX_BIT, 4096, 1024)
            .expect("6-bit Nyquist-folding plan fits the fixed-point registers")
            .with_overdrive(0.0);
        let adc = ideal();
        let behavioral = run_dynamic_bist(&adc, &config, &NoiseConfig::noiseless(), &mut rng(9));
        let mut rtl_screener =
            Screener::new(Workload::dynamic_sine(config)).backend(RtlBackend::new());
        let rtl = rtl_screener
            .screen_one(&adc, &mut rng(9))
            .as_dynamic()
            .expect("dynamic workload")
            .verdict;
        assert_eq!(behavioral.checks, rtl.checks);
        assert!(behavioral.complete());
    }

    #[test]
    fn unrealisable_fixed_point_plan_is_rejected_for_both_backends() {
        // At 8 bits the same Nyquist fold exceeds the 64-bit register
        // budget — the plan is rejected up front, so the behavioural
        // path can never accept a config the RTL would panic on.
        let err = DynamicConfig::new(Resolution::new(8).unwrap(), 4096, 1024).unwrap_err();
        assert!(
            matches!(err, ConfigError::FixedPointUnrealisable(_)),
            "{err}"
        );
        assert!(err.to_string().contains("unrealisable"));
    }

    #[test]
    fn display_formats() {
        let config = DynamicConfig::paper_default();
        assert!(config.to_string().contains("4096 samples"));
        let v = run_dynamic_bist(&ideal(), &config, &NoiseConfig::noiseless(), &mut rng(1));
        assert!(v.to_string().contains("ACCEPTED"));
        assert!(config.limits().to_string().contains("SINAD"));
    }
}
