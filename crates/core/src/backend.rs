//! Pluggable verdict backends: one acquisition, two judges.
//!
//! The streaming engine fixes *what* is measured (the fused
//! stimulus→code pass of [`crate::harness`]); a [`Backend`] decides
//! *who* judges it:
//!
//! * [`BehavioralBackend`] — the reference accumulators
//!   ([`crate::lsb_monitor::LsbMonitorAcc`] +
//!   [`crate::functional::FunctionalAcc`]) and the streaming Goertzel
//!   bank of [`crate::dynamic`]. Zero-size, zero-cost: this is exactly
//!   the allocation-free hot path the Monte-Carlo fleet runs. It also
//!   overrides the batch hooks with the lane-parallel SoA engines of
//!   [`crate::batch`].
//! * [`RtlBackend`] — the gate-accurate `bist_rtl::top::BistTop` (and
//!   fixed-point [`bist_rtl::dyn_top::DynBistTop`]), clocked one code
//!   per tick and drained through its synchroniser latency at end of
//!   sweep, with its [`bist_rtl::top::BistReport`] mapped onto the same
//!   [`BistVerdict`]. Its batch hooks keep the scalar per-device loop,
//!   so gate-accuracy stays provable one device at a time.
//!
//! On the static workload the two backends are **bit-exact** on every
//! verdict field for any sweep that dwells ≥
//! [`bist_rtl::top::BistTop::DRAIN_TICKS`] samples after its last
//! transition — which every harness ramp does by construction (10-LSB
//! overshoot past full scale). Property tests in `crates/core/tests`
//! pin the equivalence on adversarial synthetic streams; the `bist-mc`
//! differential experiment pins it fleet-wide on random devices, noise
//! configurations and counter widths. On the dynamic workload the
//! contract is decision-exactness — see the trait docs.

use crate::batch::{DynBatch, StaticBatch};
use crate::config::BistConfig;
use crate::dynamic::{process_dyn_code_stream, DynScratch, DynamicConfig, DynamicVerdict};
use crate::functional::FunctionalAcc;
use crate::harness::{process_code_stream, BistVerdict, Scratch};
use crate::lsb_monitor::{CodeResult, LsbMonitorAcc};
use crate::sequencer::{
    DynSequencer, SeqDecision, SeqOutcome, StaticSequencer, STATIC_DECISION_LATENCY,
};
use bist_adc::types::{Code, Lsb};
use bist_adc::Adc;
use bist_dsp::goertzel::TonePowers;
use bist_rtl::dyn_top::{DynBistReport, DynBistTop};
use bist_rtl::top::{BistTop, BistTopConfig};
use rand::RngCore;

/// Fixed-capacity delay line realising the sequencer's visibility
/// protocol on the behavioural path: an event recorded at sample `t`
/// becomes visible at `t + STATIC_DECISION_LATENCY`, exactly when the
/// RTL datapath would emit it. At most one event of each kind fires per
/// sample, so a capacity of 4 can never overflow at latency 2.
#[derive(Debug, Clone, Copy)]
struct DelayLine<T: Copy, const N: usize> {
    buf: [Option<(u64, T)>; N],
    head: usize,
    len: usize,
}

impl<T: Copy, const N: usize> DelayLine<T, N> {
    fn new() -> Self {
        DelayLine {
            buf: [None; N],
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, sample: u64, value: T) {
        debug_assert!(self.len < N, "delay line overflow");
        let tail = (self.head + self.len) % N;
        self.buf[tail] = Some((sample, value));
        self.len += 1;
    }

    /// Pops the oldest entry whose sample is within the visible
    /// horizon, if any.
    fn pop_visible(&mut self, visible: u64) -> Option<(u64, T)> {
        let (sample, value) = self.buf[self.head]?;
        if sample > visible {
            return None;
        }
        self.buf[self.head] = None;
        self.head = (self.head + 1) % N;
        self.len -= 1;
        Some((sample, value))
    }
}

/// The one verdict seam: a backend judges every workload the screener
/// can dispatch — static sweeps, dynamic records, their sequenced
/// variants, and whole batches of devices.
///
/// **Static contract** (`process` / `process_sequenced`): both
/// implementors are bit-exact on every verdict field; under a
/// sequencer, the visibility protocol in [`crate::sequencer`] makes the
/// decision independent of the backend's pipeline latency, so for the
/// same code stream and the same (re-`begin`-able) sequencer every
/// backend reaches the identical [`SeqDecision`] and identical verdict.
///
/// **Dynamic contract** (`process_dyn` / `process_dyn_sequenced`): the
/// raw dB metrics may differ by the RTL's bounded fixed-point
/// quantisation, but [`DynamicVerdict::checks`], `samples` and
/// `expected_samples` must agree — which the dynamic differential fleet
/// sweep (`bist_mc::differential`) enforces at scale.
///
/// **Batch contract** (`process_batch` / `process_dyn_batch`): the
/// reports a batch yields are device-for-device identical to running
/// each queued device through the corresponding scalar method — the
/// default bodies literally do that. [`BehavioralBackend`] overrides
/// them with the lane-parallel engines of [`crate::batch`], which the
/// batch-equivalence property tests pin bit-exact to the scalar path.
pub trait Backend {
    /// Stable backend name for perf records and reports.
    fn name(&self) -> &'static str;

    /// Judges one sweep: consumes the code stream sample by sample and
    /// returns the compact verdict, leaving per-code detail for the
    /// most recent sweep in `scratch` (as much of it as the backend
    /// models — see the implementors).
    fn process<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &BistConfig,
        codes: I,
        scratch: &mut Scratch,
    ) -> BistVerdict;

    /// Judges one sweep under an early-stop sequencer: like
    /// [`Backend::process`], but every
    /// [`crate::sequencer::SequencerConfig::check_interval`] samples
    /// the sequencer may stop the sweep, in which case the stream is
    /// abandoned and the verdict holds the sequencer-visible tallies.
    fn process_sequenced<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &BistConfig,
        seq: &mut StaticSequencer,
        codes: I,
        scratch: &mut Scratch,
    ) -> SeqOutcome<BistVerdict>;

    /// Judges one coherent record: consumes the code stream sample by
    /// sample and returns the compact dynamic verdict. `scratch` holds
    /// the behavioural bank (unused by hardware-state backends).
    fn process_dyn<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &DynamicConfig,
        codes: I,
        scratch: &mut DynScratch,
    ) -> DynamicVerdict;

    /// Judges one coherent record under an early-stop sequencer: like
    /// [`Backend::process_dyn`], but the sequencer watches the centred
    /// code stream and may stop the record early. The decision is
    /// backend-independent by construction (the sequencer owns its
    /// statistic); on an early stop both backends must report the same
    /// consumed-sample count (the RTL flushes its input pipeline), and
    /// the truncated verdict's raw metrics keep the full-record
    /// quantisation contract.
    fn process_dyn_sequenced<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &DynamicConfig,
        seq: &mut DynSequencer,
        codes: I,
        scratch: &mut DynScratch,
    ) -> SeqOutcome<DynamicVerdict>;

    /// Screens every device queued in a static batch, leaving one
    /// report per device (see [`StaticBatch::take_reports`]). The
    /// default pops devices one at a time through [`Backend::process`]
    /// / [`Backend::process_sequenced`].
    fn process_batch<A: Adc, R: RngCore>(&mut self, batch: &mut StaticBatch<A, R>)
    where
        Self: Sized,
    {
        batch.run_scalar(self);
    }

    /// Screens every device queued in a dynamic batch, leaving one
    /// report per device (see [`DynBatch::take_reports`]). The default
    /// pops devices one at a time through [`Backend::process_dyn`] /
    /// [`Backend::process_dyn_sequenced`].
    fn process_dyn_batch<A: Adc, R: RngCore>(&mut self, batch: &mut DynBatch<A, R>)
    where
        Self: Sized,
    {
        batch.run_scalar(self);
    }
}

/// The centred signed half-LSB value `2·code + 1 − 2ⁿ` the dynamic
/// sequencer consumes — identical for both backends by construction.
pub(crate) fn centred_half_lsb(config: &DynamicConfig, code: Code) -> i64 {
    2 * i64::from(code.0) + 1 - config.resolution().code_count() as i64
}

/// The behavioural reference backend — a zero-size handle onto
/// [`process_code_stream`], so a [`crate::screener::Screener`] sweep
/// compiled through it is byte-for-byte the pre-backend hot path (the
/// counting-allocator test keeps it honest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BehavioralBackend;

impl Backend for BehavioralBackend {
    fn name(&self) -> &'static str {
        "behavioral"
    }

    fn process<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &BistConfig,
        codes: I,
        scratch: &mut Scratch,
    ) -> BistVerdict {
        process_code_stream(config, codes, scratch)
    }

    fn process_sequenced<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &BistConfig,
        seq: &mut StaticSequencer,
        codes: I,
        scratch: &mut Scratch,
    ) -> SeqOutcome<BistVerdict> {
        let bit = config.monitored_bit();
        let mut monitor = LsbMonitorAcc::new(config, &mut scratch.monitor_codes);
        let mut functional = FunctionalAcc::new(bit, config.deglitch(), &mut scratch.checks);
        seq.begin(config);
        // Events are delayed to the RTL's emission horizon so both
        // backends see bit-identical event streams at every checkpoint.
        let mut code_line: DelayLine<CodeResult, 4> = DelayLine::new();
        let mut func_line: DelayLine<bool, 4> = DelayLine::new();
        let mut consumed = 0u64;
        let mut codes_seen = 0usize;
        let mut checks_seen = 0usize;
        // Countdown to the next checkpoint, in consumed samples — the
        // per-sample fast path is compare-and-branch only.
        let mut next_checkpoint = seq.next_checkpoint_after(0) + STATIC_DECISION_LATENCY;
        for code in codes {
            consumed += 1;
            monitor.push((code.0 >> bit) & 1 == 1);
            functional.push(code);
            if monitor.recorded() > codes_seen {
                codes_seen = monitor.recorded();
                let m = monitor.latest().expect("just recorded");
                code_line.push(consumed, m);
            }
            if functional.fired() > checks_seen {
                checks_seen = functional.fired();
                let c = functional.latest().expect("just fired");
                func_line.push(consumed, c.ok);
            }
            let Some(visible) = consumed.checked_sub(STATIC_DECISION_LATENCY) else {
                continue;
            };
            while let Some((t, m)) = code_line.pop_visible(visible) {
                seq.observe_code(
                    t,
                    m.count,
                    m.dnl_verdict.is_pass(),
                    m.inl_pass,
                    m.inl_counts,
                );
            }
            while let Some((_, ok)) = func_line.pop_visible(visible) {
                seq.observe_functional(ok);
            }
            if consumed == next_checkpoint {
                next_checkpoint = seq.next_checkpoint_after(visible) + STATIC_DECISION_LATENCY;
                let decision = seq.checkpoint(visible);
                if decision.stops() {
                    return SeqOutcome {
                        decision,
                        verdict: seq.verdict(consumed),
                    };
                }
            }
        }
        // Stream exhausted: the full-sweep verdict, bit-identical to
        // `process_code_stream` on the same stream.
        let m = monitor.finish();
        let f = functional.finish();
        SeqOutcome {
            decision: SeqDecision::Continue,
            verdict: BistVerdict {
                codes_judged: m.codes_judged,
                dnl_failures: m.dnl_failures,
                inl_failures: m.inl_failures,
                functional_checks: f.checks,
                functional_mismatches: f.mismatches,
                expected_codes: config.expected_measurements(),
                samples: consumed,
            },
        }
    }

    fn process_dyn<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &DynamicConfig,
        codes: I,
        scratch: &mut DynScratch,
    ) -> DynamicVerdict {
        process_dyn_code_stream(config, codes, scratch)
    }

    fn process_dyn_sequenced<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &DynamicConfig,
        seq: &mut DynSequencer,
        codes: I,
        scratch: &mut DynScratch,
    ) -> SeqOutcome<DynamicVerdict> {
        let bank = scratch.bank_for(config);
        let half_fs = (config.resolution().code_count() / 2) as f64;
        seq.begin(config);
        let record_len = config.record_len() as u64;
        let mut next_checkpoint = seq.next_checkpoint_after(0);
        let mut consumed = 0u64;
        for code in codes {
            consumed += 1;
            bank.push(f64::from(code.0) + 0.5 - half_fs);
            seq.push(centred_half_lsb(config, code));
            if consumed == next_checkpoint && consumed < record_len {
                next_checkpoint = seq.next_checkpoint_after(consumed);
                let decision = seq.checkpoint(consumed);
                if decision.stops() {
                    return SeqOutcome {
                        decision,
                        verdict: config.judge_powers(&bank.powers(), consumed),
                    };
                }
            }
        }
        SeqOutcome {
            decision: SeqDecision::Continue,
            verdict: config.judge_powers(&bank.powers(), consumed),
        }
    }

    /// The lane-parallel SoA engine: run-skipping on noiseless
    /// monotone ramps, per-lane scalar replay otherwise — bit-exact to
    /// the scalar path either way (see [`crate::batch`]).
    fn process_batch<A: Adc, R: RngCore>(&mut self, batch: &mut StaticBatch<A, R>) {
        batch.run_batched();
    }

    /// The lane-parallel Goertzel engine with a shared stimulus table —
    /// bit-exact to the scalar path (see [`crate::batch`]).
    fn process_dyn_batch<A: Adc, R: RngCore>(&mut self, batch: &mut DynBatch<A, R>) {
        batch.run_batched();
    }
}

/// The gate-accurate backend: feeds `bist_rtl::BistTop` one code per
/// tick.
///
/// The constructed top level is cached and reused while the
/// configuration is unchanged — between devices it is *reset in place*
/// (no component reconstructed), so after its first sweep this path is
/// allocation-free too (covered by the counting-allocator test).
/// Codes are pre-shifted by the monitored bit (the on-chip
/// block always watches its own bit 0 — a partial BIST simply taps the
/// bus higher up), and after the stream ends the top is drained for
/// [`BistTop::DRAIN_TICKS`] cycles so measurements inside the
/// synchroniser pipeline complete.
///
/// Scratch detail: per-code monitor results are recorded (with the
/// hardware's view — a saturated code reports the clamped width, since
/// the chip cannot know more); per-check functional detail is not (the
/// silicon latches only the counters), so
/// [`Scratch::checks`](Scratch::checks) is empty after an RTL sweep.
#[derive(Debug, Default)]
pub struct RtlBackend {
    top: Option<BistTop>,
    /// Cached dynamic-test datapath (see [`Backend::process_dyn`]).
    dyn_top: Option<DynBistTop>,
}

impl RtlBackend {
    /// A backend with no cached datapath (built on first sweep).
    pub fn new() -> Self {
        RtlBackend::default()
    }

    /// The top-level configuration equivalent to a harness config.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two bits remain above the monitored bit —
    /// the Figure-2 checker needs at least one upper bit.
    fn top_config(config: &BistConfig) -> BistTopConfig {
        let bits = config.resolution().bits();
        assert!(
            config.monitored_bit() + 2 <= bits,
            "RTL backend needs at least one bit above the monitored bit \
             (monitored {} of {bits})",
            config.monitored_bit()
        );
        BistTopConfig {
            lsb: config.to_rtl(),
            adc_bits: bits - config.monitored_bit(),
            expected_codes: config.expected_measurements(),
        }
    }

    /// The cached static top for `want`: reset in place on a hit,
    /// rebuilt on a configuration change.
    fn top_for(&mut self, want: BistTopConfig) -> &mut BistTop {
        match &mut self.top {
            Some(top) if *top.config() == want => top.reset(),
            slot => *slot = Some(BistTop::new(want)),
        }
        self.top.as_mut().expect("installed above")
    }

    /// The cached dynamic top for `want`: reset in place on a hit,
    /// rebuilt on a configuration change.
    fn dyn_top_for(&mut self, want: bist_rtl::dyn_top::DynBistTopConfig) -> &mut DynBistTop {
        match &mut self.dyn_top {
            Some(top) if *top.config() == want => top.reset(),
            slot => *slot = Some(DynBistTop::new(want)),
        }
        self.dyn_top.as_mut().expect("installed above")
    }
}

impl Backend for RtlBackend {
    fn name(&self) -> &'static str {
        "rtl"
    }

    fn process<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &BistConfig,
        codes: I,
        scratch: &mut Scratch,
    ) -> BistVerdict {
        let want = Self::top_config(config);
        let top = self.top_for(want);
        scratch.monitor_codes.clear();
        scratch.checks.clear();
        let bit = config.monitored_bit();
        let delta_s = config.delta_s().0;
        let mut samples = 0u64;
        for code in codes {
            if let Some(m) = top.tick(u64::from(code.0) >> bit) {
                push_rtl_code_result(&mut scratch.monitor_codes, delta_s, &m);
            }
            samples += 1;
        }
        for _ in 0..BistTop::DRAIN_TICKS {
            if let Some(m) = top.drain_tick() {
                push_rtl_code_result(&mut scratch.monitor_codes, delta_s, &m);
            }
        }
        let report = top.report();
        BistVerdict {
            codes_judged: report.codes_measured,
            dnl_failures: report.dnl_failures,
            inl_failures: report.inl_failures,
            functional_checks: report.functional_checks,
            functional_mismatches: report.functional_mismatches,
            expected_codes: want.expected_codes,
            samples,
        }
    }

    fn process_sequenced<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &BistConfig,
        seq: &mut StaticSequencer,
        codes: I,
        scratch: &mut Scratch,
    ) -> SeqOutcome<BistVerdict> {
        let want = Self::top_config(config);
        let top = self.top_for(want);
        scratch.monitor_codes.clear();
        scratch.checks.clear();
        seq.begin(config);
        let bit = config.monitored_bit();
        let delta_s = config.delta_s().0;
        let mut consumed = 0u64;
        let mut next_checkpoint = seq.next_checkpoint_after(0) + STATIC_DECISION_LATENCY;
        for code in codes {
            consumed += 1;
            let checks_before = top.functional_checks();
            let mismatches_before = top.functional_mismatches();
            // Emission is exactly STATIC_DECISION_LATENCY ticks behind
            // the behavioural accumulators, so events observed here
            // carry their behavioural closing sample and arrive at the
            // sequencer in the identical order.
            if let Some(m) = top.tick(u64::from(code.0) >> bit) {
                push_rtl_code_result(&mut scratch.monitor_codes, delta_s, &m);
                seq.observe_code(
                    consumed - STATIC_DECISION_LATENCY,
                    m.count,
                    m.dnl_verdict.is_pass(),
                    m.inl_pass,
                    m.inl_counts,
                );
            }
            if top.functional_checks() > checks_before {
                seq.observe_functional(top.functional_mismatches() == mismatches_before);
            }
            if consumed == next_checkpoint {
                let visible = consumed - STATIC_DECISION_LATENCY;
                next_checkpoint = seq.next_checkpoint_after(visible) + STATIC_DECISION_LATENCY;
                let decision = seq.checkpoint(visible);
                if decision.stops() {
                    // Stop dead: measurements still inside the
                    // synchroniser belong to samples beyond the
                    // decision horizon, so no drain — the verdict is
                    // the sequencer's visible tally, bit-exact with
                    // the behavioural backend's.
                    return SeqOutcome {
                        decision,
                        verdict: seq.verdict(consumed),
                    };
                }
            }
        }
        for _ in 0..BistTop::DRAIN_TICKS {
            if let Some(m) = top.drain_tick() {
                push_rtl_code_result(&mut scratch.monitor_codes, delta_s, &m);
            }
        }
        let report = top.report();
        SeqOutcome {
            decision: SeqDecision::Continue,
            verdict: BistVerdict {
                codes_judged: report.codes_measured,
                dnl_failures: report.dnl_failures,
                inl_failures: report.inl_failures,
                functional_checks: report.functional_checks,
                functional_mismatches: report.functional_mismatches,
                expected_codes: want.expected_codes,
                samples: consumed,
            },
        }
    }

    /// Feeds `bist_rtl::DynBistTop` one code per tick and drains its
    /// input pipeline at end of record.
    ///
    /// Like the static path, the constructed top level is cached and
    /// *reset in place* between devices while the configuration is
    /// unchanged, so after its first sweep this path is allocation-free
    /// too (covered by the counting-allocator test). The report's
    /// register contents — fixed-point bin powers in half-LSB², exact
    /// Σv and Σv² — are mapped onto a [`TonePowers`] in LSB² and judged
    /// by the *same* [`DynamicConfig::judge_powers`] the behavioural
    /// bank uses, so the only possible behavioural↔RTL difference is
    /// the bounded fixed-point quantisation of the Goertzel
    /// accumulation.
    fn process_dyn<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &DynamicConfig,
        codes: I,
        _scratch: &mut DynScratch,
    ) -> DynamicVerdict {
        let top = self.dyn_top_for(config.to_rtl());
        for code in codes {
            top.tick(u64::from(code.0));
        }
        for _ in 0..DynBistTop::DRAIN_TICKS {
            top.drain_tick();
        }
        rtl_dyn_verdict(config, &top.report())
    }

    fn process_dyn_sequenced<I: IntoIterator<Item = Code>>(
        &mut self,
        config: &DynamicConfig,
        seq: &mut DynSequencer,
        codes: I,
        _scratch: &mut DynScratch,
    ) -> SeqOutcome<DynamicVerdict> {
        let top = self.dyn_top_for(config.to_rtl());
        seq.begin(config);
        let record_len = config.record_len() as u64;
        let mut next_checkpoint = seq.next_checkpoint_after(0);
        let mut consumed = 0u64;
        let mut stopped = None;
        for code in codes {
            consumed += 1;
            top.tick(u64::from(code.0));
            seq.push(centred_half_lsb(config, code));
            if consumed == next_checkpoint && consumed < record_len {
                next_checkpoint = seq.next_checkpoint_after(consumed);
                let decision = seq.checkpoint(consumed);
                if decision.stops() {
                    stopped = Some(decision);
                    break;
                }
            }
        }
        // Flush the input pipeline in either case: on an early stop the
        // single drain tick completes the last consumed sample's MAC,
        // so both backends report the identical consumed-sample count.
        for _ in 0..DynBistTop::DRAIN_TICKS {
            top.drain_tick();
        }
        SeqOutcome {
            decision: stopped.unwrap_or(SeqDecision::Continue),
            verdict: rtl_dyn_verdict(config, &top.report()),
        }
    }
}

/// Maps one RTL code measurement onto the scratch's per-code view (the
/// hardware's view: a saturated code reports the clamped width).
fn push_rtl_code_result(
    monitor_codes: &mut Vec<CodeResult>,
    delta_s: f64,
    m: &bist_rtl::datapath::CodeMeasurement,
) {
    let width_lsb = Lsb(m.count as f64 * delta_s);
    monitor_codes.push(CodeResult {
        index: m.index,
        count: m.count,
        overflow: m.overflow,
        dnl_verdict: m.dnl_verdict,
        width_lsb,
        dnl_lsb: Lsb(width_lsb.0 - 1.0),
        inl_counts: m.inl_counts,
        inl_pass: m.inl_pass,
    });
}

/// Maps the RTL result registers onto the shared verdict arithmetic.
/// Half-LSB² → LSB² (÷4); the integer side channels convert exactly
/// (Σv and Σv² are lossless in f64 for every supported record length).
fn rtl_dyn_verdict(config: &DynamicConfig, report: &DynBistReport) -> DynamicVerdict {
    let n = config.record_len() as f64;
    let mean_half = report.sum_half_lsb as f64 / n;
    let powers = TonePowers {
        n: config.record_len(),
        carrier: report.carrier_power / 4.0,
        harmonics_by_order: report.harmonic_power_by_order / 4.0,
        harmonics_distinct: report.harmonic_power_distinct / 4.0,
        dc: mean_half * mean_half / 4.0,
        total: report.sum_sq_half_lsb2 as f64 / n / 4.0,
    };
    config.judge_powers(&powers, report.samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::plan_sine;
    use crate::harness::plan_ramp;
    use bist_adc::flash::FlashConfig;
    use bist_adc::noise::NoiseConfig;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::stream::CodeStream;
    use bist_adc::transfer::TransferFunction;
    use bist_adc::types::{Resolution, Volts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(bits: u32, deglitch: bool) -> BistConfig {
        BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(bits)
            .deglitch(deglitch)
            .build()
            .unwrap()
    }

    fn ideal() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    /// One full static sweep through an explicit backend — the
    /// acquisition [`crate::screener::Screener::screen_one`] performs,
    /// spelled out so these tests exercise the backend seam directly.
    fn static_sweep<B: Backend>(
        backend: &mut B,
        adc: &impl Adc,
        config: &BistConfig,
        noise: &NoiseConfig,
        rng: &mut StdRng,
        scratch: &mut Scratch,
    ) -> BistVerdict {
        let (ramp, sampling) = plan_ramp(adc, config);
        backend.process(
            config,
            CodeStream::noisy(adc, &ramp, sampling, noise, rng),
            scratch,
        )
    }

    /// [`static_sweep`]'s dynamic-record counterpart.
    fn dyn_sweep<B: Backend>(
        backend: &mut B,
        adc: &impl Adc,
        config: &DynamicConfig,
        noise: &NoiseConfig,
        rng: &mut StdRng,
        scratch: &mut DynScratch,
    ) -> DynamicVerdict {
        let (sine, sampling) = plan_sine(adc, config);
        backend.process_dyn(
            config,
            CodeStream::noisy(adc, &sine, sampling, noise, rng),
            scratch,
        )
    }

    #[test]
    fn behavioral_backend_is_the_streaming_engine() {
        let config = cfg(5, false);
        let adc = ideal();
        let (ramp, sampling) = plan_ramp(&adc, &config);
        let mut s1 = Scratch::new();
        let mut s2 = Scratch::new();
        let direct = process_code_stream(
            &config,
            CodeStream::noiseless(&adc, &ramp, sampling),
            &mut s1,
        );
        let via_backend = BehavioralBackend.process(
            &config,
            CodeStream::noiseless(&adc, &ramp, sampling),
            &mut s2,
        );
        assert_eq!(direct, via_backend);
        assert_eq!(s1.monitor_codes(), s2.monitor_codes());
        assert_eq!(s1.checks(), s2.checks());
    }

    #[test]
    fn rtl_backend_accepts_ideal_device_all_counters() {
        let adc = ideal();
        let mut backend = RtlBackend::new();
        let mut scratch = Scratch::new();
        for bits in 4..=7 {
            let config = cfg(bits, false);
            let verdict = static_sweep(
                &mut backend,
                &adc,
                &config,
                &NoiseConfig::noiseless(),
                &mut StdRng::seed_from_u64(1),
                &mut scratch,
            );
            assert!(verdict.accepted(), "counter {bits}: {verdict:?}");
            assert_eq!(verdict.codes_judged, 62);
            assert_eq!(scratch.monitor_codes().len(), 62);
            assert!(scratch.checks().is_empty(), "RTL keeps only counters");
        }
    }

    #[test]
    fn rtl_matches_behavioral_on_flash_devices() {
        // The tentpole seam, in miniature: same device, same RNG
        // stream, both backends — every verdict field identical.
        for seed in 0..12 {
            for (bits, deglitch, noise) in [
                (4u32, false, NoiseConfig::noiseless()),
                (
                    6,
                    false,
                    NoiseConfig::noiseless().with_transition_noise(0.004),
                ),
                (
                    5,
                    true,
                    NoiseConfig::noiseless().with_transition_noise(0.006),
                ),
                (7, true, NoiseConfig::noiseless().with_input_noise(0.003)),
            ] {
                let config = cfg(bits, deglitch);
                let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(seed));
                let mut scratch = Scratch::new();
                let behavioral = static_sweep(
                    &mut BehavioralBackend,
                    &adc,
                    &config,
                    &noise,
                    &mut StdRng::seed_from_u64(900 + seed),
                    &mut scratch,
                );
                let rtl = static_sweep(
                    &mut RtlBackend::new(),
                    &adc,
                    &config,
                    &noise,
                    &mut StdRng::seed_from_u64(900 + seed),
                    &mut scratch,
                );
                assert_eq!(
                    behavioral, rtl,
                    "seed {seed} bits {bits} deglitch {deglitch}"
                );
            }
        }
    }

    #[test]
    fn rtl_backend_reuses_top_across_devices_and_rebuilds_on_config_change() {
        let mut backend = RtlBackend::new();
        let mut scratch = Scratch::new();
        let adc = ideal();
        let c4 = cfg(4, false);
        let c6 = cfg(6, true);
        for config in [&c4, &c4, &c6, &c4] {
            let v = static_sweep(
                &mut backend,
                &adc,
                config,
                &NoiseConfig::noiseless(),
                &mut StdRng::seed_from_u64(3),
                &mut scratch,
            );
            assert!(v.accepted(), "{config}: {v:?}");
        }
    }

    #[test]
    fn rtl_backend_monitored_bit_one() {
        // Partial BIST: bit 1 monitored, upper word = code >> 2.
        let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(5)
            .monitored_bit(1)
            .build()
            .unwrap();
        let adc = ideal();
        let mut scratch = Scratch::new();
        let behavioral = static_sweep(
            &mut BehavioralBackend,
            &adc,
            &config,
            &NoiseConfig::noiseless(),
            &mut StdRng::seed_from_u64(5),
            &mut scratch,
        );
        let rtl = static_sweep(
            &mut RtlBackend::new(),
            &adc,
            &config,
            &NoiseConfig::noiseless(),
            &mut StdRng::seed_from_u64(5),
            &mut scratch,
        );
        // (Acceptance is immaterial here — the paper-planned window
        // assumes 1-LSB codes, and bit-1 runs are ~2 LSB — the point is
        // that both backends read the tapped-up bus identically.)
        assert_eq!(behavioral, rtl);
        assert_eq!(rtl.expected_codes, 30);
    }

    #[test]
    fn dyn_behavioral_backend_is_the_streaming_engine() {
        let config = DynamicConfig::paper_default();
        let adc = ideal();
        let (sine, sampling) = plan_sine(&adc, &config);
        let mut s1 = DynScratch::new();
        let mut s2 = DynScratch::new();
        let direct = process_dyn_code_stream(
            &config,
            bist_adc::stream::CodeStream::noiseless(&adc, &sine, sampling),
            &mut s1,
        );
        let via_backend = BehavioralBackend.process_dyn(
            &config,
            bist_adc::stream::CodeStream::noiseless(&adc, &sine, sampling),
            &mut s2,
        );
        assert_eq!(direct, via_backend);
    }

    #[test]
    fn dyn_rtl_decisions_match_behavioral_on_flash_devices() {
        let config = DynamicConfig::paper_default();
        let mut rtl = RtlBackend::new();
        let mut scratch = DynScratch::new();
        for seed in 0..12 {
            let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(seed));
            let noise = NoiseConfig::noiseless().with_input_noise(0.002);
            let behavioral = dyn_sweep(
                &mut BehavioralBackend,
                &adc,
                &config,
                &noise,
                &mut StdRng::seed_from_u64(700 + seed),
                &mut scratch,
            );
            let rtl_v = dyn_sweep(
                &mut rtl,
                &adc,
                &config,
                &noise,
                &mut StdRng::seed_from_u64(700 + seed),
                &mut scratch,
            );
            // Decisions bit-exact; metrics within the fixed-point
            // quantisation budget.
            assert_eq!(behavioral.checks, rtl_v.checks, "seed {seed}");
            assert_eq!(behavioral.samples, rtl_v.samples);
            assert_eq!(behavioral.expected_samples, rtl_v.expected_samples);
            assert!(
                (behavioral.sinad_db - rtl_v.sinad_db).abs() < 1e-4,
                "seed {seed}: sinad {} vs {}",
                behavioral.sinad_db,
                rtl_v.sinad_db
            );
            assert!((behavioral.noise_power_lsb2 - rtl_v.noise_power_lsb2).abs() < 1e-5);
        }
    }

    #[test]
    fn dyn_rtl_backend_reuses_top_and_rebuilds_on_config_change() {
        use bist_adc::types::Resolution;
        let c_a = DynamicConfig::paper_default();
        let c_b = DynamicConfig::new(Resolution::SIX_BIT, 2048, 509).unwrap();
        let mut backend = RtlBackend::new();
        let mut scratch = DynScratch::new();
        let adc = ideal();
        for config in [&c_a, &c_a, &c_b, &c_a] {
            let v = dyn_sweep(
                &mut backend,
                &adc,
                config,
                &NoiseConfig::noiseless(),
                &mut StdRng::seed_from_u64(3),
                &mut scratch,
            );
            assert!(v.accepted(), "{config}: {v}");
        }
    }

    #[test]
    fn one_backend_value_serves_both_workloads() {
        // A fleet screener holds one RtlBackend and runs static and
        // dynamic sweeps through it; the two cached tops coexist.
        let mut backend = RtlBackend::new();
        let mut scratch = Scratch::new();
        let mut dyn_scratch = DynScratch::new();
        let adc = ideal();
        let static_v = static_sweep(
            &mut backend,
            &adc,
            &cfg(5, false),
            &NoiseConfig::noiseless(),
            &mut StdRng::seed_from_u64(1),
            &mut scratch,
        );
        let dyn_v = dyn_sweep(
            &mut backend,
            &adc,
            &DynamicConfig::paper_default(),
            &NoiseConfig::noiseless(),
            &mut StdRng::seed_from_u64(2),
            &mut dyn_scratch,
        );
        assert!(static_v.accepted());
        assert!(dyn_v.accepted());
    }

    #[test]
    #[should_panic(expected = "at least one bit above the monitored bit")]
    fn rtl_backend_rejects_msb_monitoring() {
        let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(5)
            .monitored_bit(5)
            .build()
            .unwrap();
        let adc = ideal();
        let mut scratch = Scratch::new();
        static_sweep(
            &mut RtlBackend::new(),
            &adc,
            &config,
            &NoiseConfig::noiseless(),
            &mut StdRng::seed_from_u64(1),
            &mut scratch,
        );
    }
}
