//! Plain-text table rendering for the experiment binaries.
//!
//! The reproduction binaries print the paper's tables side by side with
//! the regenerated values; this tiny formatter keeps the columns aligned
//! without pulling in a dependency.

use std::fmt;

/// A fixed-column text table.
///
/// # Examples
///
/// ```
/// use bist_core::report::Table;
///
/// let mut t = Table::new(&["counter", "type I", "type II"]);
/// t.row(&["4", "0.065", "0.045"]);
/// t.row(&["5", "0.025", "0.045"]);
/// let s = t.to_string();
/// assert!(s.contains("counter"));
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_owned());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, expected {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(t) = &self.title {
            writeln!(f, "{t}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ");
            writeln!(f, "{line}")
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a probability compactly: fixed-point for moderate values,
/// scientific for tiny ones, `-` for `None`.
pub fn fmt_prob(p: Option<f64>) -> String {
    match p {
        None => "-".to_owned(),
        Some(0.0) => "0".to_owned(),
        Some(p) if p.abs() < 1e-3 => format!("{p:.2e}"),
        Some(p) => format!("{p:.4}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header", "b"]);
        t.row(&["1", "2", "33333"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal length (aligned).
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn title_precedes_table() {
        let mut t = Table::new(&["x"]).with_title("Table 1");
        t.row(&["1"]);
        let s = t.to_string();
        assert!(s.starts_with("Table 1\n"));
    }

    #[test]
    #[should_panic(expected = "row has 1 cells, expected 2")]
    fn wrong_cell_count_panics() {
        Table::new(&["a", "b"]).row(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        Table::new(&[]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row(&["1"]).row(&["2"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["a", "b"]);
        t.row_owned(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_prob_ranges() {
        assert_eq!(fmt_prob(None), "-");
        assert_eq!(fmt_prob(Some(0.0)), "0");
        assert_eq!(fmt_prob(Some(0.065)), "0.0650");
        assert_eq!(fmt_prob(Some(7e-5)), "7.00e-5");
    }
}
