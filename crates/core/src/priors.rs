//! Per-architecture empirical priors feeding the sequencer.
//!
//! Sequenced screening (the [`sequencer`](crate::sequencer) over either
//! workload) produces, per device, a samples-to-decision count and a
//! decision mode. Aggregated per [`Architecture`], those observations
//! are a *prior* on how quickly the next device of that architecture
//! will decide: a SAR fleet whose accepts all latch at the first
//! checkpoint is telling us the evidence floor is set too high for SAR.
//!
//! [`PriorsBank`] is that accumulator. Fleet drivers absorb
//! [`SeqTally`]s from calibration runs (e.g.
//! `bist_mc::differential::SeqDifferentialResult` maps its per-scenario
//! tallies straight in) and then ask [`PriorsBank::policy_for`] for an
//! architecture-conditioned [`SequencerConfig`]: the same drift budgets,
//! but `min_samples`/`check_interval` tightened toward where that
//! architecture's decisions actually land.
//!
//! The hints only ever move the *cadence* knobs, never α/β — the
//! type I/II budgets are a contract with the test plan, and the
//! Bonferroni split inside the sequencer re-divides them over whatever
//! checkpoint lattice the hint produces. The `arch_fleet` bench bin
//! gates the net effect: conditioned priors must reduce mean
//! samples-to-decision on at least one architecture with zero observed
//! type I/II drift against full-sweep ground truth.

use crate::sequencer::SequencerConfig;
use crate::source::Architecture;
use std::fmt;

/// Aggregated sequenced-screening observations (one architecture, any
/// number of devices). Mergeable, so tallies accumulate across sweep
/// cells, shards and sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqTally {
    /// Sequenced runs observed.
    pub runs: u64,
    /// Runs that latched `AcceptEarly`.
    pub early_accepts: u64,
    /// Runs that latched `RejectEarly` (the early failure mode).
    pub early_rejects: u64,
    /// Total samples-to-decision over all runs (early or full).
    pub seq_samples: u64,
    /// Samples-to-decision summed over early-stopped runs only.
    pub seq_samples_early: u64,
    /// What the same runs would have cost as full sweeps.
    pub full_samples: u64,
}

impl SeqTally {
    /// One observed run: `decision_samples` consumed, `full_samples`
    /// the full-sweep cost, and whether/how it stopped early.
    pub fn of_run(decision_samples: u64, full_samples: u64, early: Option<bool>) -> Self {
        SeqTally {
            runs: 1,
            early_accepts: u64::from(early == Some(true)),
            early_rejects: u64::from(early == Some(false)),
            seq_samples: decision_samples,
            seq_samples_early: if early.is_some() { decision_samples } else { 0 },
            full_samples,
        }
    }

    /// Early-stopped runs (accepts + rejects).
    pub fn early_stops(&self) -> u64 {
        self.early_accepts + self.early_rejects
    }

    /// Fraction of runs that stopped early (0 when empty).
    pub fn early_stop_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.early_stops() as f64 / self.runs as f64
        }
    }

    /// Mean samples-to-decision over all runs (0 when empty).
    pub fn mean_samples(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.seq_samples as f64 / self.runs as f64
        }
    }

    /// Mean samples-to-decision over early-stopped runs only (0 when
    /// none stopped early).
    pub fn mean_early_samples(&self) -> f64 {
        let early = self.early_stops();
        if early == 0 {
            0.0
        } else {
            self.seq_samples_early as f64 / early as f64
        }
    }

    /// Accumulates another tally.
    pub fn merge(&mut self, other: &SeqTally) {
        self.runs += other.runs;
        self.early_accepts += other.early_accepts;
        self.early_rejects += other.early_rejects;
        self.seq_samples += other.seq_samples;
        self.seq_samples_early += other.seq_samples_early;
        self.full_samples += other.full_samples;
    }
}

/// One architecture's accumulated prior plus the policy it implies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchPrior {
    /// The architecture this prior conditions on.
    pub architecture: Architecture,
    /// The accumulated observations.
    pub tally: SeqTally,
    /// The conditioned sequencer policy (the base policy until the
    /// tally clears the bank's evidence floor).
    pub policy: SequencerConfig,
}

/// Per-architecture priors bank: absorb calibration tallies, hand out
/// architecture-conditioned sequencer policies.
///
/// # Examples
///
/// ```
/// use bist_core::priors::{PriorsBank, SeqTally};
/// use bist_core::sequencer::SequencerConfig;
/// use bist_core::source::Architecture;
///
/// let mut bank = PriorsBank::new(SequencerConfig::default());
/// // 64 SAR devices all decided right at the first checkpoint (256).
/// for _ in 0..64 {
///     bank.absorb(Architecture::Sar, SeqTally::of_run(256, 1024, Some(true)));
/// }
/// let hint = bank.policy_for(Architecture::Sar);
/// assert!(hint.min_samples < 256); // evidence floor pulled down
/// assert_eq!(hint.alpha, 1e-3); // drift budgets untouched
/// assert!(hint.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorsBank {
    base: SequencerConfig,
    min_runs: u64,
    per_arch: [SeqTally; Architecture::COUNT],
}

/// Observations required before a hint departs from the base policy —
/// below this the prior is noise.
const DEFAULT_MIN_RUNS: u64 = 32;

/// The lowest evidence floor a hint will propose. Early checkpoints on
/// sparse evidence are wasted looks (the static judge needs
/// `MIN_CODES_FOR_STATS` complete codes, the dynamic judge whole
/// residual blocks) and every extra look spends Bonferroni budget.
const MIN_SAMPLES_FLOOR: u64 = 64;

/// The tightest checkpoint lattice a hint will propose.
const CHECK_INTERVAL_FLOOR: u64 = 16;

impl PriorsBank {
    /// An empty bank conditioning on `base`.
    pub fn new(base: SequencerConfig) -> Self {
        PriorsBank {
            base,
            min_runs: DEFAULT_MIN_RUNS,
            per_arch: [SeqTally::default(); Architecture::COUNT],
        }
    }

    /// Sets the evidence floor (observed runs per architecture) below
    /// which [`policy_for`](Self::policy_for) returns the base policy.
    pub fn with_min_runs(mut self, min_runs: u64) -> Self {
        self.min_runs = min_runs.max(1);
        self
    }

    /// The unconditioned base policy.
    pub fn base(&self) -> SequencerConfig {
        self.base
    }

    /// Accumulates observations for `arch`.
    pub fn absorb(&mut self, arch: Architecture, tally: SeqTally) {
        self.per_arch[arch.index()].merge(&tally);
    }

    /// The accumulated tally for `arch`.
    pub fn tally(&self, arch: Architecture) -> SeqTally {
        self.per_arch[arch.index()]
    }

    /// Total runs absorbed across architectures.
    pub fn runs(&self) -> u64 {
        self.per_arch.iter().map(|t| t.runs).sum()
    }

    /// The architecture-conditioned policy: the base drift budgets with
    /// `min_samples`/`check_interval` tightened toward where `arch`'s
    /// observed decisions land. Returns the base policy untouched while
    /// the prior is below the evidence floor or the architecture never
    /// stops early. The result always satisfies
    /// [`SequencerConfig::validate`].
    pub fn policy_for(&self, arch: Architecture) -> SequencerConfig {
        let t = self.tally(arch);
        if t.runs < self.min_runs || t.early_stops() == 0 {
            return self.base;
        }
        // Where this architecture's early decisions actually land. The
        // mean over early stops is dominated by the accept cluster (the
        // common case at production yield); full-sweep runs are excluded
        // so slow rejects don't drag the floor back up.
        let early_mean = t.mean_early_samples();
        // Pull the evidence floor to half the observed decision point:
        // decisions latching at the *first* checkpoint mean the evidence
        // was already sufficient when first examined, so earlier looks
        // are worth their Bonferroni cost. Clamp: never above the base
        // (priors only tighten), never below the statistical floor.
        let min_samples = ((early_mean / 2.0) as u64)
            .clamp(MIN_SAMPLES_FLOOR, self.base.min_samples)
            .max(1);
        // Tighten the lattice in proportion, so the first few looks
        // bracket the observed decision cluster instead of overshooting
        // it. An architecture that rarely stops early keeps the base
        // cadence — extra looks would only spend budget.
        let check_interval = if t.early_stop_rate() >= 0.5 {
            (self.base.check_interval / 2).max(CHECK_INTERVAL_FLOOR)
        } else {
            self.base.check_interval
        };
        SequencerConfig {
            min_samples,
            check_interval,
            ..self.base
        }
    }

    /// The full per-architecture view (tally + conditioned policy).
    pub fn prior(&self, arch: Architecture) -> ArchPrior {
        ArchPrior {
            architecture: arch,
            tally: self.tally(arch),
            policy: self.policy_for(arch),
        }
    }
}

impl fmt::Display for PriorsBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "priors (base min_samples {}, check_interval {})",
            self.base.min_samples, self.base.check_interval
        )?;
        for arch in Architecture::ALL {
            let p = self.prior(arch);
            writeln!(
                f,
                "  {:<8} runs {:>6}  early {:>5.1}%  mean-to-decision {:>8.1}  -> min {} / check {}",
                arch.label(),
                p.tally.runs,
                100.0 * p.tally.early_stop_rate(),
                p.tally.mean_samples(),
                p.policy.min_samples,
                p.policy.check_interval,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bank_returns_base_policy() {
        let bank = PriorsBank::new(SequencerConfig::default());
        for arch in Architecture::ALL {
            assert_eq!(bank.policy_for(arch), SequencerConfig::default());
        }
    }

    #[test]
    fn below_evidence_floor_returns_base() {
        let mut bank = PriorsBank::new(SequencerConfig::default());
        for _ in 0..DEFAULT_MIN_RUNS - 1 {
            bank.absorb(Architecture::Flash, SeqTally::of_run(256, 1024, Some(true)));
        }
        assert_eq!(
            bank.policy_for(Architecture::Flash),
            SequencerConfig::default()
        );
        bank.absorb(Architecture::Flash, SeqTally::of_run(256, 1024, Some(true)));
        assert_ne!(
            bank.policy_for(Architecture::Flash),
            SequencerConfig::default()
        );
    }

    #[test]
    fn hints_only_tighten_and_stay_valid() {
        let base = SequencerConfig::default();
        let mut bank = PriorsBank::new(base);
        // A spread of decision points, including slow ones.
        for (i, arch) in Architecture::ALL.iter().enumerate() {
            for k in 0..100u64 {
                let early = k % (i as u64 + 2) != 0;
                let s = if early { 256 + 64 * (k % 5) } else { 1500 };
                bank.absorb(
                    *arch,
                    SeqTally::of_run(s, 1500, early.then_some(k % 2 == 0)),
                );
            }
        }
        for arch in Architecture::ALL {
            let p = bank.policy_for(arch);
            assert!(p.validate().is_ok());
            assert!(p.min_samples <= base.min_samples, "{arch}");
            assert!(p.check_interval <= base.check_interval, "{arch}");
            assert_eq!(p.alpha, base.alpha);
            assert_eq!(p.beta, base.beta);
        }
    }

    #[test]
    fn no_early_stops_means_no_hint() {
        let mut bank = PriorsBank::new(SequencerConfig::default());
        for _ in 0..100 {
            bank.absorb(Architecture::Pipeline, SeqTally::of_run(1024, 1024, None));
        }
        assert_eq!(
            bank.policy_for(Architecture::Pipeline),
            SequencerConfig::default()
        );
    }

    #[test]
    fn tallies_merge_additively() {
        let mut a = SeqTally::of_run(256, 1024, Some(true));
        a.merge(&SeqTally::of_run(512, 1024, Some(false)));
        a.merge(&SeqTally::of_run(1024, 1024, None));
        assert_eq!(a.runs, 3);
        assert_eq!(a.early_accepts, 1);
        assert_eq!(a.early_rejects, 1);
        assert_eq!(a.seq_samples, 256 + 512 + 1024);
        assert_eq!(a.seq_samples_early, 256 + 512);
        assert!((a.early_stop_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.mean_early_samples() - 384.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_every_architecture() {
        let bank = PriorsBank::new(SequencerConfig::default());
        let s = bank.to_string();
        for arch in Architecture::ALL {
            assert!(s.contains(arch.label()), "{s}");
        }
    }
}
