//! The one front door for device screening: [`Screener`].
//!
//! Before this module the crate exposed eight free functions
//! (`run_static_bist*`, `run_dynamic_bist*`, `run_seq_*`) whose names
//! encoded three orthogonal choices — workload, backend, sequencing —
//! as separate entry points. The [`Screener`] folds them into one
//! builder:
//!
//! ```text
//!            Screener::new(workload)      which test?   Workload::{Static, Dynamic}
//!                .backend(backend)        which judge?  BehavioralBackend | RtlBackend
//!                .sequencer(policy)       early stop?   optional SequencerConfig
//!                .workers(n)              how many cores?  scoped pool (0 = all)
//!                .run(devices)            whole fleet → Vec<ScreenReport>
//!             or .screen_one(&adc, rng)   one device  → ScreenVerdict
//! ```
//!
//! [`Screener::run`] dispatches through the batch seam
//! ([`Backend::process_batch`] / [`Backend::process_dyn_batch`]): the
//! behavioural backend screens the fleet through the lane-parallel
//! engines of [`crate::batch`], the RTL backend clocks each device
//! through the gate-accurate datapath scalar-wise — same reports,
//! ordered by device index, either way. With [`Screener::workers`] the
//! fleet is additionally sharded across the scoped worker pool of
//! [`crate::pool`], each worker owning a reusable engine and claiming
//! small device chunks from a shared queue — reports stay bit-identical
//! for any worker count. [`Screener::screen_one`] is the scalar
//! single-device path, leaving per-code detail in the screener's
//! [`Scratch`] for inspection.

use std::sync::Arc;

use crate::backend::{Backend, BehavioralBackend};
use crate::batch::{BatchDevice, DynBatch, StaticBatch, StimulusTable, DEFAULT_LANE_WIDTH};
use crate::config::BistConfig;
use crate::dynamic::{plan_sine, DynScratch, DynamicConfig, DynamicVerdict};
use crate::harness::{plan_ramp, BistOutcome, BistVerdict, Scratch};
use crate::pool;
use crate::sequencer::{DynSequencer, SeqDecision, SeqOutcome, SequencerConfig, StaticSequencer};
use bist_adc::noise::NoiseConfig;
use bist_adc::stream::CodeStream;
use bist_adc::Adc;
use rand::RngCore;

/// Which test a [`Screener`] runs: the §4/§5 static linearity sweep or
/// the §2 dynamic spectral record, with the workload-level knobs
/// (noise model, ramp slope error) carried alongside the config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// The static LSB-monitor linearity test: ramp stimulus, DNL/INL
    /// window counting, upper-bit functional check.
    Static {
        /// The static test plan.
        config: BistConfig,
        /// Noise model applied to every device.
        noise: NoiseConfig,
        /// Relative ramp slope error shared by the batch.
        slope_error: f64,
    },
    /// The dynamic test: coherent sine record through the streaming
    /// Goertzel bank to a SINAD/THD/ENOB/noise-power verdict.
    Dynamic {
        /// The dynamic test plan.
        config: DynamicConfig,
        /// Noise model applied to every device.
        noise: NoiseConfig,
    },
}

impl Workload {
    /// A noiseless static linearity workload with an ideal-slope ramp.
    pub fn static_ramp(config: BistConfig) -> Self {
        Workload::Static {
            config,
            noise: NoiseConfig::noiseless(),
            slope_error: 0.0,
        }
    }

    /// A noiseless dynamic (coherent sine) workload.
    pub fn dynamic_sine(config: DynamicConfig) -> Self {
        Workload::Dynamic {
            config,
            noise: NoiseConfig::noiseless(),
        }
    }

    /// Sets the noise model devices are screened under.
    pub fn with_noise(mut self, n: NoiseConfig) -> Self {
        match &mut self {
            Workload::Static { noise, .. } | Workload::Dynamic { noise, .. } => *noise = n,
        }
        self
    }

    /// Sets the relative ramp slope error (static workloads only).
    ///
    /// # Panics
    ///
    /// Panics on a dynamic workload — the sine plan has no slope.
    pub fn with_slope_error(mut self, err: f64) -> Self {
        match &mut self {
            Workload::Static { slope_error, .. } => *slope_error = err,
            Workload::Dynamic { .. } => {
                panic!("slope error applies to the static ramp workload only")
            }
        }
        self
    }
}

/// One device's decision from a [`Screener`], tagged by workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScreenVerdict {
    /// Static linearity outcome.
    Static(SeqOutcome<BistVerdict>),
    /// Dynamic spectral outcome.
    Dynamic(SeqOutcome<DynamicVerdict>),
}

impl ScreenVerdict {
    /// The device-level accept decision (early-stopped devices are
    /// judged on their sequencer-visible tallies, exactly as the
    /// silicon would latch them).
    pub fn accepted(&self) -> bool {
        match self {
            ScreenVerdict::Static(o) => o.accepted(),
            ScreenVerdict::Dynamic(o) => o.accepted(),
        }
    }

    /// The sequencer decision (`Continue` when unsequenced or the
    /// sweep ran to completion).
    pub fn decision(&self) -> SeqDecision {
        match self {
            ScreenVerdict::Static(o) => o.decision,
            ScreenVerdict::Dynamic(o) => o.decision,
        }
    }

    /// Whether a sequencer ended the test before the full sweep.
    pub fn stopped_early(&self) -> bool {
        match self {
            ScreenVerdict::Static(o) => o.stopped_early(),
            ScreenVerdict::Dynamic(o) => o.stopped_early(),
        }
    }

    /// Samples consumed before the verdict latched.
    pub fn samples(&self) -> u64 {
        match self {
            ScreenVerdict::Static(o) => o.samples_consumed(),
            ScreenVerdict::Dynamic(o) => o.samples_consumed(),
        }
    }

    /// The static outcome, if this verdict came from a static workload.
    pub fn as_static(&self) -> Option<&SeqOutcome<BistVerdict>> {
        match self {
            ScreenVerdict::Static(o) => Some(o),
            ScreenVerdict::Dynamic(_) => None,
        }
    }

    /// The dynamic outcome, if this verdict came from a dynamic
    /// workload.
    pub fn as_dynamic(&self) -> Option<&SeqOutcome<DynamicVerdict>> {
        match self {
            ScreenVerdict::Static(_) => None,
            ScreenVerdict::Dynamic(o) => Some(o),
        }
    }
}

/// One device's report from [`Screener::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenReport {
    /// Zero-based position of the device in the iterator passed to
    /// [`Screener::run`].
    pub device: usize,
    /// The device's decision and verdict.
    pub verdict: ScreenVerdict,
}

/// The screening front door: one workload, one backend, optional
/// early-stop sequencing — over a fleet or a single device.
///
/// ```
/// use bist_adc::spec::LinearitySpec;
/// use bist_adc::transfer::TransferFunction;
/// use bist_adc::types::{Resolution, Volts};
/// use bist_core::config::BistConfig;
/// use bist_core::screener::{Screener, Workload};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
///     .counter_bits(5)
///     .build()
///     .unwrap();
/// let devices = (0..4).map(|i| {
///     let adc = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
///     (adc, StdRng::seed_from_u64(i))
/// });
/// let reports = Screener::new(Workload::static_ramp(config)).run(devices);
/// assert_eq!(reports.len(), 4);
/// assert!(reports.iter().all(|r| r.verdict.accepted()));
/// ```
#[derive(Debug)]
pub struct Screener<B = BehavioralBackend> {
    workload: Workload,
    backend: B,
    sequencer: Option<SequencerConfig>,
    lane_width: usize,
    workers: usize,
    chunk: usize,
    scratch: Scratch,
    dyn_scratch: DynScratch,
    static_seq: Option<StaticSequencer>,
    dyn_seq: Option<DynSequencer>,
}

impl Screener<BehavioralBackend> {
    /// A screener for `workload` judged by the behavioural reference
    /// backend (swap with [`Screener::backend`]).
    pub fn new(workload: Workload) -> Self {
        Screener {
            workload,
            backend: BehavioralBackend,
            sequencer: None,
            lane_width: DEFAULT_LANE_WIDTH,
            workers: 1,
            chunk: pool::DEFAULT_CHUNK,
            scratch: Scratch::new(),
            dyn_scratch: DynScratch::new(),
            static_seq: None,
            dyn_seq: None,
        }
    }
}

impl<B: Backend> Screener<B> {
    /// Swaps the verdict backend (e.g. for
    /// [`crate::backend::RtlBackend`] gate-accurate screening).
    pub fn backend<B2: Backend>(self, backend: B2) -> Screener<B2> {
        Screener {
            workload: self.workload,
            backend,
            sequencer: self.sequencer,
            lane_width: self.lane_width,
            workers: self.workers,
            chunk: self.chunk,
            scratch: self.scratch,
            dyn_scratch: self.dyn_scratch,
            static_seq: None,
            dyn_seq: None,
        }
    }

    /// Screens under the uncertainty-guided early-stop sequencer.
    pub fn sequencer(mut self, policy: SequencerConfig) -> Self {
        self.sequencer = Some(policy);
        self
    }

    /// Sets the batch lane width used by [`Screener::run`].
    pub fn lane_width(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "a screener needs at least one lane");
        self.lane_width = lanes;
        self
    }

    /// Shards [`Screener::run`] across a scoped worker pool of
    /// `workers` threads (`0` = the host's available parallelism; the
    /// default `1` keeps the in-thread engine). Each pooled worker
    /// owns its own batch engine and a `B::default()` backend, and
    /// reports stay bit-identical for any worker count — see
    /// [`crate::pool`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the size of the device chunks pooled workers claim from
    /// the shared queue (≥ 1; default [`pool::DEFAULT_CHUNK`]). Small
    /// chunks keep early-stopping workers fed; large ones amortise the
    /// claim.
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "a screener needs a positive chunk size");
        self.chunk = chunk;
        self
    }

    /// The configured workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Screens a fleet: one `(adc, rng)` pair per device, reports
    /// ordered by the device's position in the iterator. Dispatches
    /// through the backend's batch seam, so the behavioural backend
    /// runs the lane-parallel engine and the RTL backend the scalar
    /// gate-accurate loop — identical reports either way. With
    /// [`Screener::workers`] > 1 (or `0` on a multi-core host) the
    /// fleet is sharded across the scoped pool of [`crate::pool`];
    /// reports stay bit-identical for any worker count.
    pub fn run<A, R, I>(&mut self, devices: I) -> Vec<ScreenReport>
    where
        A: Adc + Send,
        R: RngCore + Send,
        I: IntoIterator<Item = (A, R)>,
        B: Default,
    {
        let mut reports = Vec::new();
        self.run_into(devices, &mut reports);
        reports
    }

    /// [`Screener::run`] appending into a caller-owned buffer — the
    /// reusable-engine path: the report `Vec`'s capacity (and, for
    /// pooled runs, each worker's batch engine across its chunks) is
    /// reused instead of reallocated per fleet.
    ///
    /// Pooled workers judge with `B::default()` backends — both
    /// [`BehavioralBackend`] and [`crate::backend::RtlBackend`]
    /// default to exactly their `new` state, so verdicts don't depend
    /// on which worker (or the single-threaded path) screened a
    /// device. On the dynamic workload the sine table is planned once
    /// and shared immutably by every worker.
    pub fn run_into<A, R, I>(&mut self, devices: I, out: &mut Vec<ScreenReport>)
    where
        A: Adc + Send,
        R: RngCore + Send,
        I: IntoIterator<Item = (A, R)>,
        B: Default,
    {
        let workers = pool::resolve_workers(self.workers);
        let (lane_width, sequencer, chunk) = (self.lane_width, self.sequencer, self.chunk);
        match self.workload {
            Workload::Static {
                config,
                noise,
                slope_error,
            } => {
                let make_batch = move || {
                    let mut batch = StaticBatch::new(config)
                        .with_noise(noise)
                        .with_slope_error(slope_error)
                        .with_lane_width(lane_width);
                    if let Some(policy) = sequencer {
                        batch = batch.with_sequencer(policy);
                    }
                    batch
                };
                let fleet = devices
                    .into_iter()
                    .enumerate()
                    .map(|(i, (adc, rng))| BatchDevice::new(i, adc, rng));
                let reports = if workers <= 1 {
                    let mut batch = make_batch();
                    for dev in fleet {
                        batch.push(dev);
                    }
                    self.backend.process_batch(&mut batch);
                    batch.take_reports()
                } else {
                    pool::run_static_pool(fleet, workers, chunk, make_batch, B::default)
                };
                out.extend(reports.into_iter().map(|r| ScreenReport {
                    device: r.device,
                    verdict: ScreenVerdict::Static(r.outcome),
                }));
            }
            Workload::Dynamic { config, noise } => {
                let fleet = devices
                    .into_iter()
                    .enumerate()
                    .map(|(i, (adc, rng))| BatchDevice::new(i, adc, rng));
                let reports = if workers <= 1 {
                    let mut batch = DynBatch::new(config)
                        .with_noise(noise)
                        .with_lane_width(lane_width);
                    if let Some(policy) = sequencer {
                        batch = batch.with_sequencer(policy);
                    }
                    for dev in fleet {
                        batch.push(dev);
                    }
                    self.backend.process_dyn_batch(&mut batch);
                    batch.take_reports()
                } else {
                    // Plan the sine once for the whole pool, keyed on
                    // the first device (lanes whose plan differs fall
                    // back bit-exactly to per-sample evaluation), so
                    // every worker reads one immutable table.
                    let fleet: Vec<BatchDevice<A, R>> = fleet.collect();
                    let shared = (noise.jitter_seconds() == 0.0)
                        .then(|| {
                            fleet
                                .first()
                                .map(|d| StimulusTable::plan_for(&d.adc, &config))
                        })
                        .flatten();
                    let make_batch = move || {
                        let mut batch = DynBatch::new(config)
                            .with_noise(noise)
                            .with_lane_width(lane_width);
                        if let Some(policy) = sequencer {
                            batch = batch.with_sequencer(policy);
                        }
                        if let Some(table) = &shared {
                            batch = batch.with_shared_table(Arc::clone(table));
                        }
                        batch
                    };
                    pool::run_dyn_pool(fleet, workers, chunk, make_batch, B::default)
                };
                out.extend(reports.into_iter().map(|r| ScreenReport {
                    device: r.device,
                    verdict: ScreenVerdict::Dynamic(r.outcome),
                }));
            }
        }
    }

    /// Screens one device through the scalar engine, leaving per-code
    /// detail (as much as the backend models) in
    /// [`Screener::scratch`].
    pub fn screen_one<A: Adc + ?Sized, R: RngCore + ?Sized>(
        &mut self,
        adc: &A,
        rng: &mut R,
    ) -> ScreenVerdict {
        match self.workload {
            Workload::Static {
                config,
                noise,
                slope_error,
            } => {
                let (ramp, sampling) = plan_ramp(adc, &config);
                let ramp = ramp.with_slope_error(slope_error);
                let stream = CodeStream::noisy(adc, &ramp, sampling, &noise, rng);
                let outcome = if let Some(policy) = self.sequencer {
                    let seq = self
                        .static_seq
                        .get_or_insert_with(|| StaticSequencer::new(policy));
                    self.backend
                        .process_sequenced(&config, seq, stream, &mut self.scratch)
                } else {
                    let verdict = self.backend.process(&config, stream, &mut self.scratch);
                    SeqOutcome {
                        decision: SeqDecision::Continue,
                        verdict,
                    }
                };
                ScreenVerdict::Static(outcome)
            }
            Workload::Dynamic { config, noise } => {
                let (sine, sampling) = plan_sine(adc, &config);
                let stream = CodeStream::noisy(adc, &sine, sampling, &noise, rng);
                let outcome = if let Some(policy) = self.sequencer {
                    let seq = self
                        .dyn_seq
                        .get_or_insert_with(|| DynSequencer::new(policy));
                    self.backend
                        .process_dyn_sequenced(&config, seq, stream, &mut self.dyn_scratch)
                } else {
                    let verdict = self
                        .backend
                        .process_dyn(&config, stream, &mut self.dyn_scratch);
                    SeqOutcome {
                        decision: SeqDecision::Continue,
                        verdict,
                    }
                };
                ScreenVerdict::Dynamic(outcome)
            }
        }
    }

    /// Per-sweep detail left by the last [`Screener::screen_one`] on a
    /// static workload.
    pub fn scratch(&self) -> &Scratch {
        &self.scratch
    }

    /// Assembles the full per-code [`BistOutcome`] for the most recent
    /// static [`Screener::screen_one`], or `None` for a dynamic
    /// verdict.
    pub fn take_static_outcome(&mut self, verdict: &ScreenVerdict) -> Option<BistOutcome> {
        match verdict {
            ScreenVerdict::Static(o) => Some(self.scratch.take_outcome(o.verdict)),
            ScreenVerdict::Dynamic(_) => None,
        }
    }
}
