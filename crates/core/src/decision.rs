//! Test decisions and type I/II error accounting.
//!
//! §3 frames test quality through four conditional probabilities:
//! `P(accept|good)`, `P(reject|good)` (type I), `P(accept|faulty)`
//! (type II) and `P(reject|faulty)`. [`ConfusionMatrix`] accumulates the
//! four outcomes over a batch and reports both the conditional rates the
//! paper tabulates and the joint fractions relevant to shipped-part
//! quality (the 10–100 ppm language of §3).

use std::fmt;

/// Outcome of one device test against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Good device accepted — correct.
    TrueAccept,
    /// Good device rejected — type I error (yield loss).
    TypeI,
    /// Faulty device accepted — type II error (test escape).
    TypeII,
    /// Faulty device rejected — correct.
    TrueReject,
}

impl Outcome {
    /// Classifies a single decision.
    pub fn classify(truth_good: bool, accepted: bool) -> Outcome {
        match (truth_good, accepted) {
            (true, true) => Outcome::TrueAccept,
            (true, false) => Outcome::TypeI,
            (false, true) => Outcome::TypeII,
            (false, false) => Outcome::TrueReject,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::TrueAccept => "true accept",
            Outcome::TypeI => "type I (good rejected)",
            Outcome::TypeII => "type II (faulty accepted)",
            Outcome::TrueReject => "true reject",
        };
        f.write_str(s)
    }
}

/// Counts of the four outcomes over a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    true_accept: u64,
    type_i: u64,
    type_ii: u64,
    true_reject: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Records one device.
    pub fn record(&mut self, truth_good: bool, accepted: bool) {
        match Outcome::classify(truth_good, accepted) {
            Outcome::TrueAccept => self.true_accept += 1,
            Outcome::TypeI => self.type_i += 1,
            Outcome::TypeII => self.type_ii += 1,
            Outcome::TrueReject => self.true_reject += 1,
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_accept += other.true_accept;
        self.type_i += other.type_i;
        self.type_ii += other.type_ii;
        self.true_reject += other.true_reject;
    }

    /// Total devices recorded.
    pub fn total(&self) -> u64 {
        self.true_accept + self.type_i + self.type_ii + self.true_reject
    }

    /// Number of ground-truth-good devices.
    pub fn good(&self) -> u64 {
        self.true_accept + self.type_i
    }

    /// Number of ground-truth-faulty devices.
    pub fn faulty(&self) -> u64 {
        self.type_ii + self.true_reject
    }

    /// Raw type I count (good rejected).
    pub fn type_i_count(&self) -> u64 {
        self.type_i
    }

    /// Raw type II count (faulty accepted).
    pub fn type_ii_count(&self) -> u64 {
        self.type_ii
    }

    /// Conditional type I rate `P(reject | good)` — the paper's Table 1
    /// convention. `None` when no good devices were seen.
    pub fn type_i_rate(&self) -> Option<f64> {
        if self.good() == 0 {
            None
        } else {
            Some(self.type_i as f64 / self.good() as f64)
        }
    }

    /// Conditional type II rate `P(accept | faulty)`. `None` when no
    /// faulty devices were seen.
    pub fn type_ii_rate(&self) -> Option<f64> {
        if self.faulty() == 0 {
            None
        } else {
            Some(self.type_ii as f64 / self.faulty() as f64)
        }
    }

    /// Joint type I fraction `P(reject ∧ good)` over all devices.
    pub fn type_i_joint(&self) -> Option<f64> {
        if self.total() == 0 {
            None
        } else {
            Some(self.type_i as f64 / self.total() as f64)
        }
    }

    /// Joint type II fraction `P(accept ∧ faulty)` over all devices —
    /// the shipped-defect (ppm) figure.
    pub fn type_ii_joint(&self) -> Option<f64> {
        if self.total() == 0 {
            None
        } else {
            Some(self.type_ii as f64 / self.total() as f64)
        }
    }

    /// The observed yield `P(good)`.
    pub fn yield_fraction(&self) -> Option<f64> {
        if self.total() == 0 {
            None
        } else {
            Some(self.good() as f64 / self.total() as f64)
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} (good {}, faulty {}): type I {}({}), type II {}({})",
            self.total(),
            self.good(),
            self.faulty(),
            self.type_i,
            self.type_i_rate()
                .map_or_else(|| "-".to_owned(), |r| format!("{r:.4}")),
            self.type_ii,
            self.type_ii_rate()
                .map_or_else(|| "-".to_owned(), |r| format!("{r:.4}")),
        )
    }
}

impl Extend<(bool, bool)> for ConfusionMatrix {
    fn extend<T: IntoIterator<Item = (bool, bool)>>(&mut self, iter: T) {
        for (truth, accepted) in iter {
            self.record(truth, accepted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert_eq!(Outcome::classify(true, true), Outcome::TrueAccept);
        assert_eq!(Outcome::classify(true, false), Outcome::TypeI);
        assert_eq!(Outcome::classify(false, true), Outcome::TypeII);
        assert_eq!(Outcome::classify(false, false), Outcome::TrueReject);
    }

    #[test]
    fn rates_from_known_counts() {
        let mut m = ConfusionMatrix::new();
        // 100 good (10 rejected), 50 faulty (5 accepted).
        for i in 0..100 {
            m.record(true, i >= 10);
        }
        for i in 0..50 {
            m.record(false, i < 5);
        }
        assert_eq!(m.total(), 150);
        assert_eq!(m.good(), 100);
        assert_eq!(m.faulty(), 50);
        assert!((m.type_i_rate().unwrap() - 0.1).abs() < 1e-12);
        assert!((m.type_ii_rate().unwrap() - 0.1).abs() < 1e-12);
        assert!((m.type_i_joint().unwrap() - 10.0 / 150.0).abs() < 1e-12);
        assert!((m.type_ii_joint().unwrap() - 5.0 / 150.0).abs() < 1e-12);
        assert!((m.yield_fraction().unwrap() - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_has_no_rates() {
        let m = ConfusionMatrix::new();
        assert!(m.type_i_rate().is_none());
        assert!(m.type_ii_rate().is_none());
        assert!(m.yield_fraction().is_none());
    }

    #[test]
    fn all_good_batch_no_type_ii_rate() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true);
        assert!(m.type_ii_rate().is_none());
        assert_eq!(m.type_i_rate(), Some(0.0));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new();
        a.record(true, false);
        let mut b = ConfusionMatrix::new();
        b.record(false, true);
        b.record(true, true);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.type_i_count(), 1);
        assert_eq!(a.type_ii_count(), 1);
    }

    #[test]
    fn extend_from_pairs() {
        let mut m = ConfusionMatrix::new();
        m.extend([(true, true), (false, false), (true, false)]);
        assert_eq!(m.total(), 3);
        assert_eq!(m.type_i_count(), 1);
    }

    #[test]
    fn displays() {
        let mut m = ConfusionMatrix::new();
        m.record(true, false);
        assert!(m.to_string().contains("type I 1"));
        assert!(Outcome::TypeII.to_string().contains("faulty accepted"));
    }
}
