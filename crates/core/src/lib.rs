//! # bist-core
//!
//! The built-in self-test methodology of R. de Vries, T. Zwemstra,
//! E.M.J.G. Bruls and P.P.L. Regtien, *Built-In Self-Test Methodology
//! for A/D Converters*, ED&TC 1997 — the primary contribution of this
//! reproduction.
//!
//! The method tests an A/D converter's **static linearity on-chip** by
//! monitoring only its least-significant bit while a slow ramp sweeps the
//! input: the sample count between LSB transitions *is* the code width in
//! units of `Δs = U/f_sample` (Eq. 5), so a counter plus a window
//! comparator performs the DNL test (Eqs. 3–4) and an accumulator the INL
//! test, while the remaining bits are verified by a counter clocked on
//! the LSB's falling edge (Figure 2). Faster stimuli need `q_min > 1`
//! off-chip bits (Eqs. 1–2).
//!
//! Modules:
//!
//! * [`config`] — [`config::BistConfig`]: spec + counter size + Δs.
//! * [`limits`] — Eqs. 3–5 (count window, step size, slope planning).
//! * [`qmin`] — Eqs. 1–2 (partial-BIST planning).
//! * [`lsb_monitor`] / [`functional`] — behavioural reference models of
//!   the Figure-4 and Figure-2 blocks (bit-exact vs `bist-rtl`), each
//!   exposed as a streaming accumulator consuming one sample at a time.
//! * [`analytic`] — the §3 error theory (Eqs. 6–12): trapezoid
//!   acceptance, Gaussian widths, per-code and device-level type I/II.
//! * [`yield_model`] — parametric yield (the 30 % / 1.4×10⁻⁴ anchors).
//! * [`harness`] — BIST vs reference vs conventional test execution as
//!   a fused single-pass pipeline (stimulus → code stream →
//!   accumulators), with a reusable [`harness::Scratch`] making the
//!   per-device hot path allocation-free.
//! * [`backend`] — the one pluggable verdict seam ([`backend::Backend`])
//!   for that pipeline: the behavioural accumulators or the
//!   gate-accurate `bist-rtl` datapath ([`backend::RtlBackend`]),
//!   bit-exact with each other, over scalar devices and whole batches.
//! * [`batch`] — lane-parallel fleet screening: N devices advance in
//!   lockstep through structure-of-arrays accumulator/Goertzel state,
//!   with run-skipping on noiseless ramps and a shared sine table —
//!   bit-exact to the scalar engines, several times faster.
//! * [`pool`] — the cores axis over [`batch`]: a scoped worker pool
//!   where each worker owns a reusable batch engine and claims small
//!   device chunks from a shared atomic-cursor queue, merging reports
//!   by device index so output is bit-identical for any worker count.
//! * [`ring`] / [`shard`] — the resident-service substrate consumed by
//!   `bist-serve`: a bounded MPMC ring with explicit backpressure
//!   ([`ring::Enqueue`]) and a long-lived worker shard
//!   ([`shard::ResidentShard`]) that keeps the batch engines warm
//!   between bursts and streams id-tagged verdicts, allocation-free in
//!   steady state.
//! * [`source`] — the device-generation seam next to the front door:
//!   the object-safe [`source::DeviceSource`] trait (flash, iid-widths,
//!   SAR, pipeline), the `Copy` [`source::SourceSpec`] dispatch form,
//!   mixed-architecture [`source::Zoo`] fleets with a stable per-device
//!   `(seed, index) → (arch, rng)` assignment, and the canonical
//!   seeded-stream derivations ([`source::stream_rng`]).
//! * [`priors`] — per-architecture empirical priors accumulated from
//!   sequenced screening (samples-to-decision, early-stop rate,
//!   decision-mode tallies) handing the sequencer
//!   architecture-conditioned `min_samples`/`check_interval` hints.
//! * [`screener`] — the [`screener::Screener`] front door tying it all
//!   together: one builder for workload × backend × sequencing ×
//!   worker count, over a fleet or a single device.
//! * [`dynamic`] — the §2 dynamic workload as a streaming subsystem:
//!   coherent sine stimulus → code stream → Goertzel-bank accumulation
//!   → SINAD/THD/ENOB/noise-power [`dynamic::DynamicVerdict`], judged
//!   through the same backend seam (behavioural bank or fixed-point
//!   `bist_rtl::DynBistTop`).
//! * [`sequencer`] — uncertainty-guided early-stop sequencing over
//!   both workloads: Welford-based confidence estimates on the
//!   streaming accumulators let a sweep accept or reject long before
//!   the full ramp/record, with configurable type I/II drift budgets,
//!   and both backends stop at the identical sample index.
//! * [`decision`] — confusion-matrix accounting of type I/II errors.
//! * [`report`] — text tables for the experiment binaries.
//!
//! ## Example: screen a mismatched flash converter
//!
//! ```
//! use bist_adc::flash::FlashConfig;
//! use bist_adc::spec::LinearitySpec;
//! use bist_adc::transfer::Adc;
//! use bist_adc::types::Resolution;
//! use bist_core::config::BistConfig;
//! use bist_core::screener::{Screener, Workload};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), bist_core::limits::PlanLimitsError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let device = FlashConfig::paper_device().sample(&mut rng);
//!
//! let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
//!     .counter_bits(4) // the paper's smallest counter
//!     .build()?;
//! let verdict = Screener::new(Workload::static_ramp(cfg)).screen_one(&device, &mut rng);
//!
//! // Compare the BIST verdict with the true classification.
//! let truth = LinearitySpec::paper_stringent()
//!     .classify(&device.transfer().expect("flash states its transfer"));
//! println!("BIST {} vs truth {}", verdict.accepted(), truth.good);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
pub mod backend;
pub mod batch;
pub mod config;
pub mod decision;
pub mod dynamic;
pub mod economics;
pub mod functional;
pub mod harness;
pub mod limits;
pub mod lsb_monitor;
pub mod pool;
pub mod priors;
pub mod qmin;
pub mod report;
pub mod ring;
pub mod screener;
pub mod sequencer;
pub mod shard;
pub mod source;
pub mod static_params;
pub mod yield_model;

pub use analytic::{
    acceptance_probability, code_probabilities, device_probabilities, WidthDistribution,
};
pub use backend::{Backend, BehavioralBackend, RtlBackend};
pub use batch::{BatchDevice, DynBatch, DynReport, StaticBatch, StaticReport};
pub use config::BistConfig;
pub use decision::ConfusionMatrix;
pub use dynamic::{DynChecks, DynScratch, DynamicConfig, DynamicLimits, DynamicVerdict};
pub use harness::{BistOutcome, BistVerdict, Scratch};
pub use limits::CountLimits;
pub use priors::{ArchPrior, PriorsBank, SeqTally};
pub use qmin::QminPlan;
pub use ring::{Enqueue, Ring};
pub use screener::{ScreenReport, ScreenVerdict, Screener, Workload};
pub use sequencer::{DynSequencer, SeqDecision, SeqOutcome, SequencerConfig, StaticSequencer};
pub use shard::{JobKind, ResidentShard, ShardJob, ShardPlan, ShardVerdict};
pub use source::{Architecture, DeviceSource, DnlSignature, IidWidthSource, SourceSpec, Zoo};
pub use yield_model::YieldModel;
