//! Partial-BIST planning: Eqs. 1–2 of the paper.
//!
//! In the partial BIST of Figure 2 the bits `1..=q` are processed
//! off-chip while bits `q+1..n` are verified on-chip. For the output
//! codes to be reconstructable from bit `q` alone, bit `q`'s waveform
//! must be sampled at least twice per period (Shannon): for a sawtooth
//! sweeping all `2ⁿ` codes at `f_stimulus`, bit `q` completes a period
//! every `2^q` codes, so
//!
//! ```text
//! q_min = ceil( log2( 2^(n+1) · f_stimulus / f_sample  +  NL ) )      (Eq. 1)
//! NL    = min( DNL · 2^(q_min − 1),  2 · INL )                        (Eq. 2)
//! ```
//!
//! `NL` is the linearity headroom: converter non-linearity can locally
//! compress a `2^(q−1)`-code half-period, raising the local frequency of
//! bit `q`. The two equations are mutually dependent; [`QminPlan::q_min`]
//! solves them by fixed-point iteration (monotone and bounded, so it
//! terminates). The 1997 text is partly corrupted in archival scans; this
//! reconstruction follows the Shannon argument the paper states and
//! reproduces its qualitative behaviour (q → 1 for slow stimuli, q → n
//! near Nyquist-rate sweeps).

use bist_adc::types::Resolution;
use std::fmt;

/// Planner for the minimum number of off-chip bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QminPlan {
    resolution: Resolution,
    dnl_spec_lsb: f64,
    inl_spec_lsb: f64,
}

impl QminPlan {
    /// Creates a planner for a converter with the given DNL/INL
    /// specification (in LSB).
    ///
    /// # Panics
    ///
    /// Panics if either spec is negative.
    pub fn new(resolution: Resolution, dnl_spec_lsb: f64, inl_spec_lsb: f64) -> Self {
        assert!(dnl_spec_lsb >= 0.0, "DNL spec must be non-negative");
        assert!(inl_spec_lsb >= 0.0, "INL spec must be non-negative");
        QminPlan {
            resolution,
            dnl_spec_lsb,
            inl_spec_lsb,
        }
    }

    /// The linearity term of Eq. 2 for a candidate `q`.
    pub fn nl(&self, q: u32) -> f64 {
        let dnl_term = self.dnl_spec_lsb * (1u64 << q.saturating_sub(1)) as f64;
        let inl_term = 2.0 * self.inl_spec_lsb;
        dnl_term.min(inl_term)
    }

    /// Solves Eqs. 1–2: the minimum number of LSBs that must be
    /// observed off-chip for a sawtooth at `f_stimulus` sampled at
    /// `f_sample`.
    ///
    /// Returns `None` when even `q = n` does not satisfy the bound (the
    /// stimulus is too fast to test the converter at all).
    ///
    /// # Panics
    ///
    /// Panics if either frequency is not positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use bist_adc::types::Resolution;
    /// use bist_core::qmin::QminPlan;
    ///
    /// let plan = QminPlan::new(Resolution::SIX_BIT, 0.5, 1.0);
    /// // A very slow ramp needs only the LSB: full static BIST.
    /// assert_eq!(plan.q_min(1.0, 1_000_000.0), Some(1));
    /// // Faster stimuli need more off-chip bits.
    /// assert!(plan.q_min(50_000.0, 1_000_000.0) > Some(1));
    /// ```
    pub fn q_min(&self, f_stimulus: f64, f_sample: f64) -> Option<u32> {
        assert!(f_stimulus > 0.0, "stimulus frequency must be positive");
        assert!(f_sample > 0.0, "sample frequency must be positive");
        let n = self.resolution.bits();
        let speed = (1u64 << (n + 1)) as f64 * f_stimulus / f_sample;
        // Fixed point: q = max(1, ceil(log2(speed + NL(q)))).
        let mut q = 1u32;
        for _ in 0..=n + 2 {
            let arg = speed + self.nl(q);
            let next = if arg <= 1.0 {
                1
            } else {
                arg.log2().ceil().max(1.0) as u32
            };
            if next == q {
                return if q <= n { Some(q) } else { None };
            }
            q = next;
        }
        if q <= n {
            Some(q)
        } else {
            None
        }
    }

    /// The highest stimulus frequency (relative to `f_sample`) testable
    /// with `q` off-chip bits: inverts Eq. 1.
    ///
    /// # Panics
    ///
    /// Panics if `q` is 0 or exceeds the resolution.
    pub fn max_stimulus_ratio(&self, q: u32) -> f64 {
        assert!(q >= 1 && q <= self.resolution.bits(), "q must be 1..=n");
        let n = self.resolution.bits();
        let headroom = (1u64 << q) as f64 - self.nl(q);
        (headroom / (1u64 << (n + 1)) as f64).max(0.0)
    }

    /// Sweeps `q_min` over a logarithmic range of stimulus/sample
    /// frequency ratios, producing `(ratio, q_min)` rows.
    pub fn sweep(&self, ratios: &[f64], f_sample: f64) -> Vec<(f64, Option<u32>)> {
        ratios
            .iter()
            .map(|&r| (r, self.q_min(r * f_sample, f_sample)))
            .collect()
    }
}

impl fmt::Display for QminPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "q_min plan for {} (DNL {} LSB, INL {} LSB)",
            self.resolution, self.dnl_spec_lsb, self.inl_spec_lsb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_plan() -> QminPlan {
        QminPlan::new(Resolution::SIX_BIT, 0.5, 1.0)
    }

    #[test]
    fn slow_stimulus_needs_only_lsb() {
        // The paper's central claim: "At low test signal frequencies only
        // the least significant bit needs to be monitored".
        let plan = paper_plan();
        assert_eq!(plan.q_min(0.1, 1e6), Some(1));
        assert_eq!(plan.q_min(1.0, 1e6), Some(1));
    }

    #[test]
    fn q_min_is_monotone_in_stimulus_frequency() {
        let plan = paper_plan();
        let mut last = 0;
        for exp in -6..=-1 {
            let ratio = 10f64.powi(exp);
            if let Some(q) = plan.q_min(ratio * 1e6, 1e6) {
                assert!(q >= last, "ratio {ratio}: q {q} < {last}");
                last = q;
            }
        }
        assert!(last > 1, "fast stimuli should need more bits");
    }

    #[test]
    fn too_fast_stimulus_is_untestable() {
        let plan = paper_plan();
        // Stimulus at half the sample rate sweeps codes far too fast.
        assert_eq!(plan.q_min(5e5, 1e6), None);
    }

    #[test]
    fn full_resolution_boundary() {
        let plan = paper_plan();
        // Just inside the q = n ratio the plan returns n.
        let r = plan.max_stimulus_ratio(6);
        assert!(r > 0.0);
        assert_eq!(plan.q_min(r * 0.99 * 1e6, 1e6), Some(6));
    }

    #[test]
    fn nl_term_selects_minimum() {
        let plan = paper_plan();
        // For small q: DNL·2^{q-1} = 0.5 < 2·INL = 2 → DNL term wins.
        assert!((plan.nl(1) - 0.5).abs() < 1e-12);
        // For larger q the INL bound caps it.
        assert!((plan.nl(4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_ratio_inverts_q_min() {
        let plan = paper_plan();
        for q in 1..=5 {
            let r = plan.max_stimulus_ratio(q);
            // Slightly below the boundary, q suffices.
            let got = plan.q_min(r * 0.98 * 1e6, 1e6).unwrap();
            assert!(got <= q, "q {q}: got {got}");
            // Slightly above, it no longer does.
            let above = plan.q_min((r * 1.2 + 1e-9) * 1e6, 1e6);
            assert!(above.is_none() || above.unwrap() > q, "q {q}: {above:?}");
        }
    }

    #[test]
    fn ideal_converter_pure_shannon() {
        // With zero NL the bound is pure Shannon: q_min = ceil(log2(
        // 2^{n+1}·ratio)).
        let plan = QminPlan::new(Resolution::SIX_BIT, 0.0, 0.0);
        // ratio 2^-7 → 2^{7}·2^{-7} = 1 → q = 1.
        assert_eq!(plan.q_min(1e6 / 128.0, 1e6), Some(1));
        // ratio 2^-4: arg = 8 → q = 3.
        assert_eq!(plan.q_min(1e6 / 16.0, 1e6), Some(3));
    }

    #[test]
    fn sweep_produces_rows() {
        let plan = paper_plan();
        let rows = plan.sweep(&[1e-6, 1e-3, 0.5], 1e6);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, Some(1));
        assert_eq!(rows[2].1, None);
    }

    #[test]
    #[should_panic(expected = "stimulus frequency must be positive")]
    fn zero_frequency_panics() {
        paper_plan().q_min(0.0, 1e6);
    }

    #[test]
    fn display_mentions_resolution() {
        assert!(paper_plan().to_string().contains("6-bit"));
    }
}
