//! The measurement-error theory of §3: Eqs. 6–12.
//!
//! The sampling process quantises each code width `ΔV` with step `Δs`.
//! Because the sample phase is uniform relative to the transition
//! (Figure 5), the count is `i = ⌊ΔV/Δs + u⌋`, `u ~ U(0,1)`, and the
//! probability that a code of width `ΔV` is *accepted*
//! (`i_min ≤ i ≤ i_max`) is the trapezoid `h(ΔV, Δs)` of Figure 6b:
//! it rises linearly on `((i_min−1)Δs, i_min·Δs)`, is 1 on
//! `(i_min·Δs, i_max·Δs)` and falls on `(i_max·Δs, (i_max+1)Δs)`.
//!
//! Code widths are Gaussian, `f(ΔV) = N(1 LSB, σ²)` (Figure 6a, with
//! σ ≈ 0.16–0.21 LSB from circuit simulation). Integrating `h·f` over
//! the good/faulty width regions gives the per-code type I and type II
//! error probabilities (Eqs. 6–7); raising the per-code acceptance to the
//! number of codes `N` gives the device-level probabilities (Eqs. 8–12 —
//! valid because the inter-width correlation `ρ = −1/(N−1)` of Eq. 10 is
//! negligible for a 6-bit flash).

use crate::limits::CountLimits;
use bist_adc::spec::LinearitySpec;
use bist_dsp::integrate::integrate_with_knots;
use bist_dsp::special::{gaussian_cdf, gaussian_pdf};
use std::fmt;

/// The Gaussian code-width distribution `f(ΔV)` of Figure 6a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidthDistribution {
    mean_lsb: f64,
    sigma_lsb: f64,
}

impl WidthDistribution {
    /// A width distribution with the given mean and standard deviation
    /// (both in LSB). The paper's devices have mean 1, σ = 0.16–0.21.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_lsb` is not positive or `mean_lsb` is not finite.
    pub fn new(mean_lsb: f64, sigma_lsb: f64) -> Self {
        assert!(mean_lsb.is_finite(), "mean must be finite");
        assert!(sigma_lsb > 0.0, "sigma must be positive");
        WidthDistribution {
            mean_lsb,
            sigma_lsb,
        }
    }

    /// The paper's worst-case distribution: mean 1 LSB, σ = 0.21 LSB.
    pub fn paper_worst_case() -> Self {
        WidthDistribution::new(1.0, 0.21)
    }

    /// The distribution mean in LSB.
    pub fn mean(&self) -> f64 {
        self.mean_lsb
    }

    /// The distribution σ in LSB.
    pub fn sigma(&self) -> f64 {
        self.sigma_lsb
    }

    /// The density `f(ΔV)`.
    pub fn pdf(&self, dv: f64) -> f64 {
        gaussian_pdf(dv, self.mean_lsb, self.sigma_lsb)
    }

    /// `P(ΔV ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        gaussian_cdf(x, self.mean_lsb, self.sigma_lsb)
    }

    /// The probability that one code is within the spec window
    /// (its true width inside `[ΔV_min, ΔV_max]`).
    pub fn p_code_good(&self, spec: &LinearitySpec) -> f64 {
        let (lo, hi) = spec.width_window_lsb();
        self.cdf(hi.0) - self.cdf(lo.0)
    }
}

/// The acceptance probability `h(ΔV, Δs)` of Figure 6b for the window
/// `i_min..=i_max`.
///
/// # Panics
///
/// Panics if `delta_s` is not positive.
///
/// # Examples
///
/// ```
/// use bist_core::analytic::acceptance_probability;
///
/// // Window 6..=16 at Δs = 0.1: certain acceptance for ΔV = 1 LSB,
/// // certain rejection for a zero-width code.
/// assert_eq!(acceptance_probability(1.0, 0.1, 6, 16), 1.0);
/// assert_eq!(acceptance_probability(0.0, 0.1, 6, 16), 0.0);
/// // Half-way up the rising edge at ΔV = 0.55:
/// let h = acceptance_probability(0.55, 0.1, 6, 16);
/// assert!((h - 0.5).abs() < 1e-12);
/// ```
pub fn acceptance_probability(dv: f64, delta_s: f64, i_min: u64, i_max: u64) -> f64 {
    assert!(delta_s > 0.0, "delta_s must be positive");
    if dv < 0.0 {
        return 0.0;
    }
    let x = dv / delta_s;
    // P(i >= i_min) = clamp(x - (i_min - 1), 0, 1) and
    // P(i <= i_max) = clamp(i_max + 1 - x, 0, 1) share the same phase u,
    // giving the joint expression below.
    let upper = (i_max as f64 + 1.0 - x).min(1.0);
    let lower = (i_min as f64 - x).max(0.0);
    (upper - lower).clamp(0.0, 1.0)
}

/// The ΔV values (LSB) where `h` has corners — the integration knots for
/// Eqs. 6–7.
pub fn acceptance_knots(delta_s: f64, i_min: u64, i_max: u64) -> [f64; 4] {
    [
        (i_min.saturating_sub(1)) as f64 * delta_s,
        i_min as f64 * delta_s,
        i_max as f64 * delta_s,
        (i_max + 1) as f64 * delta_s,
    ]
}

/// Per-code probabilities from Eqs. 6–7 (all joint with the width
/// region, i.e. unconditional).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeProbabilities {
    /// `P(good)` — width within the spec window.
    pub p_good: f64,
    /// `P(accept ∧ good)` — within spec and counted in-window.
    pub p_accept_and_good: f64,
    /// `P(accept ∧ faulty)` — out of spec but counted in-window
    /// (the type II mass of Eq. 7).
    pub p_accept_and_faulty: f64,
}

impl CodeProbabilities {
    /// `P(reject ∧ good)` — the type I mass of Eq. 6.
    pub fn p_reject_and_good(&self) -> f64 {
        (self.p_good - self.p_accept_and_good).max(0.0)
    }

    /// `P(accept)` regardless of the true width.
    pub fn p_accept(&self) -> f64 {
        self.p_accept_and_good + self.p_accept_and_faulty
    }

    /// Conditional per-code type I probability `P(reject | good)`.
    pub fn type_i_conditional(&self) -> f64 {
        if self.p_good > 0.0 {
            self.p_reject_and_good() / self.p_good
        } else {
            0.0
        }
    }

    /// Conditional per-code type II probability `P(accept | faulty)`.
    pub fn type_ii_conditional(&self) -> f64 {
        let p_faulty = 1.0 - self.p_good;
        if p_faulty > 0.0 {
            self.p_accept_and_faulty / p_faulty
        } else {
            0.0
        }
    }
}

/// Evaluates Eqs. 6–7 for one code: integrates `h·f` over the good and
/// faulty width regions.
///
/// `INTEGRATION_TOL` bounds the absolute quadrature error; the integrand
/// corners (trapezoid knees and spec boundaries) are passed as knots so
/// the adaptive rule converges fast.
pub fn code_probabilities(
    dist: &WidthDistribution,
    spec: &LinearitySpec,
    delta_s: f64,
    limits: &CountLimits,
) -> CodeProbabilities {
    const INTEGRATION_TOL: f64 = 1e-13;
    let (lo, hi) = spec.width_window_lsb();
    let (i_min, i_max) = (limits.i_min(), limits.i_max());
    let h = |dv: f64| acceptance_probability(dv, delta_s, i_min, i_max);
    let f = |dv: f64| dist.pdf(dv);
    let knots = acceptance_knots(delta_s, i_min, i_max);

    // Integration support: the width can't be negative; beyond ±10σ the
    // Gaussian mass is negligible.
    let support_lo = (dist.mean() - 10.0 * dist.sigma()).max(0.0);
    let support_hi = dist.mean() + 10.0 * dist.sigma();

    let p_good = dist.cdf(hi.0) - dist.cdf(lo.0);
    let good_lo = lo.0.max(support_lo);
    let good_hi = hi.0.min(support_hi.max(hi.0));
    let p_accept_and_good = if good_lo < good_hi {
        integrate_with_knots(|v| h(v) * f(v), good_lo, good_hi, &knots, INTEGRATION_TOL)
    } else {
        0.0
    };

    // Faulty region: below ΔV_min and above ΔV_max, clipped to where h
    // is non-zero (the trapezoid support).
    let trap_lo = knots[0];
    let trap_hi = knots[3];
    let mut p_accept_and_faulty = 0.0;
    let below_lo = trap_lo.max(support_lo);
    let below_hi = lo.0.min(trap_hi);
    if below_lo < below_hi {
        p_accept_and_faulty +=
            integrate_with_knots(|v| h(v) * f(v), below_lo, below_hi, &knots, INTEGRATION_TOL);
    }
    let above_lo = hi.0.max(trap_lo);
    let above_hi = trap_hi.min(support_hi.max(trap_hi));
    if above_lo < above_hi {
        p_accept_and_faulty +=
            integrate_with_knots(|v| h(v) * f(v), above_lo, above_hi, &knots, INTEGRATION_TOL);
    }

    CodeProbabilities {
        p_good,
        p_accept_and_good,
        p_accept_and_faulty,
    }
}

/// Device-level probabilities (Eqs. 8–12) for `codes` independent codes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProbabilities {
    /// Number of codes judged.
    pub codes: u64,
    /// `P(device good)` = `p_good^N` (Eq. 9).
    pub p_good: f64,
    /// `P(device accepted)`.
    pub p_accept: f64,
    /// Conditional type I: `P(rejected | good)`.
    pub type_i: f64,
    /// Conditional type II: `P(accepted | faulty)`.
    pub type_ii: f64,
    /// Joint type I: `P(rejected ∧ good)`.
    pub type_i_joint: f64,
    /// Joint type II: `P(accepted ∧ faulty)`.
    pub type_ii_joint: f64,
}

/// Lifts per-code probabilities to the device level assuming
/// independent, identically distributed code widths (Eq. 9; the paper
/// shows via Eq. 10 that the flash correlation `−1/(N−1)` is negligible
/// at 6 bits).
///
/// # Panics
///
/// Panics if `codes == 0`.
pub fn device_probabilities(code: &CodeProbabilities, codes: u64) -> DeviceProbabilities {
    assert!(codes > 0, "device must have at least one judged code");
    let n = codes as i32;
    let p_good_dev = code.p_good.powi(n);
    let p_accept_dev = code.p_accept().powi(n);
    let p_accept_and_good_dev = code.p_accept_and_good.powi(n);
    let type_i_joint = (p_good_dev - p_accept_and_good_dev).max(0.0);
    let type_ii_joint = (p_accept_dev - p_accept_and_good_dev).max(0.0);
    let p_faulty_dev = 1.0 - p_good_dev;
    DeviceProbabilities {
        codes,
        p_good: p_good_dev,
        p_accept: p_accept_dev,
        type_i: if p_good_dev > 0.0 {
            type_i_joint / p_good_dev
        } else {
            0.0
        },
        type_ii: if p_faulty_dev > 0.0 {
            type_ii_joint / p_faulty_dev
        } else {
            0.0
        },
        type_i_joint,
        type_ii_joint,
    }
}

impl fmt::Display for DeviceProbabilities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={}: P(good) {:.4}, type I {:.4}, type II {:.4}",
            self.codes, self.p_good, self.type_i, self.type_ii
        )
    }
}

/// One point of the Figure 6 data: the width density, the acceptance
/// trapezoid and their product at a given ΔV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure6Point {
    /// Code width ΔV in LSB.
    pub dv: f64,
    /// `f(ΔV)` — Figure 6a.
    pub density: f64,
    /// `h(ΔV, Δs)` — Figure 6b.
    pub acceptance: f64,
    /// The integrand `h·f` of Eqs. 6–7.
    pub product: f64,
}

/// Generates the Figure 6 series over `[dv_lo, dv_hi]` with `points`
/// samples.
///
/// # Panics
///
/// Panics if `points < 2` or the range is not increasing.
pub fn figure6_series(
    dist: &WidthDistribution,
    delta_s: f64,
    limits: &CountLimits,
    dv_lo: f64,
    dv_hi: f64,
    points: usize,
) -> Vec<Figure6Point> {
    assert!(points >= 2, "need at least two points");
    assert!(dv_lo < dv_hi, "range must be increasing");
    (0..points)
        .map(|i| {
            let dv = dv_lo + (dv_hi - dv_lo) * i as f64 / (points - 1) as f64;
            let density = dist.pdf(dv);
            let acceptance = acceptance_probability(dv, delta_s, limits.i_min(), limits.i_max());
            Figure6Point {
                dv,
                density,
                acceptance,
                product: density * acceptance,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dsp::integrate::adaptive_simpson;

    fn paper_setup(delta_s: f64) -> (WidthDistribution, LinearitySpec, CountLimits) {
        let spec = LinearitySpec::paper_stringent();
        let limits = CountLimits::from_spec(&spec, delta_s).unwrap();
        (WidthDistribution::paper_worst_case(), spec, limits)
    }

    #[test]
    fn trapezoid_shape_is_exact() {
        // Window 6..=16 at Δs = 0.091 (the paper's point).
        let ds = 0.091;
        let h = |dv: f64| acceptance_probability(dv, ds, 6, 16);
        // Flat top between i_min·Δs and i_max·Δs.
        assert_eq!(h(6.0 * ds), 1.0);
        assert_eq!(h(16.0 * ds), 1.0);
        assert_eq!(h(1.0), 1.0);
        // Zero outside the support.
        assert_eq!(h(5.0 * ds - 1e-12), 0.0);
        assert_eq!(h(17.0 * ds + 1e-12), 0.0);
        // Linear mid-points of the edges.
        assert!((h(5.5 * ds) - 0.5).abs() < 1e-12);
        assert!((h(16.5 * ds) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_matches_monte_carlo_counting() {
        // h must equal the empirical acceptance of the floor(x+u) count.
        let ds = 0.093;
        let (i_min, i_max) = (6u64, 16u64);
        for &dv in &[0.5, 0.55, 0.9, 1.45, 1.52, 1.58] {
            let x = dv / ds;
            let trials = 200_000;
            let mut accepted = 0u64;
            for t in 0..trials {
                let u = (t as f64 + 0.5) / trials as f64; // stratified phase
                let i = (x + u).floor() as u64;
                if (i_min..=i_max).contains(&i) {
                    accepted += 1;
                }
            }
            let emp = accepted as f64 / trials as f64;
            let ana = acceptance_probability(dv, ds, i_min, i_max);
            assert!((emp - ana).abs() < 1e-4, "dv {dv}: emp {emp} vs {ana}");
        }
    }

    #[test]
    fn probabilities_are_consistent() {
        let (dist, spec, limits) = paper_setup(0.091);
        let c = code_probabilities(&dist, &spec, 0.091, &limits);
        assert!(c.p_good > 0.97 && c.p_good < 0.99, "p_good {}", c.p_good);
        assert!(c.p_accept_and_good <= c.p_good + 1e-12);
        assert!(c.p_accept() <= 1.0);
        assert!(c.p_reject_and_good() >= 0.0);
        // All four joint masses partition probability space.
        let p_reject_and_faulty = 1.0 - c.p_good - c.p_accept_and_faulty - c.p_reject_and_good();
        assert!(p_reject_and_faulty > 0.0);
    }

    #[test]
    fn paper_yield_reproduced() {
        // ~30 % of devices good under the stringent spec (§4).
        let (dist, spec, limits) = paper_setup(0.091);
        let c = code_probabilities(&dist, &spec, 0.091, &limits);
        let d = device_probabilities(&c, 64);
        assert!((0.28..0.38).contains(&d.p_good), "p_good {}", d.p_good);
        // And P(faulty) ≈ 1.4e-4 under the actual spec.
        let actual = LinearitySpec::paper_actual();
        let lim = CountLimits::from_spec(&actual, 0.125).unwrap();
        let c2 = code_probabilities(&dist, &actual, 0.125, &lim);
        let d2 = device_probabilities(&c2, 64);
        let p_faulty = 1.0 - d2.p_good;
        assert!((0.7e-4..2.5e-4).contains(&p_faulty), "p_faulty {p_faulty}");
    }

    #[test]
    fn type_i_halves_per_counter_bit() {
        // The paper's headline: "The probability of the type I errors is
        // approximately halved if the size of the counter is increased by
        // one bit." In its own Table 1 the per-bit ratios range 0.38–1.0
        // (the window edges can't be perfectly balanced at every counter
        // size), so we assert the robust form: monotone decrease and an
        // overall 4–16× reduction from 4 to 7 bits (ideal halving: 8×,
        // the paper's simulated column: 4.3×).
        let spec = LinearitySpec::paper_stringent();
        let dist = WidthDistribution::paper_worst_case();
        let mut series = Vec::new();
        for bits in 4..=7 {
            let ds = crate::limits::plan_delta_s(&spec, bits).0;
            let limits = CountLimits::from_spec(&spec, ds).unwrap();
            let c = code_probabilities(&dist, &spec, ds, &limits);
            series.push(device_probabilities(&c, 64).type_i);
        }
        for w in series.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "non-monotone: {series:?}");
        }
        let reduction = series[0] / series[3];
        assert!(
            (3.0..20.0).contains(&reduction),
            "overall reduction {reduction} ({series:?})"
        );
    }

    #[test]
    fn smaller_delta_s_reduces_both_errors() {
        let spec = LinearitySpec::paper_stringent();
        let dist = WidthDistribution::paper_worst_case();
        let coarse = {
            let ds = 0.09375;
            let l = CountLimits::from_spec(&spec, ds).unwrap();
            device_probabilities(&code_probabilities(&dist, &spec, ds, &l), 64)
        };
        let fine = {
            let ds = 0.01171875; // 7-bit plan
            let l = CountLimits::from_spec(&spec, ds).unwrap();
            device_probabilities(&code_probabilities(&dist, &spec, ds, &l), 64)
        };
        assert!(fine.type_i < coarse.type_i);
        assert!(fine.type_ii < coarse.type_ii);
    }

    #[test]
    fn integration_agrees_with_direct_simpson() {
        // Cross-check the knotted integral against brute-force Simpson.
        let (dist, spec, limits) = paper_setup(0.091);
        let c = code_probabilities(&dist, &spec, 0.091, &limits);
        let brute = adaptive_simpson(
            |dv| acceptance_probability(dv, 0.091, limits.i_min(), limits.i_max()) * dist.pdf(dv),
            0.5,
            1.5,
            1e-13,
        );
        assert!((c.p_accept_and_good - brute).abs() < 1e-9);
    }

    #[test]
    fn joint_conditional_relation() {
        let (dist, spec, limits) = paper_setup(0.0915);
        let c = code_probabilities(&dist, &spec, 0.0915, &limits);
        let d = device_probabilities(&c, 64);
        assert!((d.type_i_joint - d.type_i * d.p_good).abs() < 1e-12);
        assert!((d.type_ii_joint - d.type_ii * (1.0 - d.p_good)).abs() < 1e-12);
    }

    #[test]
    fn figure6_series_shape() {
        let (dist, _, limits) = paper_setup(0.091);
        let pts = figure6_series(&dist, 0.091, &limits, 0.2, 1.8, 161);
        // Density peaks at the mean (1 LSB).
        let peak = pts
            .iter()
            .max_by(|a, b| a.density.partial_cmp(&b.density).unwrap())
            .unwrap();
        assert!((peak.dv - 1.0).abs() < 0.02);
        // Acceptance is 1 at the mean and 0 at the extremes.
        assert_eq!(peak.acceptance, 1.0);
        assert_eq!(pts[0].acceptance, 0.0);
        assert_eq!(pts.last().unwrap().acceptance, 0.0);
        // Product is bounded by density.
        assert!(pts.iter().all(|p| p.product <= p.density + 1e-15));
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn bad_sigma_panics() {
        WidthDistribution::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one judged code")]
    fn zero_codes_panics() {
        let (dist, spec, limits) = paper_setup(0.091);
        let c = code_probabilities(&dist, &spec, 0.091, &limits);
        device_probabilities(&c, 0);
    }

    #[test]
    fn display_device_probabilities() {
        let (dist, spec, limits) = paper_setup(0.091);
        let c = code_probabilities(&dist, &spec, 0.091, &limits);
        let d = device_probabilities(&c, 64);
        assert!(d.to_string().contains("N=64"));
    }
}
