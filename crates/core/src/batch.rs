//! Lane-parallel batch screening: N devices advance in lockstep
//! through structure-of-arrays state blocks.
//!
//! The scalar engines of [`crate::harness`] and [`crate::dynamic`]
//! screen one device at a time: stimulus → code → accumulator, one long
//! dependent chain per device. A production screener tests a *fleet*,
//! and the fleet hot loop is embarrassingly lane-parallel: every device
//! runs the same plan over the same sample grid, only the transfer
//! function (and its noise draws) differ. This module restructures the
//! state so a batch of devices shares one pass:
//!
//! * [`StaticBatch`] — code tallies as lane-indexed
//!   [`MonitorState`]/[`FunctionalState`] arrays. On the dominant
//!   noiseless-ramp workload each lane additionally *run-skips*: the
//!   ramp is monotone and the transition levels are known
//!   ([`Adc::transition_levels`]), so the next code flip is found by a
//!   galloping search over the closed-form ramp instead of sample-by-
//!   sample conversion, and the accumulators advance over the constant
//!   run in O(1) ([`MonitorState::skip_run`]). The replayed head of
//!   each run keeps the deglitcher and median-filter state machines
//!   bit-exact with the scalar path.
//! * [`DynBatch`] — the Goertzel resonator bank flattened lane-major
//!   with Welford moments as parallel arrays, and the coherent sine
//!   stimulus evaluated **once** into a shared table (at zero jitter
//!   the stimulus is device-independent), so the per-lane work is one
//!   table load, one transition search and a branch-free resonator
//!   update — autovectorizer food.
//!
//! Sequencer checkpoints evaluate per lane on the same countdown
//! protocol as the scalar backends (events latched through a per-lane
//! FIFO to the [`STATIC_DECISION_LATENCY`] horizon), and a finished
//! lane is refilled from the device queue so the batch never idles.
//!
//! **Bit-exactness.** Every verdict a batch reports is identical to
//! running the same device, with the same RNG, through the scalar
//! engine: run-skipping evaluates the *same* ramp expression on the
//! *same* sample indices; the fallback path replays
//! [`bist_adc::stream::CodeStream`]'s draw order per lane; the dynamic
//! lanes apply the same per-(lane, bin) operation sequence as
//! [`bist_dsp::goertzel::GoertzelBank::push`] and assemble powers
//! through the same [`assemble_powers`] arithmetic. The
//! `batch_equivalence` property tests pin this for arbitrary lane
//! widths and refill orders.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::backend::{centred_half_lsb, Backend};
use crate::config::BistConfig;
use crate::dynamic::{plan_sine, DynScratch, DynamicConfig, DynamicVerdict};
use crate::functional::FunctionalState;
use crate::harness::{plan_ramp, BistVerdict, Scratch};
use crate::lsb_monitor::MonitorState;
use crate::sequencer::{
    DynSequencer, SeqDecision, SeqOutcome, SequencerConfig, StaticSequencer,
    STATIC_DECISION_LATENCY,
};
use bist_adc::noise::NoiseConfig;
use bist_adc::signal::{Ramp, SineWave, Stimulus};
use bist_adc::stream::CodeStream;
use bist_adc::types::{Code, Volts};
use bist_adc::{Adc, SamplingConfig};
use bist_dsp::goertzel::{assemble_powers, harmonic_plan, Goertzel, HarmonicPlan};
use rand::RngCore;

/// Default number of devices advancing in lockstep.
pub const DEFAULT_LANE_WIDTH: usize = 16;

/// Samples each active lane advances before the scheduler visits the
/// next lane — large enough to amortise the visit, small enough that a
/// freshly refilled lane joins the lockstep quickly.
const CHUNK: u64 = 4096;

/// One queued device: a stable report index, its transfer function and
/// its private noise RNG (per-lane draw order is preserved exactly, so
/// verdicts are independent of lane scheduling).
#[derive(Debug, Clone)]
pub struct BatchDevice<A, R> {
    /// Caller-chosen identifier carried into the report (unique per
    /// batch; reports are ordered by it).
    pub index: usize,
    /// The device under test.
    pub adc: A,
    /// The device's noise RNG.
    pub rng: R,
}

impl<A, R> BatchDevice<A, R> {
    /// Bundles one device for the queue.
    pub fn new(index: usize, adc: A, rng: R) -> Self {
        BatchDevice { index, adc, rng }
    }
}

/// One screened device's result from a static batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticReport {
    /// The [`BatchDevice::index`] this verdict belongs to.
    pub device: usize,
    /// Decision and verdict, exactly as the scalar sequenced path
    /// would report (decision is `Continue` for unsequenced batches).
    pub outcome: SeqOutcome<BistVerdict>,
}

/// One screened device's result from a dynamic batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynReport {
    /// The [`BatchDevice::index`] this verdict belongs to.
    pub device: usize,
    /// Decision and verdict, exactly as the scalar sequenced path
    /// would report (decision is `Continue` for unsequenced batches).
    pub outcome: SeqOutcome<DynamicVerdict>,
}

/// The immutable dynamic stimulus: one coherent-sine plan and its
/// evaluated sample table.
///
/// A [`DynBatch`] owns a private table by default (planned lazily by
/// the first zero-jitter lane); a worker pool plans one table up front
/// with [`StimulusTable::plan_for`] and hands every worker's batch the
/// same `Arc` via [`DynBatch::with_shared_table`], so the sine is
/// evaluated once per *fleet* rather than once per engine. Lanes whose
/// plan differs from the table's (or any jittered noise model) fall
/// back to per-sample evaluation, so sharing never changes a verdict.
#[derive(Debug, Default)]
pub struct StimulusTable {
    plan: Option<(SineWave, SamplingConfig)>,
    values: Vec<f64>,
}

impl StimulusTable {
    /// Plans and evaluates the shared table for `adc` under `config` —
    /// the identical expression the scalar stream evaluates, so table
    /// lanes stay bit-exact with [`crate::dynamic`]'s engine.
    pub fn plan_for<A: Adc + ?Sized>(adc: &A, config: &DynamicConfig) -> Arc<Self> {
        let (sine, sampling) = plan_sine(adc, config);
        let values = (0..sampling.samples)
            .map(|i| sine.value(sampling.sample_time(i)).0)
            .collect();
        Arc::new(StimulusTable {
            plan: Some((sine, sampling)),
            values,
        })
    }

    /// Number of planned samples (0 while unplanned).
    pub fn samples(&self) -> usize {
        self.values.len()
    }
}

/// Per-lane sequencer event, latched until its visibility horizon.
#[derive(Debug, Clone, Copy)]
enum LaneEvent {
    /// A completed code measurement (fields of the scalar
    /// [`crate::lsb_monitor::CodeResult`] the sequencer consumes).
    Code {
        count: u64,
        dnl_pass: bool,
        inl_pass: bool,
        inl_counts: i64,
    },
    /// A fired upper-bit functional check.
    Functional { ok: bool },
}

/// Structure-of-arrays state for the static lanes.
#[derive(Debug, Clone, Default)]
struct StaticLanes {
    monitor: Vec<MonitorState>,
    functional: Vec<FunctionalState>,
    seq: Vec<StaticSequencer>,
    next_checkpoint: Vec<u64>,
    consumed: Vec<u64>,
    total: Vec<u64>,
    ramp: Vec<Ramp>,
    sampling: Vec<SamplingConfig>,
    run_skip: Vec<bool>,
    cur_code: Vec<u32>,
    run_end: Vec<u64>,
    head_left: Vec<u64>,
    events: Vec<VecDeque<(u64, LaneEvent)>>,
}

/// A batch of devices screened through the static (ramp/linearity)
/// workload in lane-parallel lockstep.
///
/// Build one with the plan shared by every device (config, noise,
/// slope error, optional sequencer), [`push`](StaticBatch::push) the
/// devices, hand it to [`Backend::process_batch`], then collect
/// [`take_reports`](StaticBatch::take_reports). The batch owns all
/// working state, so a warm batch re-run allocates nothing.
#[derive(Debug)]
pub struct StaticBatch<A, R> {
    config: BistConfig,
    noise: NoiseConfig,
    slope_error: f64,
    seq_config: Option<SequencerConfig>,
    lane_width: usize,
    queue: VecDeque<BatchDevice<A, R>>,
    reports: Vec<StaticReport>,
    scratch: Scratch,
    scalar_seq: Option<StaticSequencer>,
    devices: Vec<Option<BatchDevice<A, R>>>,
    lanes: StaticLanes,
}

impl<A: Adc, R: RngCore> StaticBatch<A, R> {
    /// A batch screening `config` noiselessly with an ideal-slope ramp
    /// and no sequencer, [`DEFAULT_LANE_WIDTH`] lanes wide.
    pub fn new(config: BistConfig) -> Self {
        StaticBatch {
            config,
            noise: NoiseConfig::noiseless(),
            slope_error: 0.0,
            seq_config: None,
            lane_width: DEFAULT_LANE_WIDTH,
            queue: VecDeque::new(),
            reports: Vec::new(),
            scratch: Scratch::new(),
            scalar_seq: None,
            devices: Vec::new(),
            lanes: StaticLanes::default(),
        }
    }

    /// Sets the noise model every device is screened under.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the relative ramp slope error shared by the batch.
    pub fn with_slope_error(mut self, err: f64) -> Self {
        self.slope_error = err;
        self
    }

    /// Screens every device under the early-stop sequencer policy.
    pub fn with_sequencer(mut self, policy: SequencerConfig) -> Self {
        self.seq_config = Some(policy);
        self
    }

    /// Sets the number of lockstep lanes (≥ 1).
    pub fn with_lane_width(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "a batch needs at least one lane");
        self.lane_width = lanes;
        self
    }

    /// Queues one device for screening.
    pub fn push(&mut self, device: BatchDevice<A, R>) {
        self.queue.push_back(device);
    }

    /// Number of devices still waiting for a lane.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Reports accumulated so far, sorted by device index.
    ///
    /// The sort is in place and allocation-free, so this (with
    /// [`clear_reports`](StaticBatch::clear_reports)) is the warm-path
    /// way to drain a reused batch.
    pub fn finish_reports(&mut self) -> &[StaticReport] {
        self.reports.sort_unstable_by_key(|r| r.device);
        &self.reports
    }

    /// Clears the report buffer, keeping its capacity.
    pub fn clear_reports(&mut self) {
        self.reports.clear();
    }

    /// Takes the accumulated reports, sorted by device index.
    pub fn take_reports(&mut self) -> Vec<StaticReport> {
        self.reports.sort_unstable_by_key(|r| r.device);
        std::mem::take(&mut self.reports)
    }

    /// Screens the queue one device at a time through the scalar
    /// engine of `backend` — the reference the lane engine is measured
    /// against, and the path hardware-model backends take.
    pub fn run_scalar<B: Backend>(&mut self, backend: &mut B) {
        while let Some(mut dev) = self.queue.pop_front() {
            let (ramp, sampling) = plan_ramp(&dev.adc, &self.config);
            let ramp = ramp.with_slope_error(self.slope_error);
            let outcome = if let Some(policy) = self.seq_config {
                let seq = self
                    .scalar_seq
                    .get_or_insert_with(|| StaticSequencer::new(policy));
                backend.process_sequenced(
                    &self.config,
                    seq,
                    CodeStream::noisy(&dev.adc, &ramp, sampling, &self.noise, &mut dev.rng),
                    &mut self.scratch,
                )
            } else {
                let verdict = backend.process(
                    &self.config,
                    CodeStream::noisy(&dev.adc, &ramp, sampling, &self.noise, &mut dev.rng),
                    &mut self.scratch,
                );
                SeqOutcome {
                    decision: SeqDecision::Continue,
                    verdict,
                }
            };
            self.reports.push(StaticReport {
                device: dev.index,
                outcome,
            });
        }
    }

    /// Screens the queue through the lane-parallel behavioural engine:
    /// all lanes advance in lockstep chunks, finished lanes refill
    /// from the queue, and every verdict is bit-exact to
    /// [`run_scalar`](StaticBatch::run_scalar) with
    /// [`crate::backend::BehavioralBackend`].
    pub fn run_batched(&mut self) {
        loop {
            let mut active = false;
            for lane in 0..self.lane_width {
                if self.devices.get(lane).is_none_or(|d| d.is_none()) {
                    match self.queue.pop_front() {
                        Some(dev) => self.install(lane, dev),
                        None => continue,
                    }
                }
                active = true;
                let until = self.lanes.consumed[lane] + CHUNK;
                if let Some(outcome) = self.advance_lane(lane, until) {
                    let dev = self.devices[lane].take().expect("lane was active");
                    self.reports.push(StaticReport {
                        device: dev.index,
                        outcome,
                    });
                }
            }
            if !active {
                break;
            }
        }
    }

    /// Installs a device into `lane`, planning its sweep and resetting
    /// the lane's accumulators (allocation-free once the lane exists).
    fn install(&mut self, lane: usize, dev: BatchDevice<A, R>) {
        let (ramp, sampling) = plan_ramp(&dev.adc, &self.config);
        let ramp = ramp.with_slope_error(self.slope_error);
        // Run-skipping needs a device-independent, strictly advancing
        // stimulus (noiseless, positive effective slope; harness ramps
        // have no bow) and known transition levels to search against.
        let run_skip = self.noise.is_noiseless()
            && ramp.effective_slope() > 0.0
            && dev.adc.transition_levels().is_some();
        let monitor = MonitorState::new(&self.config);
        let functional = FunctionalState::new(self.config.monitored_bit(), self.config.deglitch());
        let l = &mut self.lanes;
        if lane == l.monitor.len() {
            l.monitor.push(monitor);
            l.functional.push(functional);
            l.consumed.push(0);
            l.total.push(sampling.samples as u64);
            l.ramp.push(ramp);
            l.sampling.push(sampling);
            l.run_skip.push(run_skip);
            l.cur_code.push(0);
            l.run_end.push(0);
            l.head_left.push(0);
            l.next_checkpoint.push(u64::MAX);
            l.events.push(VecDeque::new());
            if let Some(policy) = self.seq_config {
                l.seq.push(StaticSequencer::new(policy));
            }
            self.devices.push(None);
        } else {
            l.monitor[lane] = monitor;
            l.functional[lane] = functional;
            l.consumed[lane] = 0;
            l.total[lane] = sampling.samples as u64;
            l.ramp[lane] = ramp;
            l.sampling[lane] = sampling;
            l.run_skip[lane] = run_skip;
            l.cur_code[lane] = 0;
            l.run_end[lane] = 0;
            l.head_left[lane] = 0;
            l.events[lane].clear();
        }
        if self.seq_config.is_some() {
            let seq = &mut self.lanes.seq[lane];
            seq.begin(&self.config);
            self.lanes.next_checkpoint[lane] =
                seq.next_checkpoint_after(0) + STATIC_DECISION_LATENCY;
        }
        self.devices[lane] = Some(dev);
    }

    /// Advances one lane to `until` (or its next checkpoint / end of
    /// sweep, whichever first fires a decision). Returns the device's
    /// outcome when its sweep concluded.
    // bist-lint: hot-path — the static lane inner loop
    fn advance_lane(&mut self, lane: usize, until: u64) -> Option<SeqOutcome<BistVerdict>> {
        let sequenced = self.seq_config.is_some();
        // Replayed head of each constant-code run: the deglitcher taps
        // / median window saturate after two identical samples, after
        // which `skip_run` covers the remainder in O(1).
        let head_n: u64 = if self.config.deglitch() { 2 } else { 1 };
        let bit = self.config.monitored_bit();
        let total = self.lanes.total[lane];
        let ramp = self.lanes.ramp[lane];
        let sampling = self.lanes.sampling[lane];
        let run_skip = self.lanes.run_skip[lane];
        let until = until.min(total);
        let mut consumed = self.lanes.consumed[lane];
        let mut mon = self.lanes.monitor[lane];
        let mut func = self.lanes.functional[lane];
        let mut cur_code = self.lanes.cur_code[lane];
        let mut run_end = self.lanes.run_end[lane];
        let mut head_left = self.lanes.head_left[lane];

        let outcome = 'sweep: loop {
            let target = if sequenced {
                until.min(self.lanes.next_checkpoint[lane])
            } else {
                until
            };
            if run_skip {
                let dev = self.devices[lane].as_ref().expect("lane active");
                let levels = dev
                    .adc
                    .transition_levels()
                    .expect("run-skip lane has levels");
                let events = &mut self.lanes.events[lane];
                while consumed < target {
                    if run_end <= consumed {
                        // Open a run: settle the level cursor to the
                        // exact partition point at this sample, then
                        // gallop to the first sample at or above the
                        // next transition level.
                        let v = ramp.value(sampling.sample_time(consumed as usize)).0;
                        let m = levels.len();
                        let mut c = cur_code as usize;
                        while c < m && levels[c] <= v {
                            c += 1;
                        }
                        while c > 0 && levels[c - 1] > v {
                            c -= 1;
                        }
                        cur_code = c as u32;
                        run_end = if c < m {
                            first_at_or_above(&ramp, &sampling, levels[c], consumed + 1, total)
                        } else {
                            total
                        };
                        head_left = head_n;
                    }
                    let leg = (run_end - consumed).min(target - consumed);
                    let code = Code(cur_code);
                    let raw = (code.0 >> bit) & 1 == 1;
                    let head = head_left.min(leg);
                    for _ in 0..head {
                        consumed += 1;
                        let rec = mon.push(raw);
                        let chk = func.push(code);
                        if sequenced {
                            if let Some(r) = rec {
                                events.push_back((
                                    consumed,
                                    LaneEvent::Code {
                                        count: r.count,
                                        dnl_pass: r.dnl_verdict.is_pass(),
                                        inl_pass: r.inl_pass,
                                        inl_counts: r.inl_counts,
                                    },
                                ));
                            }
                            if let Some(c) = chk {
                                events.push_back((consumed, LaneEvent::Functional { ok: c.ok }));
                            }
                        }
                    }
                    head_left -= head;
                    let bulk = leg - head;
                    if bulk > 0 {
                        mon.skip_run(bulk);
                        func.skip_run(bulk);
                        consumed += bulk;
                    }
                }
            } else {
                // Per-sample fallback: byte-for-byte the scalar
                // acquisition (`CodeStream::next`), with the lane's own
                // RNG so the draw order matches the scalar run exactly.
                let dev = self.devices[lane].as_mut().expect("lane active");
                let events = &mut self.lanes.events[lane];
                while consumed < target {
                    let t = self
                        .noise
                        .perturb_time(sampling.sample_time(consumed as usize), &mut dev.rng);
                    let v = self.noise.perturb_voltage(ramp.value(t).0, &mut dev.rng);
                    let code = dev.adc.convert(Volts(v));
                    consumed += 1;
                    let rec = mon.push((code.0 >> bit) & 1 == 1);
                    let chk = func.push(code);
                    if sequenced {
                        if let Some(r) = rec {
                            events.push_back((
                                consumed,
                                LaneEvent::Code {
                                    count: r.count,
                                    dnl_pass: r.dnl_verdict.is_pass(),
                                    inl_pass: r.inl_pass,
                                    inl_counts: r.inl_counts,
                                },
                            ));
                        }
                        if let Some(c) = chk {
                            events.push_back((consumed, LaneEvent::Functional { ok: c.ok }));
                        }
                    }
                }
            }
            if sequenced && consumed == self.lanes.next_checkpoint[lane] {
                // Deliver every event inside the visibility horizon in
                // fire order — the same stream the scalar delay lines
                // drain — then take the decision.
                let seq = &mut self.lanes.seq[lane];
                let events = &mut self.lanes.events[lane];
                let visible = consumed - STATIC_DECISION_LATENCY;
                while let Some(&(at, ev)) = events.front() {
                    if at > visible {
                        break;
                    }
                    events.pop_front();
                    match ev {
                        LaneEvent::Code {
                            count,
                            dnl_pass,
                            inl_pass,
                            inl_counts,
                        } => seq.observe_code(at, count, dnl_pass, inl_pass, inl_counts),
                        LaneEvent::Functional { ok } => seq.observe_functional(ok),
                    }
                }
                self.lanes.next_checkpoint[lane] =
                    seq.next_checkpoint_after(visible) + STATIC_DECISION_LATENCY;
                let decision = seq.checkpoint(visible);
                if decision.stops() {
                    break 'sweep Some(SeqOutcome {
                        decision,
                        verdict: seq.verdict(consumed),
                    });
                }
                continue;
            }
            if consumed == total {
                let m = mon.tally();
                let f = func.tally();
                break 'sweep Some(SeqOutcome {
                    decision: SeqDecision::Continue,
                    verdict: BistVerdict {
                        codes_judged: m.codes_judged,
                        dnl_failures: m.dnl_failures,
                        inl_failures: m.inl_failures,
                        functional_checks: f.checks,
                        functional_mismatches: f.mismatches,
                        expected_codes: self.config.expected_measurements(),
                        samples: consumed,
                    },
                });
            }
            if consumed == until {
                break 'sweep None;
            }
        };
        self.lanes.consumed[lane] = consumed;
        self.lanes.monitor[lane] = mon;
        self.lanes.functional[lane] = func;
        self.lanes.cur_code[lane] = cur_code;
        self.lanes.run_end[lane] = run_end;
        self.lanes.head_left[lane] = head_left;
        outcome
    }
}

/// First sample index in `[from, total)` whose ramp voltage reaches
/// `level`, or `total`. Gallop-then-bisect over the monotone predicate
/// `ramp(t_j) ≥ level`, evaluating the *same* closed-form expression
/// the per-sample path would, so the crossing sample is exact.
fn first_at_or_above(
    ramp: &Ramp,
    sampling: &SamplingConfig,
    level: f64,
    from: u64,
    total: u64,
) -> u64 {
    let above = |j: u64| ramp.value(sampling.sample_time(j as usize)).0 >= level;
    let mut lo = from;
    let mut probe = from;
    let mut step = 1u64;
    let mut hi = loop {
        if probe >= total {
            break total;
        }
        if above(probe) {
            break probe;
        }
        lo = probe + 1;
        probe += step;
        step *= 2;
    };
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if above(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Buckets in a [`LevelLut`].
const LUT_BUCKETS: usize = 256;
/// Widest per-bucket level cluster the fixed-width scan tolerates;
/// denser level sets fall back to [`Adc::convert`].
const LUT_MAX_SPAN: usize = 8;

/// Branchless rank accelerator over one device's sorted transition
/// levels. The [`Adc`] trait contract pins `convert(v)` to
/// `levels.partition_point(|&t| t <= v)` whenever `transition_levels()`
/// is `Some`, so the rank can be computed any way that counts the same
/// levels — and the binary search's data-dependent branches mispredict
/// on sine-like inputs, dominating the batched dynamic hot loop. This
/// instead buckets the voltage range: `base[j]` counts the levels below
/// bucket `j`, and a fixed-width compare-and-sum over the (padded)
/// level array finishes the rank without a single data-dependent
/// branch.
#[derive(Debug, Clone, Default)]
struct LevelLut {
    /// `base[j]` = index of the first level whose bucket is ≥ `j`
    /// (length `LUT_BUCKETS + 1`).
    base: Vec<u32>,
    /// The levels, padded with `LUT_MAX_SPAN` infinities so the
    /// fixed-width scan never reads past the end or branches on the
    /// tail.
    padded: Vec<f64>,
    lo: f64,
    inv_w: f64,
    span: usize,
}

impl LevelLut {
    /// Bucket of `v`. Monotone nondecreasing in `v` (IEEE subtraction
    /// and multiplication are monotone; the `usize` cast saturates
    /// below at 0), which is the only property correctness relies on:
    /// levels in buckets before `bucket(v)` are ≤ `v`, levels in
    /// buckets after it are > `v`, and the bucket itself gets scanned.
    #[inline]
    fn bucket(&self, v: f64) -> usize {
        (((v - self.lo) * self.inv_w) as usize).min(LUT_BUCKETS - 1)
    }

    /// (Re)builds the accelerator over `levels`, reusing buffers;
    /// `false` when the level set is unsuitable (empty, non-finite or
    /// degenerate span, or a cluster too dense for the fixed scan).
    fn build(&mut self, levels: &[f64]) -> bool {
        let (Some(&lo), Some(&hi)) = (levels.first(), levels.last()) else {
            return false;
        };
        if hi <= lo || !(hi - lo).is_finite() {
            return false;
        }
        self.lo = lo;
        self.inv_w = LUT_BUCKETS as f64 / (hi - lo);
        if !self.inv_w.is_finite() {
            return false;
        }
        self.base.clear();
        let mut i = 0usize;
        for j in 0..=LUT_BUCKETS {
            while i < levels.len() && self.bucket(levels[i]) < j {
                i += 1;
            }
            self.base.push(i as u32);
        }
        let span = self
            .base
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        if span > LUT_MAX_SPAN {
            return false;
        }
        self.span = span;
        self.padded.clear();
        self.padded.extend_from_slice(levels);
        self.padded
            .extend(std::iter::repeat_n(f64::INFINITY, LUT_MAX_SPAN));
        true
    }

    /// Number of levels ≤ `v` — by the [`Adc`] contract, exactly
    /// `convert(v).0`.
    // bist-lint: hot-path — per-sample branchless level rank
    #[inline]
    fn rank(&self, v: f64) -> u32 {
        let base = self.base[self.bucket(v)];
        let at = base as usize;
        let mut r = base;
        for m in 0..self.span {
            r += u32::from(self.padded[at + m] <= v);
        }
        r
    }
}

/// One lane's borrowed state inside the interleaved pair kernel.
struct PairLane<'a> {
    table: &'a [f64],
    lut: &'a LevelLut,
    res: &'a mut [Goertzel],
    count: usize,
    mean: f64,
    m2: f64,
}

/// The interleaved two-lane inner loop: per-lane arithmetic and
/// operation order are exactly `advance_lane`'s, so results stay
/// bit-identical — interleaving only lets the two lanes' serial
/// dependency chains (the Welford mean division, each bin's Goertzel
/// recurrence) overlap in the pipeline instead of running back to back.
// bist-lint: hot-path — shared body of both pair-kernel entries
#[inline(always)]
fn pair_kernel_body(lanes: &mut [PairLane<'_>; 2], half_fs: f64) {
    let n = lanes[0].table.len().min(lanes[1].table.len());
    let [la, lb] = lanes;
    for k in 0..n {
        let xa = f64::from(la.lut.rank(la.table[k])) + 0.5 - half_fs;
        let xb = f64::from(lb.lut.rank(lb.table[k])) + 0.5 - half_fs;
        for g in la.res.iter_mut() {
            g.push(xa);
        }
        for g in lb.res.iter_mut() {
            g.push(xb);
        }
        la.count += 1;
        let da = xa - la.mean;
        la.mean += da / la.count as f64;
        la.m2 += da * (xa - la.mean);
        lb.count += 1;
        let db = xb - lb.mean;
        lb.mean += db / lb.count as f64;
        lb.m2 += db * (xb - lb.mean);
    }
}

/// Portable entry for [`pair_kernel_body`].
fn pair_kernel(lanes: &mut [PairLane<'_>; 2], half_fs: f64) {
    pair_kernel_body(lanes, half_fs);
}

/// x86-64 entry compiled with AVX2+FMA enabled: `mul_add` lowers to a
/// hardware `vfmadd` — correctly rounded, bit-identical to the `fma()`
/// libm call the portable build makes, but without a function call per
/// resonator per sample, which is the single largest cost in the
/// dynamic hot loop on the default target.
///
/// # Safety
///
/// The caller must have verified at runtime that the host supports
/// AVX2 and FMA (`is_x86_feature_detected!("avx2")` &&
/// `is_x86_feature_detected!("fma")`) before calling: the body is
/// compiled with those feature sets enabled, so reaching it on an
/// older CPU is undefined behaviour (illegal instruction at best).
/// `bist-lint`'s `undocumented-unsafe` rule statically checks every
/// call site for that guard.
// bist-lint: hot-path — the interleaved dynamic lane kernel
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn pair_kernel_fma(lanes: &mut [PairLane<'_>; 2], half_fs: f64) {
    pair_kernel_body(lanes, half_fs);
}

/// Structure-of-arrays state for the dynamic lanes. Resonators are
/// flattened lane-major: lane `l` owns
/// `resonators[l * bins .. (l + 1) * bins]`.
#[derive(Debug, Clone, Default)]
struct DynLanes {
    resonators: Vec<Goertzel>,
    count: Vec<usize>,
    mean: Vec<f64>,
    m2: Vec<f64>,
    seq: Vec<DynSequencer>,
    next_checkpoint: Vec<u64>,
    consumed: Vec<u64>,
    use_table: Vec<bool>,
    sine: Vec<SineWave>,
    sampling: Vec<SamplingConfig>,
    lut: Vec<LevelLut>,
    lut_ok: Vec<bool>,
}

/// A batch of devices screened through the dynamic (coherent-sine)
/// workload in lane-parallel lockstep.
///
/// Same shape as [`StaticBatch`]: build with the shared plan, `push`
/// devices, dispatch through [`Backend::process_dyn_batch`], collect
/// with [`take_reports`](DynBatch::take_reports).
#[derive(Debug)]
pub struct DynBatch<A, R> {
    config: DynamicConfig,
    noise: NoiseConfig,
    seq_config: Option<SequencerConfig>,
    lane_width: usize,
    queue: VecDeque<BatchDevice<A, R>>,
    reports: Vec<DynReport>,
    dyn_scratch: DynScratch,
    scalar_seq: Option<DynSequencer>,
    devices: Vec<Option<BatchDevice<A, R>>>,
    plan: HarmonicPlan,
    template: Vec<Goertzel>,
    /// Stimulus voltages shared by every zero-jitter lane whose plan
    /// matches the table's — evaluated once per batch, or once per
    /// *pool* when pre-planned and shared through
    /// [`with_shared_table`](DynBatch::with_shared_table).
    table: Arc<StimulusTable>,
    lanes: DynLanes,
}

impl<A: Adc, R: RngCore> DynBatch<A, R> {
    /// A batch screening `config` noiselessly with no sequencer,
    /// [`DEFAULT_LANE_WIDTH`] lanes wide.
    pub fn new(config: DynamicConfig) -> Self {
        let plan = harmonic_plan(
            config.cycles() as usize,
            config.record_len(),
            config.harmonics(),
        );
        let template = plan
            .bins
            .iter()
            .map(|&b| Goertzel::for_bin(b, config.record_len()))
            .collect();
        DynBatch {
            config,
            noise: NoiseConfig::noiseless(),
            seq_config: None,
            lane_width: DEFAULT_LANE_WIDTH,
            queue: VecDeque::new(),
            reports: Vec::new(),
            dyn_scratch: DynScratch::new(),
            scalar_seq: None,
            devices: Vec::new(),
            plan,
            template,
            table: Arc::new(StimulusTable::default()),
            lanes: DynLanes::default(),
        }
    }

    /// Sets the noise model every device is screened under.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Screens every device under the early-stop sequencer policy.
    pub fn with_sequencer(mut self, policy: SequencerConfig) -> Self {
        self.seq_config = Some(policy);
        self
    }

    /// Sets the number of lockstep lanes (≥ 1).
    pub fn with_lane_width(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "a batch needs at least one lane");
        self.lane_width = lanes;
        self
    }

    /// Shares a pre-planned stimulus table (see
    /// [`StimulusTable::plan_for`]) instead of letting the batch build
    /// a private copy — the worker-pool path, where every worker's
    /// engine reads one immutable table.
    ///
    /// # Panics
    ///
    /// Panics if `table` was never planned.
    pub fn with_shared_table(mut self, table: Arc<StimulusTable>) -> Self {
        assert!(
            table.plan.is_some(),
            "a shared stimulus table must be planned"
        );
        self.table = table;
        self
    }

    /// Queues one device for screening.
    pub fn push(&mut self, device: BatchDevice<A, R>) {
        self.queue.push_back(device);
    }

    /// Number of devices still waiting for a lane.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Reports accumulated so far, sorted by device index (in place,
    /// allocation-free — the warm-path drain, with
    /// [`clear_reports`](DynBatch::clear_reports)).
    pub fn finish_reports(&mut self) -> &[DynReport] {
        self.reports.sort_unstable_by_key(|r| r.device);
        &self.reports
    }

    /// Clears the report buffer, keeping its capacity.
    pub fn clear_reports(&mut self) {
        self.reports.clear();
    }

    /// Takes the accumulated reports, sorted by device index.
    pub fn take_reports(&mut self) -> Vec<DynReport> {
        self.reports.sort_unstable_by_key(|r| r.device);
        std::mem::take(&mut self.reports)
    }

    /// Screens the queue one device at a time through the scalar
    /// engine of `backend`.
    pub fn run_scalar<B: Backend>(&mut self, backend: &mut B) {
        while let Some(mut dev) = self.queue.pop_front() {
            let (sine, sampling) = plan_sine(&dev.adc, &self.config);
            let outcome = if let Some(policy) = self.seq_config {
                let seq = self
                    .scalar_seq
                    .get_or_insert_with(|| DynSequencer::new(policy));
                backend.process_dyn_sequenced(
                    &self.config,
                    seq,
                    CodeStream::noisy(&dev.adc, &sine, sampling, &self.noise, &mut dev.rng),
                    &mut self.dyn_scratch,
                )
            } else {
                let verdict = backend.process_dyn(
                    &self.config,
                    CodeStream::noisy(&dev.adc, &sine, sampling, &self.noise, &mut dev.rng),
                    &mut self.dyn_scratch,
                );
                SeqOutcome {
                    decision: SeqDecision::Continue,
                    verdict,
                }
            };
            self.reports.push(DynReport {
                device: dev.index,
                outcome,
            });
        }
    }

    /// Screens the queue through the lane-parallel behavioural engine,
    /// bit-exact to [`run_scalar`](DynBatch::run_scalar) with
    /// [`crate::backend::BehavioralBackend`].
    pub fn run_batched(&mut self) {
        // Jitter-free, noiseless, unsequenced table lanes advance two
        // at a time through the interleaved kernel; everything else
        // takes the per-lane path.
        let pairable = self.seq_config.is_none() && self.noise.is_noiseless();
        let record = self.config.record_len() as u64;
        loop {
            let mut active = false;
            let mut lane = 0;
            while lane < self.lane_width {
                if !self.ensure_installed(lane) {
                    lane += 1;
                    continue;
                }
                active = true;
                let until = self.lanes.consumed[lane] + CHUNK;
                if pairable
                    && self.lanes.use_table[lane]
                    && self.lanes.lut_ok[lane]
                    && lane + 1 < self.lane_width
                    && self.ensure_installed(lane + 1)
                    && self.lanes.use_table[lane + 1]
                    && self.lanes.lut_ok[lane + 1]
                {
                    let until_b = self.lanes.consumed[lane + 1] + CHUNK;
                    let n = (until.min(record) - self.lanes.consumed[lane])
                        .min(until_b.min(record) - self.lanes.consumed[lane + 1]);
                    self.advance_pair(lane, lane + 1, n);
                    self.finish_lane(lane, until);
                    self.finish_lane(lane + 1, until_b);
                    lane += 2;
                    continue;
                }
                self.finish_lane(lane, until);
                lane += 1;
            }
            if !active {
                break;
            }
        }
    }

    /// Installs the next queued device when `lane` is empty; whether
    /// the lane now holds a device.
    fn ensure_installed(&mut self, lane: usize) -> bool {
        if self.devices.get(lane).is_none_or(|d| d.is_none()) {
            match self.queue.pop_front() {
                Some(dev) => self.install(lane, dev),
                None => return false,
            }
        }
        true
    }

    /// Runs [`advance_lane`](Self::advance_lane) and banks the report
    /// when the lane's device concluded.
    fn finish_lane(&mut self, lane: usize, until: u64) {
        if let Some(outcome) = self.advance_lane(lane, until) {
            let dev = self.devices[lane].take().expect("lane was active");
            self.reports.push(DynReport {
                device: dev.index,
                outcome,
            });
        }
    }

    /// Advances two jitter-free, noiseless, unsequenced lanes by `n`
    /// samples in one interleaved loop. Each lane performs exactly the
    /// arithmetic [`advance_lane`](Self::advance_lane) would, in the
    /// same order, so results stay bit-identical — but the two lanes'
    /// serial dependency chains (the Welford mean division, each bin's
    /// Goertzel recurrence) overlap in the pipeline instead of running
    /// back to back, which is where the batched engine's
    /// dynamic-workload speedup comes from.
    // bist-lint: hot-path — interleaved two-lane dispatch
    fn advance_pair(&mut self, a: usize, b: usize, n: u64) {
        debug_assert!(a < b);
        let nbins = self.plan.bins.len();
        let half_fs = (self.config.resolution().code_count() / 2) as f64;
        let ia = self.lanes.consumed[a] as usize;
        let ib = self.lanes.consumed[b] as usize;
        let n_us = n as usize;
        let (head, tail) = self.lanes.resonators.split_at_mut(b * nbins);
        let mut lanes = [
            PairLane {
                table: &self.table.values[ia..ia + n_us],
                lut: &self.lanes.lut[a],
                res: &mut head[a * nbins..(a + 1) * nbins],
                count: self.lanes.count[a],
                mean: self.lanes.mean[a],
                m2: self.lanes.m2[a],
            },
            PairLane {
                table: &self.table.values[ib..ib + n_us],
                lut: &self.lanes.lut[b],
                res: &mut tail[..nbins],
                count: self.lanes.count[b],
                mean: self.lanes.mean[b],
                m2: self.lanes.m2[b],
            },
        ];
        #[cfg(target_arch = "x86_64")]
        let accelerated = std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma");
        #[cfg(not(target_arch = "x86_64"))]
        let accelerated = false;
        if accelerated {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: avx2 and fma were detected at runtime just above.
            unsafe {
                pair_kernel_fma(&mut lanes, half_fs)
            };
        } else {
            pair_kernel(&mut lanes, half_fs);
        }
        let [la, lb] = lanes;
        self.lanes.consumed[a] += n;
        self.lanes.consumed[b] += n;
        self.lanes.count[a] = la.count;
        self.lanes.mean[a] = la.mean;
        self.lanes.m2[a] = la.m2;
        self.lanes.count[b] = lb.count;
        self.lanes.mean[b] = lb.mean;
        self.lanes.m2[b] = lb.m2;
    }

    /// Installs a device into `lane`, planning its record and resetting
    /// the lane's resonators (allocation-free once the lane and the
    /// shared table exist).
    fn install(&mut self, lane: usize, dev: BatchDevice<A, R>) {
        let (sine, sampling) = plan_sine(&dev.adc, &self.config);
        let jitter_free = self.noise.jitter_seconds() == 0.0;
        if jitter_free && self.table.plan.is_none() {
            // First zero-jitter lane establishes the shared stimulus
            // table: the identical expression the scalar stream
            // evaluates, so table lanes stay bit-exact. An unplanned
            // table is always privately owned (`with_shared_table`
            // only accepts planned ones), so it is built in place.
            let table = Arc::get_mut(&mut self.table).expect("unplanned tables are never shared");
            table.values.clear();
            table
                .values
                .extend((0..sampling.samples).map(|i| sine.value(sampling.sample_time(i)).0));
            table.plan = Some((sine, sampling));
        }
        let use_table = jitter_free && self.table.plan == Some((sine, sampling));
        let nbins = self.plan.bins.len();
        let l = &mut self.lanes;
        if lane == l.count.len() {
            l.resonators.extend_from_slice(&self.template);
            l.count.push(0);
            l.mean.push(0.0);
            l.m2.push(0.0);
            l.consumed.push(0);
            l.next_checkpoint.push(u64::MAX);
            l.use_table.push(use_table);
            l.sine.push(sine);
            l.sampling.push(sampling);
            l.lut.push(LevelLut::default());
            l.lut_ok.push(false);
            if let Some(policy) = self.seq_config {
                l.seq.push(DynSequencer::new(policy));
            }
            self.devices.push(None);
        } else {
            l.resonators[lane * nbins..(lane + 1) * nbins].copy_from_slice(&self.template);
            l.count[lane] = 0;
            l.mean[lane] = 0.0;
            l.m2[lane] = 0.0;
            l.consumed[lane] = 0;
            l.use_table[lane] = use_table;
            l.sine[lane] = sine;
            l.sampling[lane] = sampling;
        }
        self.lanes.lut_ok[lane] = dev
            .adc
            .transition_levels()
            .is_some_and(|levels| self.lanes.lut[lane].build(levels));
        if self.seq_config.is_some() {
            let seq = &mut self.lanes.seq[lane];
            seq.begin(&self.config);
            self.lanes.next_checkpoint[lane] = seq.next_checkpoint_after(0);
        }
        self.devices[lane] = Some(dev);
    }

    /// Advances one lane to `until` (or end of record / an early-stop
    /// decision). Returns the device's outcome when its record
    /// concluded.
    // bist-lint: hot-path — the dynamic lane inner loop
    fn advance_lane(&mut self, lane: usize, until: u64) -> Option<SeqOutcome<DynamicVerdict>> {
        let sequenced = self.seq_config.is_some();
        let record_len = self.config.record_len() as u64;
        let until = until.min(record_len);
        let half_fs = (self.config.resolution().code_count() / 2) as f64;
        let nbins = self.plan.bins.len();
        let sine = self.lanes.sine[lane];
        let sampling = self.lanes.sampling[lane];
        let use_table = self.lanes.use_table[lane];
        let mut consumed = self.lanes.consumed[lane];
        let mut count = self.lanes.count[lane];
        let mut mean = self.lanes.mean[lane];
        let mut m2 = self.lanes.m2[lane];
        let mut nc = self.lanes.next_checkpoint[lane];
        let res = &mut self.lanes.resonators[lane * nbins..(lane + 1) * nbins];
        let dev = self.devices[lane].as_mut().expect("lane active");
        let mut outcome = None;
        while consumed < until {
            let i = consumed as usize;
            let v0 = if use_table {
                self.table.values[i]
            } else {
                let t = self
                    .noise
                    .perturb_time(sampling.sample_time(i), &mut dev.rng);
                sine.value(t).0
            };
            let v = self.noise.perturb_voltage(v0, &mut dev.rng);
            let code = dev.adc.convert(Volts(v));
            let x = f64::from(code.0) + 0.5 - half_fs;
            for g in res.iter_mut() {
                g.push(x);
            }
            // Welford, in the exact operation order of
            // `GoertzelBank::push` so the moments stay bit-identical.
            count += 1;
            let delta = x - mean;
            mean += delta / count as f64;
            m2 += delta * (x - mean);
            consumed += 1;
            if sequenced {
                let seq = &mut self.lanes.seq[lane];
                seq.push(centred_half_lsb(&self.config, code));
                if consumed == nc && consumed < record_len {
                    nc = seq.next_checkpoint_after(consumed);
                    let decision = seq.checkpoint(consumed);
                    if decision.stops() {
                        let powers = assemble_powers(
                            self.config.record_len(),
                            &self.plan.bins,
                            &self.plan.slots,
                            res,
                            count,
                            mean,
                            m2,
                        );
                        outcome = Some(SeqOutcome {
                            decision,
                            verdict: self.config.judge_powers(&powers, consumed),
                        });
                        break;
                    }
                }
            }
        }
        if outcome.is_none() && consumed == record_len {
            let powers = assemble_powers(
                self.config.record_len(),
                &self.plan.bins,
                &self.plan.slots,
                res,
                count,
                mean,
                m2,
            );
            outcome = Some(SeqOutcome {
                decision: SeqDecision::Continue,
                verdict: self.config.judge_powers(&powers, consumed),
            });
        }
        self.lanes.consumed[lane] = consumed;
        self.lanes.count[lane] = count;
        self.lanes.mean[lane] = mean;
        self.lanes.m2[lane] = m2;
        self.lanes.next_checkpoint[lane] = nc;
        outcome
    }
}
