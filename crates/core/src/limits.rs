//! Count limits and step size: Eqs. 3–5 of the paper.
//!
//! A ramp of slope `U` sampled at `f_sample` advances `Δs = U/f_sample`
//! volts between samples (Eq. 5). A code whose true width is `ΔV` then
//! collects `i = ⌊ΔV/Δs + u⌋` samples (`u` uniform — Figure 5), and the
//! DNL specification translates into count limits
//!
//! * `i_min = ⌈ΔV_min/Δs⌉` (Eq. 3)
//! * `i_max = ⌊ΔV_max/Δs⌋` (Eq. 4)
//!
//! The counter stores `count − 1` (the edge-to-edge gap minus the
//! transition sample), so a `k`-bit counter can represent counts up to
//! `2^k` — which is why the paper quotes `i_max = 16` for its 4-bit
//! counter.

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Lsb;
use std::error::Error;
use std::fmt;

/// Error from count-limit planning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanLimitsError {
    /// The step size is not positive and finite.
    InvalidStep(f64),
    /// The window collapsed: no count satisfies both limits at this step
    /// size (Δs too coarse for the spec window).
    EmptyWindow {
        /// Computed lower limit.
        i_min: u64,
        /// Computed upper limit.
        i_max: u64,
    },
    /// The required `i_max` exceeds what the counter can represent.
    CounterTooSmall {
        /// Required maximum count.
        required: u64,
        /// Largest count a counter of the configured width can hold.
        capacity: u64,
    },
}

impl fmt::Display for PlanLimitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanLimitsError::InvalidStep(s) => {
                write!(f, "step size {s} LSB is not positive and finite")
            }
            PlanLimitsError::EmptyWindow { i_min, i_max } => {
                write!(f, "count window is empty: i_min {i_min} > i_max {i_max}")
            }
            PlanLimitsError::CounterTooSmall { required, capacity } => {
                write!(
                    f,
                    "counter capacity {capacity} cannot represent required i_max {required}"
                )
            }
        }
    }
}

impl Error for PlanLimitsError {}

/// The count window for one step size, plus the ideal count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountLimits {
    i_min: u64,
    i_max: u64,
    i_ideal: u64,
}

impl CountLimits {
    /// Computes Eqs. 3–4 for a spec window and step size `delta_s`
    /// (both in LSB).
    ///
    /// # Errors
    ///
    /// Returns [`PlanLimitsError::InvalidStep`] for a non-positive step
    /// and [`PlanLimitsError::EmptyWindow`] when no integer count lies
    /// inside the window.
    ///
    /// # Examples
    ///
    /// ```
    /// use bist_adc::spec::LinearitySpec;
    /// use bist_core::limits::CountLimits;
    ///
    /// # fn main() -> Result<(), bist_core::limits::PlanLimitsError> {
    /// // The paper's measurement point: ±0.5 LSB spec, Δs = 0.091 LSB.
    /// let lim = CountLimits::from_spec(&LinearitySpec::paper_stringent(), 0.091)?;
    /// assert_eq!(lim.i_min(), 6);
    /// assert_eq!(lim.i_max(), 16);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_spec(spec: &LinearitySpec, delta_s: f64) -> Result<Self, PlanLimitsError> {
        if !(delta_s.is_finite() && delta_s > 0.0) {
            return Err(PlanLimitsError::InvalidStep(delta_s));
        }
        let (lo, hi) = spec.width_window_lsb();
        let i_min = (lo.0 / delta_s).ceil() as u64;
        let i_max = (hi.0 / delta_s).floor() as u64;
        if i_min > i_max {
            return Err(PlanLimitsError::EmptyWindow { i_min, i_max });
        }
        let i_ideal = (1.0 / delta_s).round().max(1.0) as u64;
        Ok(CountLimits {
            i_min,
            i_max,
            i_ideal,
        })
    }

    /// The lower count limit (Eq. 3).
    pub fn i_min(&self) -> u64 {
        self.i_min
    }

    /// The upper count limit (Eq. 4).
    pub fn i_max(&self) -> u64 {
        self.i_max
    }

    /// The nominal count for an ideal (1 LSB) code width.
    pub fn i_ideal(&self) -> u64 {
        self.i_ideal
    }

    /// Checks the window against a `counter_bits`-bit counter that
    /// stores `count − 1` (capacity `2^k`).
    ///
    /// # Errors
    ///
    /// Returns [`PlanLimitsError::CounterTooSmall`] when `i_max` exceeds
    /// the capacity.
    pub fn check_counter(&self, counter_bits: u32) -> Result<(), PlanLimitsError> {
        let capacity = 1u64 << counter_bits;
        if self.i_max > capacity {
            Err(PlanLimitsError::CounterTooSmall {
                required: self.i_max,
                capacity,
            })
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for CountLimits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counts [{}, {}] (ideal {})",
            self.i_min, self.i_max, self.i_ideal
        )
    }
}

/// The step size in LSB from ramp slope and sample rate (Eq. 5):
/// `Δs = U/(f_sample·q)` with the slope in volts/second and the LSB size
/// in volts.
///
/// # Panics
///
/// Panics if `sample_rate` or `lsb_size_volts` is not positive.
pub fn delta_s_lsb(slope_v_per_s: f64, sample_rate: f64, lsb_size_volts: f64) -> Lsb {
    assert!(sample_rate > 0.0, "sample rate must be positive");
    assert!(lsb_size_volts > 0.0, "LSB size must be positive");
    Lsb(slope_v_per_s / sample_rate / lsb_size_volts)
}

/// The ramp slope (volts/second) that realises a step of `delta_s` LSB at
/// `sample_rate` (Eq. 5 inverted).
///
/// # Panics
///
/// Panics if any argument is not positive.
pub fn slope_for_delta_s(delta_s: Lsb, sample_rate: f64, lsb_size_volts: f64) -> f64 {
    assert!(delta_s.0 > 0.0, "step must be positive");
    assert!(sample_rate > 0.0, "sample rate must be positive");
    assert!(lsb_size_volts > 0.0, "LSB size must be positive");
    delta_s.0 * lsb_size_volts * sample_rate
}

/// Plans the paper's operating point for a `counter_bits`-bit counter:
/// the *balanced* step size `Δs = ΔV_max/(2^k + ½)`, at which the
/// counter is fully used (`i_max = 2^k`) **and** both spec bounds bisect
/// the acceptance trapezoid's transition edges, so neither window edge
/// systematically eats good or passes faulty devices.
///
/// This is exactly the paper's §4 choice: "an intermediate value for Δs
/// … in the region where i_max has \[the\] maximal counter value" —
/// for the 4-bit counter at ±0.5 LSB it gives `1.5/16.5 = 0.0909 ≈
/// 0.091 LSB`, reproducing the quoted `i_min = 6`, `i_max = 16`.
///
/// # Panics
///
/// Panics if `counter_bits` is 0 or greater than 32.
///
/// # Examples
///
/// ```
/// use bist_adc::spec::LinearitySpec;
/// use bist_core::limits::plan_delta_s;
///
/// let ds = plan_delta_s(&LinearitySpec::paper_stringent(), 4);
/// assert!((ds.0 - 0.0909).abs() < 1e-4); // the paper's 0.091 LSB
/// ```
pub fn plan_delta_s(spec: &LinearitySpec, counter_bits: u32) -> Lsb {
    assert!(
        (1..=32).contains(&counter_bits),
        "counter bits must be 1..=32"
    );
    let (_, hi) = spec.width_window_lsb();
    Lsb(hi.0 / ((1u64 << counter_bits) as f64 + 0.5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_measurement_point() {
        // Δs = 0.091 LSB, ±0.5 LSB: i_min = ceil(0.5/0.091) = 6,
        // i_max = floor(1.5/0.091) = 16 — exactly the paper's numbers.
        let lim = CountLimits::from_spec(&LinearitySpec::paper_stringent(), 0.091).unwrap();
        assert_eq!(lim.i_min(), 6);
        assert_eq!(lim.i_max(), 16);
        assert_eq!(lim.i_ideal(), 11);
    }

    #[test]
    fn planned_delta_s_fills_counter_and_balances_edges() {
        for bits in 4..=7 {
            let spec = LinearitySpec::paper_stringent();
            let ds = plan_delta_s(&spec, bits);
            let lim = CountLimits::from_spec(&spec, ds.0).unwrap();
            assert_eq!(lim.i_max(), 1 << bits, "counter {bits}");
            assert!(lim.check_counter(bits).is_ok());
            // Balanced: ΔV_max sits mid-edge between i_max·Δs and
            // (i_max+1)·Δs, and ΔV_min mid-edge below i_min·Δs.
            let (lo, hi) = spec.width_window_lsb();
            let hi_center = (lim.i_max() as f64 + 0.5) * ds.0;
            assert!((hi_center - hi.0).abs() < 1e-12, "counter {bits}");
            let lo_center = (lim.i_min() as f64 - 0.5) * ds.0;
            assert!(
                (lo_center - lo.0).abs() < 0.02,
                "counter {bits}: {lo_center}"
            );
        }
    }

    #[test]
    fn paper_table2_max_error_column() {
        // Table 2's "max. error made" column quotes ΔV_max/2^k: 1/8,
        // 1/16, 1/32, 1/64 LSB; the balanced Δs is within 4 % of it.
        let expected = [0.125, 0.0625, 0.03125, 0.015625];
        for (i, bits) in (4..=7).enumerate() {
            let ds = plan_delta_s(&LinearitySpec::paper_actual(), bits);
            let rel = (ds.0 - expected[i]).abs() / expected[i];
            assert!(rel < 0.04, "counter {bits}: Δs {} vs {}", ds.0, expected[i]);
        }
    }

    #[test]
    fn invalid_step_rejected() {
        let spec = LinearitySpec::paper_stringent();
        assert!(matches!(
            CountLimits::from_spec(&spec, 0.0),
            Err(PlanLimitsError::InvalidStep(_))
        ));
        assert!(matches!(
            CountLimits::from_spec(&spec, f64::NAN),
            Err(PlanLimitsError::InvalidStep(_))
        ));
    }

    #[test]
    fn coarse_step_empties_window() {
        // Δs = 1.2 LSB with window [0.5, 1.5]: i_min = 1, i_max = 1 — OK;
        // Δs = 0.8: i_min = ceil(0.625) = 1, i_max = floor(1.875) = 1 OK;
        // window [0.9, 1.1] with Δs = 0.7: i_min = 2, i_max = 1 → empty.
        let tight = LinearitySpec::dnl_only(0.1);
        let err = CountLimits::from_spec(&tight, 0.7).unwrap_err();
        assert!(matches!(err, PlanLimitsError::EmptyWindow { .. }));
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn counter_capacity_check() {
        let lim = CountLimits::from_spec(&LinearitySpec::paper_stringent(), 0.01).unwrap();
        // i_max = 150 needs 8 bits (capacity 256), not 7 (capacity 128).
        assert_eq!(lim.i_max(), 150);
        assert!(lim.check_counter(8).is_ok());
        let err = lim.check_counter(7).unwrap_err();
        assert!(matches!(
            err,
            PlanLimitsError::CounterTooSmall {
                required: 150,
                capacity: 128
            }
        ));
    }

    #[test]
    fn delta_s_round_trip() {
        // 0.091 V/s at 1 kHz with a 1 mV LSB → 0.091 LSB per sample.
        let ds = delta_s_lsb(0.091, 1000.0, 0.001);
        assert!((ds.0 - 0.091).abs() < 1e-12);
        let slope = slope_for_delta_s(ds, 1000.0, 0.001);
        assert!((slope - 0.091).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn delta_s_rejects_bad_rate() {
        delta_s_lsb(1.0, 0.0, 1.0);
    }

    #[test]
    fn display_formats() {
        let lim = CountLimits::from_spec(&LinearitySpec::paper_stringent(), 0.091).unwrap();
        assert_eq!(lim.to_string(), "counts [6, 16] (ideal 11)");
    }
}
