//! Sharded multi-core fleet screening: the scoped worker pool behind
//! [`Screener::run`](crate::screener::Screener::run).
//!
//! The lane-parallel engines of [`crate::batch`] keep one core busy;
//! the paper's §5 economics rest on testing "several A/D converters …
//! in parallel", and on a workstation that parallelism is cores ×
//! lanes. This module supplies the cores axis:
//!
//! * [`DeviceQueue`] packs the fleet into small chunks behind an
//!   atomic cursor. Claiming is one `fetch_add` plus a buffer move —
//!   allocation-free — and because chunks are small, a worker whose
//!   early-stop sequencer drains its lanes quickly comes back for more
//!   while slower workers are still busy, instead of idling behind a
//!   contiguous pre-partition.
//! * [`run_static_pool`] / [`run_dyn_pool`] spawn a scope of workers,
//!   each owning a reusable [`StaticBatch`]/[`DynBatch`] (per-worker
//!   lanes, scratch and report buffer — the zero-alloc steady state
//!   proven by `tests/zero_alloc.rs`) plus its own backend, and merge
//!   the reports by device index.
//!
//! **Determinism.** Every device carries its own RNG and every
//! verdict is a pure function of `(device, rng)` — which worker
//! screens a device, and in which order, cannot change its report.
//! Merging by device index therefore makes pooled output bit-identical
//! for any `workers × lane_width × chunk_size` combination; the
//! `batch_equivalence` property tests pin that invariant against the
//! scalar engine.

use std::mem;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::backend::Backend;
use crate::batch::{BatchDevice, DynBatch, DynReport, StaticBatch, StaticReport};
use bist_adc::Adc;
use rand::RngCore;

/// Default devices per claimed chunk: small enough that a worker whose
/// sequencer early-stops whole chunks refills promptly, large enough
/// to amortise the claim.
pub const DEFAULT_CHUNK: usize = 32;

/// Resolves a worker-count knob: `0` selects the host's available
/// parallelism (falling back to 1 when it cannot be queried).
pub fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    }
}

/// A fleet sharded into chunks behind an atomic cursor — the
/// work-stealing seam of the pool.
///
/// Chunks are boxed up once at construction; [`claim`](Self::claim)
/// hands the next one to the calling worker with a `fetch_add` and a
/// buffer move, so the steady-state drain performs no allocation.
#[derive(Debug)]
pub struct DeviceQueue<A, R> {
    cursor: AtomicUsize,
    chunks: Vec<Mutex<Vec<BatchDevice<A, R>>>>,
    devices: usize,
}

impl<A, R> DeviceQueue<A, R> {
    /// Packs `devices` into chunks of at most `chunk` devices each.
    ///
    /// # Panics
    ///
    /// Panics when `chunk` is zero.
    pub fn new(devices: impl IntoIterator<Item = BatchDevice<A, R>>, chunk: usize) -> Self {
        assert!(chunk >= 1, "a device queue needs a positive chunk size");
        let mut chunks = Vec::new();
        let mut count = 0usize;
        let mut current: Vec<BatchDevice<A, R>> = Vec::with_capacity(chunk);
        for dev in devices {
            count += 1;
            current.push(dev);
            if current.len() == chunk {
                let full = mem::replace(&mut current, Vec::with_capacity(chunk));
                chunks.push(Mutex::new(full));
            }
        }
        if !current.is_empty() {
            chunks.push(Mutex::new(current));
        }
        DeviceQueue {
            cursor: AtomicUsize::new(0),
            chunks,
            devices: count,
        }
    }

    /// Total devices queued at construction.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Number of chunks the fleet was sharded into.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Claims the next unclaimed chunk, or `None` once the queue is
    /// dry. Each chunk is handed out exactly once.
    // bist-lint: hot-path — the pool's steady-state claim
    pub fn claim(&self) -> Option<Vec<BatchDevice<A, R>>> {
        // ORDERING: Relaxed suffices. The cursor only needs to hand out
        // *distinct* indices, which `fetch_add`'s atomicity guarantees
        // regardless of memory ordering; the chunk contents claimed
        // through the index are protected by their own `Mutex`
        // (acquire/release on lock), and the scoped-thread join in
        // `run_*_pool` provides the happens-before edge that makes all
        // worker writes visible before reports merge. No claim is ever
        // ordered against another worker's data through this cursor.
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = self.chunks.get(i)?;
        Some(mem::take(&mut *slot.lock().expect("chunk mutex poisoned")))
    }
}

/// A worker's static inner loop: claim a chunk, queue it into the
/// worker's own `batch`, screen it through `backend`, repeat until the
/// queue is dry. Reports accumulate in the batch across chunks;
/// allocation-free once the batch's lanes are warm.
// bist-lint: hot-path — per-worker drain loop
pub fn drain_static<A, R, B>(
    batch: &mut StaticBatch<A, R>,
    queue: &DeviceQueue<A, R>,
    backend: &mut B,
) where
    A: Adc,
    R: RngCore,
    B: Backend,
{
    while let Some(devices) = queue.claim() {
        for dev in devices {
            batch.push(dev);
        }
        backend.process_batch(batch);
    }
}

/// [`drain_static`]'s dynamic-workload counterpart.
// bist-lint: hot-path — per-worker drain loop
pub fn drain_dyn<A, R, B>(batch: &mut DynBatch<A, R>, queue: &DeviceQueue<A, R>, backend: &mut B)
where
    A: Adc,
    R: RngCore,
    B: Backend,
{
    while let Some(devices) = queue.claim() {
        for dev in devices {
            batch.push(dev);
        }
        backend.process_dyn_batch(batch);
    }
}

/// Screens a static fleet across a scoped pool of `workers` threads
/// (`0` = available parallelism), each worker owning one engine from
/// `make_batch` and one backend from `make_backend`, claiming
/// `chunk`-sized device chunks from a shared [`DeviceQueue`].
///
/// Returns reports sorted by device index — bit-identical to a
/// single-worker run for any worker count and chunk size.
pub fn run_static_pool<A, R, B, FB, FK>(
    devices: impl IntoIterator<Item = BatchDevice<A, R>>,
    workers: usize,
    chunk: usize,
    make_batch: FB,
    make_backend: FK,
) -> Vec<StaticReport>
where
    A: Adc + Send,
    R: RngCore + Send,
    B: Backend,
    FB: Fn() -> StaticBatch<A, R> + Sync,
    FK: Fn() -> B + Sync,
{
    let queue = DeviceQueue::new(devices, chunk);
    let workers = resolve_workers(workers).min(queue.chunk_count()).max(1);
    if workers <= 1 {
        let mut batch = make_batch();
        let mut backend = make_backend();
        drain_static(&mut batch, &queue, &mut backend);
        return batch.take_reports();
    }
    let merged: Mutex<Vec<StaticReport>> = Mutex::new(Vec::with_capacity(queue.devices()));
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut batch = make_batch();
                let mut backend = make_backend();
                drain_static(&mut batch, &queue, &mut backend);
                let mut reports = batch.take_reports();
                merged
                    .lock()
                    .expect("report mutex poisoned")
                    .append(&mut reports);
            });
        }
    });
    let mut reports = merged.into_inner().expect("report mutex poisoned");
    reports.sort_unstable_by_key(|r| r.device);
    reports
}

/// [`run_static_pool`]'s dynamic-workload counterpart. Plan the shared
/// stimulus with [`crate::batch::StimulusTable::plan_for`] and hand
/// every `make_batch` the same `Arc` so workers read one table.
pub fn run_dyn_pool<A, R, B, FB, FK>(
    devices: impl IntoIterator<Item = BatchDevice<A, R>>,
    workers: usize,
    chunk: usize,
    make_batch: FB,
    make_backend: FK,
) -> Vec<DynReport>
where
    A: Adc + Send,
    R: RngCore + Send,
    B: Backend,
    FB: Fn() -> DynBatch<A, R> + Sync,
    FK: Fn() -> B + Sync,
{
    let queue = DeviceQueue::new(devices, chunk);
    let workers = resolve_workers(workers).min(queue.chunk_count()).max(1);
    if workers <= 1 {
        let mut batch = make_batch();
        let mut backend = make_backend();
        drain_dyn(&mut batch, &queue, &mut backend);
        return batch.take_reports();
    }
    let merged: Mutex<Vec<DynReport>> = Mutex::new(Vec::with_capacity(queue.devices()));
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut batch = make_batch();
                let mut backend = make_backend();
                drain_dyn(&mut batch, &queue, &mut backend);
                let mut reports = batch.take_reports();
                merged
                    .lock()
                    .expect("report mutex poisoned")
                    .append(&mut reports);
            });
        }
    });
    let mut reports = merged.into_inner().expect("report mutex poisoned");
    reports.sort_unstable_by_key(|r| r.device);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BehavioralBackend;
    use crate::config::BistConfig;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::transfer::TransferFunction;
    use bist_adc::types::{Resolution, Volts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn queue_of(n: usize, chunk: usize) -> DeviceQueue<TransferFunction, StdRng> {
        DeviceQueue::new(
            (0..n).map(|i| {
                BatchDevice::new(
                    i,
                    TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)),
                    StdRng::seed_from_u64(i as u64),
                )
            }),
            chunk,
        )
    }

    #[test]
    fn queue_packs_exact_and_ragged_chunks() {
        let q = queue_of(10, 4);
        assert_eq!(q.devices(), 10);
        assert_eq!(q.chunk_count(), 3);
        let sizes: Vec<usize> = std::iter::from_fn(|| q.claim()).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert!(q.claim().is_none(), "a drained queue stays dry");

        let q = queue_of(8, 4);
        assert_eq!(q.chunk_count(), 2);
        let q = queue_of(0, 4);
        assert_eq!(q.chunk_count(), 0);
        assert!(q.claim().is_none());
    }

    #[test]
    fn claim_hands_each_device_out_exactly_once() {
        let q = queue_of(23, 3);
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.claim())
            .flatten()
            .map(|d| d.index)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_reports_are_sorted_and_worker_count_invariant() {
        let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(6)
            .build()
            .expect("paper-range counter");
        let fleet = |n: usize| {
            (0..n).map(move |i| {
                BatchDevice::new(
                    i,
                    TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)),
                    StdRng::seed_from_u64(i as u64),
                )
            })
        };
        let make_batch = || StaticBatch::new(config).with_lane_width(4);
        let reference = run_static_pool(fleet(17), 1, 5, make_batch, || BehavioralBackend);
        assert_eq!(reference.len(), 17);
        for (i, r) in reference.iter().enumerate() {
            assert_eq!(r.device, i, "reports merge by device index");
        }
        for workers in [2, 3, 16] {
            for chunk in [1, 4, 32] {
                let pooled =
                    run_static_pool(fleet(17), workers, chunk, make_batch, || BehavioralBackend);
                assert_eq!(pooled, reference, "workers={workers} chunk={chunk}");
            }
        }
    }
}
