//! Uncertainty-guided early-stop sequencing over both verdict paths.
//!
//! Today's engines consume the full ramp (static) or the full coherent
//! record (dynamic) before latching a verdict, yet the streaming
//! accumulators expose everything needed to decide sooner: the Schey et
//! al. line in PAPERS.md (arXiv:2511.11895 / 2511.11917) shows that an
//! incrementally-updated metric plus a running confidence estimate lets
//! a tester accept or reject long before the sweep completes. This
//! module is that decision layer:
//!
//! * [`SequencerConfig`] — the early-stop policy: type I/II *drift*
//!   budgets `alpha`/`beta` (how much the sequenced decision may
//!   disagree with the full-sweep decision), the earliest decision
//!   point `min_samples`, and the checkpoint spacing `check_interval`.
//! * [`StaticSequencer`] — watches the LSB-monitor measurement stream
//!   and the functional checks: Welford moments over the measured code
//!   widths drive Gaussian-tail predictions of the remaining codes'
//!   DNL/INL outcomes, with per-checkpoint (Bonferroni) budget
//!   spending. Observed failures reject immediately (zero drift —
//!   the full sweep would certainly reject); a judged-complete sweep
//!   accepts after a quiet dwell (the overshoot tail is skipped).
//! * [`DynSequencer`] — watches the centred code stream itself: an
//!   incremental fundamental quadrature plus per-block residual powers
//!   give a running noise-and-distortion estimate with a Welford
//!   confidence interval; the SINAD/ENOB/THD/noise limits are accepted
//!   or rejected as soon as the interval (plus a deterministic
//!   partial-record leakage guard) clears them.
//!
//! Each checkpoint emits a [`SeqDecision`]: `Continue`,
//! `AcceptEarly(at_sample)` or `RejectEarly(at_sample)`.
//!
//! ## Backend decision-exactness
//!
//! The sequencer is threaded through the backend seam
//! ([`crate::backend::Backend::process_sequenced`] /
//! [`crate::backend::Backend::process_dyn_sequenced`]) under a
//! **visibility protocol** that makes the behavioural engine and the
//! gate-accurate RTL tops stop at the *same sample index*:
//!
//! * Static: every RTL measurement and functional check emerges exactly
//!   [`STATIC_DECISION_LATENCY`] ticks after the behavioural
//!   accumulators record it (the two-flop synchroniser; both deglitch
//!   filters vote over windows ending at the current sample, adding no
//!   lag). A checkpoint "at sample `s`" is therefore evaluated by both
//!   backends after consuming sample `s + 2`: the RTL has emitted
//!   exactly the events with closing sample `≤ s`, and the behavioural
//!   wrapper delays its events through a bounded FIFO to match. Early
//!   verdict counters come from the sequencer's own visible tallies, so
//!   early-stopped verdicts are bit-exact across backends by
//!   construction; completed sweeps fall through to the PR-3 bit-exact
//!   full-sweep path.
//! * Dynamic: the sequencer consumes the centred code values directly —
//!   the identical integer sequence both backends acquire — so its
//!   decisions cannot depend on the backend at all. On an early stop
//!   the RTL input pipeline is flushed (one drain tick) so both
//!   backends report the same consumed-sample count; the truncated
//!   record's raw dB metrics may still differ by the RTL's bounded
//!   fixed-point quantisation, exactly like the full-record contract.
//!
//! The `bist_mc::differential::run_seq_differential` fleet sweep (and
//! the `seq_fleet` binary gating CI) validates decision-exactness at
//! scale and measures the empirical type I/II drift and the
//! samples-to-decision saving against full-sweep ground truth.

use crate::config::{BistConfig, ConfigError};
use crate::dynamic::{DynamicConfig, DynamicVerdict};
use crate::harness::BistVerdict;
use bist_dsp::special::{normal_pdf, normal_quantile};
use bist_dsp::stats::Running;
use std::f64::consts::TAU;
use std::fmt;

/// Exact emission latency of the static RTL datapath relative to the
/// behavioural accumulators, in samples: the two-flop input
/// synchroniser. Both deglitch filters (3-tap majority, median-of-3)
/// vote over windows ending at the current sample and add no further
/// lag, so the latency is constant across configurations — the property
/// tests in `crates/core/tests/sequencer_equivalence.rs` pin it.
pub const STATIC_DECISION_LATENCY: u64 = 2;

/// Minimum judged codes before the static sequencer trusts its Welford
/// statistics.
const MIN_CODES_FOR_STATS: u64 = 8;

/// Minimum residual blocks before the dynamic sequencer trusts its
/// confidence interval.
const MIN_BLOCKS_FOR_STATS: u64 = 4;

/// The checkpoint-level early-stop decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqDecision {
    /// Not confident either way yet — keep sweeping.
    Continue,
    /// Accept the device now; the payload is the decision sample index
    /// (the visible horizon the decision was taken at).
    AcceptEarly(u64),
    /// Reject the device now; the payload is the decision sample index.
    RejectEarly(u64),
}

impl SeqDecision {
    /// Whether this decision stops the sweep.
    pub fn stops(&self) -> bool {
        !matches!(self, SeqDecision::Continue)
    }

    /// The decision sample index, if the sweep was stopped early.
    pub fn at_sample(&self) -> Option<u64> {
        match self {
            SeqDecision::Continue => None,
            SeqDecision::AcceptEarly(s) | SeqDecision::RejectEarly(s) => Some(*s),
        }
    }
}

impl fmt::Display for SeqDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqDecision::Continue => write!(f, "continue"),
            SeqDecision::AcceptEarly(s) => write!(f, "accept early @ {s}"),
            SeqDecision::RejectEarly(s) => write!(f, "reject early @ {s}"),
        }
    }
}

/// The early-stop policy: drift budgets and checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequencerConfig {
    /// Type I drift budget: the allowed probability (per device) that
    /// the sequencer *rejects* a device the full sweep would accept.
    /// Spent Bonferroni-style across the sweep's checkpoints.
    pub alpha: f64,
    /// Type II drift budget: the allowed probability (per device) that
    /// the sequencer *accepts* a device the full sweep would reject.
    pub beta: f64,
    /// No decision before this many samples are visible — a floor on
    /// the evidence any early stop is based on.
    pub min_samples: u64,
    /// Checkpoint spacing in samples; also the residual block length of
    /// the dynamic statistic and the quiet dwell required before a
    /// judged-complete static sweep accepts.
    pub check_interval: u64,
}

impl Default for SequencerConfig {
    fn default() -> Self {
        SequencerConfig {
            alpha: 1e-3,
            beta: 1e-3,
            min_samples: 256,
            check_interval: 64,
        }
    }
}

impl SequencerConfig {
    /// Starts a builder at the default policy — the validating
    /// counterpart of struct-literal construction.
    pub fn builder() -> SequencerConfigBuilder {
        SequencerConfigBuilder {
            config: SequencerConfig::default(),
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a knob is out of range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(ConfigError::BadAlpha(self.alpha));
        }
        if !(self.beta > 0.0 && self.beta < 1.0) {
            return Err(ConfigError::BadBeta(self.beta));
        }
        if self.min_samples == 0 {
            return Err(ConfigError::BadMinSamples);
        }
        if self.check_interval == 0 {
            return Err(ConfigError::BadCheckInterval);
        }
        Ok(())
    }

    /// Whether `visible` samples is a checkpoint under this policy.
    pub fn checkpoint_due(&self, visible: u64) -> bool {
        visible >= self.min_samples
            && (visible - self.min_samples).is_multiple_of(self.check_interval)
    }

    /// Per-checkpoint budget: the total budget split evenly over the
    /// worst-case number of looks (clamped into a numerically safe
    /// range for the normal quantile).
    fn per_look(total: f64, looks: u64) -> f64 {
        (total / looks.max(1) as f64).clamp(1e-12, 0.5)
    }
}

/// Builder for [`SequencerConfig`]: the same knobs, validated at
/// [`build`](SequencerConfigBuilder::build) through the shared
/// [`ConfigError`].
///
/// # Examples
///
/// ```
/// use bist_core::sequencer::SequencerConfig;
///
/// # fn main() -> Result<(), bist_core::config::ConfigError> {
/// let policy = SequencerConfig::builder()
///     .alpha(1e-4)
///     .min_samples(512)
///     .build()?;
/// assert_eq!(policy.min_samples, 512);
/// assert!(SequencerConfig::builder().alpha(2.0).build().is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequencerConfigBuilder {
    config: SequencerConfig,
}

impl SequencerConfigBuilder {
    /// Sets the type I drift budget.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Sets the type II drift budget.
    pub fn beta(mut self, beta: f64) -> Self {
        self.config.beta = beta;
        self
    }

    /// Sets the evidence floor before any decision.
    pub fn min_samples(mut self, min_samples: u64) -> Self {
        self.config.min_samples = min_samples;
        self
    }

    /// Sets the checkpoint spacing in samples.
    pub fn check_interval(mut self, check_interval: u64) -> Self {
        self.config.check_interval = check_interval;
        self
    }

    /// Builds and validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a knob is out of range.
    pub fn build(self) -> Result<SequencerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A verdict type the sequencer can wrap: exposes the device decision
/// and the consumed-sample count.
pub trait SweptVerdict {
    /// The full-sweep device decision.
    fn accepted(&self) -> bool;
    /// ADC samples the sweep consumed.
    fn samples(&self) -> u64;
}

impl SweptVerdict for BistVerdict {
    fn accepted(&self) -> bool {
        BistVerdict::accepted(self)
    }

    fn samples(&self) -> u64 {
        self.samples
    }
}

impl SweptVerdict for DynamicVerdict {
    fn accepted(&self) -> bool {
        DynamicVerdict::accepted(self)
    }

    fn samples(&self) -> u64 {
        self.samples
    }
}

/// Outcome of one sequenced sweep: the early-stop decision (or
/// [`SeqDecision::Continue`] for a sweep that ran to completion) plus
/// the verdict latched at stop time.
///
/// For an early stop the verdict holds the sequencer-visible counters
/// (static) or the truncated-record metrics (dynamic); either way
/// [`SeqOutcome::accepted`] — not `verdict.accepted()` — is the device
/// decision the silicon latches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqOutcome<V> {
    /// The sequencer's decision for this sweep.
    pub decision: SeqDecision,
    /// The verdict at stop time (the full-sweep verdict when
    /// `decision` is `Continue`).
    pub verdict: V,
}

impl<V: SweptVerdict> SeqOutcome<V> {
    /// The device-level decision the sequenced test latches.
    pub fn accepted(&self) -> bool {
        match self.decision {
            SeqDecision::AcceptEarly(_) => true,
            SeqDecision::RejectEarly(_) => false,
            SeqDecision::Continue => self.verdict.accepted(),
        }
    }

    /// Whether the sweep stopped before consuming its full stimulus.
    pub fn stopped_early(&self) -> bool {
        self.decision.stops()
    }

    /// ADC samples physically consumed by the sequenced sweep.
    pub fn samples_consumed(&self) -> u64 {
        self.verdict.samples()
    }

    /// Samples saved against a known full-sweep length.
    pub fn samples_saved(&self, full_samples: u64) -> u64 {
        full_samples.saturating_sub(self.samples_consumed())
    }
}

// ---------------------------------------------------------------------
// Static workload
// ---------------------------------------------------------------------

/// Mills-ratio upper bound on the standard normal upper tail:
/// `P(Z > z) ≤ φ(z)/z` for every `z > 0` (capped at 1 near/below
/// zero). Exp-only — the checkpoint hot path cannot afford the
/// continued-fraction `erfc`.
fn gauss_tail_upper(z: f64) -> f64 {
    if z <= 0.4 {
        1.0
    } else {
        normal_pdf(z) / z
    }
}

/// Matching lower bound: `P(Z > z) ≥ φ(z)·z/(1+z²)` for `z > 0`, and
/// `½` for `z ≤ 0` (the true tail is at least that there).
fn gauss_tail_lower(z: f64) -> f64 {
    if z <= 0.0 {
        0.5
    } else {
        normal_pdf(z) * z / (1.0 + z * z)
    }
}

/// The early-stop decision layer for the static-linearity workload.
///
/// Reusable across sweeps: [`StaticSequencer::begin`] rederives the
/// per-config thresholds and clears the tallies without touching the
/// heap (the struct is entirely inline state), so the sequenced
/// device→verdict hot path stays allocation-free after warm-up.
#[derive(Debug, Clone)]
pub struct StaticSequencer {
    policy: SequencerConfig,
    // Derived per sweep by `begin`.
    i_min: f64,
    i_max: f64,
    i_ideal: f64,
    inl_limit: Option<u64>,
    expected: u64,
    alpha_look: f64,
    beta_look: f64,
    /// `ln(1/alpha_look)` — the early-reject evidence threshold, so the
    /// hot checkpoint avoids `powf`/`ln` entirely.
    ln_inv_alpha: f64,
    z_alpha: f64,
    z_beta: f64,
    // Visible tallies.
    codes: u64,
    dnl_failures: u64,
    inl_failures: u64,
    functional_checks: u64,
    functional_mismatches: u64,
    inl_last: i64,
    last_event_sample: u64,
    widths: Running,
}

impl StaticSequencer {
    /// Creates a sequencer with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy fails [`SequencerConfig::validate`].
    pub fn new(policy: SequencerConfig) -> Self {
        if let Err(e) = policy.validate() {
            panic!("invalid sequencer policy: {e}");
        }
        StaticSequencer {
            policy,
            i_min: 0.0,
            i_max: 0.0,
            i_ideal: 1.0,
            inl_limit: None,
            expected: 0,
            alpha_look: 0.5,
            beta_look: 0.5,
            ln_inv_alpha: 0.0,
            z_alpha: 0.0,
            z_beta: 0.0,
            codes: 0,
            dnl_failures: 0,
            inl_failures: 0,
            functional_checks: 0,
            functional_mismatches: 0,
            inl_last: 0,
            last_event_sample: 0,
            widths: Running::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &SequencerConfig {
        &self.policy
    }

    /// Arms the sequencer for one sweep under `config`: derives the
    /// count window, the expected measurement count and the per-look
    /// budgets, and clears every tally.
    pub fn begin(&mut self, config: &BistConfig) {
        let limits = config.limits();
        self.i_min = limits.i_min() as f64;
        self.i_max = limits.i_max() as f64;
        self.i_ideal = limits.i_ideal() as f64;
        self.inl_limit = config.inl_limit_counts();
        self.expected = config.expected_measurements();
        // Worst-case checkpoint count: the planned sweep is roughly
        // i_ideal samples per code over the expected codes plus the
        // 14-LSB lead-in/overshoot of the harness ramp.
        let horizon = limits.i_ideal() * (self.expected + 14);
        let looks = horizon
            .saturating_sub(self.policy.min_samples)
            .div_euclid(self.policy.check_interval)
            + 1;
        self.alpha_look = SequencerConfig::per_look(self.policy.alpha, looks);
        self.beta_look = SequencerConfig::per_look(self.policy.beta, looks);
        self.ln_inv_alpha = -self.alpha_look.ln();
        self.z_alpha = normal_quantile(1.0 - self.alpha_look);
        self.z_beta = normal_quantile(1.0 - self.beta_look);
        self.codes = 0;
        self.dnl_failures = 0;
        self.inl_failures = 0;
        self.functional_checks = 0;
        self.functional_mismatches = 0;
        self.inl_last = 0;
        self.last_event_sample = 0;
        self.widths = Running::new();
    }

    /// Feeds one visible code measurement (closing sample `at_sample`).
    pub fn observe_code(
        &mut self,
        at_sample: u64,
        count: u64,
        dnl_pass: bool,
        inl_pass: bool,
        inl_counts: i64,
    ) {
        self.codes += 1;
        if !dnl_pass {
            self.dnl_failures += 1;
        }
        if !inl_pass {
            self.inl_failures += 1;
        }
        self.inl_last = inl_counts;
        self.last_event_sample = at_sample;
        self.widths.push(count as f64);
    }

    /// Feeds one visible functional check.
    pub fn observe_functional(&mut self, ok: bool) {
        self.functional_checks += 1;
        if !ok {
            self.functional_mismatches += 1;
        }
    }

    /// Number of code measurements visible so far.
    pub fn codes_seen(&self) -> u64 {
        self.codes
    }

    /// Whether a checkpoint is due at `visible` samples.
    pub fn checkpoint_due(&self, visible: u64) -> bool {
        self.policy.checkpoint_due(visible)
    }

    /// The first checkpoint sample strictly after `visible` on the
    /// `min_samples + k·check_interval` lattice — the countdown target
    /// hot loops compare against instead of a per-sample modulo.
    pub fn next_checkpoint_after(&self, visible: u64) -> u64 {
        let min = self.policy.min_samples;
        if visible < min {
            min
        } else {
            min + ((visible - min) / self.policy.check_interval + 1) * self.policy.check_interval
        }
    }

    /// The compact verdict as visible at stop time: the sequencer's own
    /// tallies (identical across backends by construction) with the
    /// physically consumed sample count.
    pub fn verdict(&self, samples_consumed: u64) -> BistVerdict {
        BistVerdict {
            codes_judged: self.codes,
            dnl_failures: self.dnl_failures,
            inl_failures: self.inl_failures,
            functional_checks: self.functional_checks,
            functional_mismatches: self.functional_mismatches,
            expected_codes: self.expected,
            samples: samples_consumed,
        }
    }

    /// Upper bound on the Gaussian mass outside the count window — the
    /// accept-side estimate (overestimating can only delay an accept).
    /// Uses the `φ(z)/z` tail bound: exp-only arithmetic, no `erfc` on
    /// the hot checkpoint path.
    fn tail_outside_upper(&self, mean: f64, sd: f64) -> f64 {
        let sd = sd.max(1e-6);
        let below = gauss_tail_upper((mean - self.i_min) / sd);
        let above = gauss_tail_upper((self.i_max - mean) / sd);
        (below + above).min(1.0)
    }

    /// Lower bound on the Gaussian mass outside the (continuity-
    /// corrected) count window — the reject-side estimate
    /// (underestimating can only delay a reject).
    fn tail_outside_lower(&self, mean: f64, sd: f64) -> f64 {
        let sd = sd.max(1e-6);
        let below = gauss_tail_lower((mean - (self.i_min - 0.5)) / sd);
        let above = gauss_tail_lower(((self.i_max + 0.5) - mean) / sd);
        (below + above).min(1.0)
    }

    /// Evaluates the decision rule at a checkpoint with `visible`
    /// samples of evidence.
    // bist-lint: hot-path — static checkpoint decision
    pub fn checkpoint(&mut self, visible: u64) -> SeqDecision {
        // Observed failure: the full sweep rejects with certainty.
        if self.dnl_failures + self.inl_failures + self.functional_mismatches > 0 {
            return SeqDecision::RejectEarly(visible);
        }
        // Surplus measurements: exact-count completeness already broken.
        if self.codes > self.expected {
            return SeqDecision::RejectEarly(visible);
        }
        // Judged complete and clean: accept once the tail has been
        // quiet for a full checkpoint interval (a toggle still in
        // flight right after the last transition would add a surplus
        // measurement the full sweep would see).
        if self.codes == self.expected {
            return if visible - self.last_event_sample >= self.policy.check_interval {
                SeqDecision::AcceptEarly(visible)
            } else {
                SeqDecision::Continue
            };
        }
        // Beyond this point the rules are *statistical*: they predict
        // the codes not yet swept from the Welford moments of the codes
        // already measured, i.e. they are calibrated against the
        // process model (exchangeable code widths — the §3 Gaussian
        // law both fleet populations follow). A localized defect
        // parked beyond the decision horizon is invisible to any early
        // decision by construction; the drift it causes is what the
        // `beta` budget prices, and what the sequenced differential
        // fleet sweep measures empirically.
        let k = self.codes;
        if k < MIN_CODES_FOR_STATS {
            return SeqDecision::Continue;
        }
        let remaining = (self.expected - k) as f64;
        let mean = self.widths.mean();
        let sd = self.widths.std_dev().max(1e-6);
        let se = sd / (k as f64).sqrt();
        let drift = mean - self.i_ideal;

        // --- Early accept (spends beta): every remaining code is
        // predicted to pass both windows with confidence.
        // `P(any fail) ≤ r·p_hi` (Bonferroni), so gating `r·p_hi` is
        // conservative and avoids `powf` on the hot path.
        let sd_hi = sd * (1.0 + self.z_beta / (2.0 * (k - 1) as f64).sqrt());
        let p_hi = self
            .tail_outside_upper(mean - self.z_beta * se, sd_hi)
            .max(self.tail_outside_upper(mean + self.z_beta * se, sd_hi));
        let inl_ok = match self.inl_limit {
            None => true,
            Some(limit) => {
                let end = (self.inl_last as f64 + drift * remaining).abs();
                let spread = self.z_beta * (2.0 * sd_hi * remaining.sqrt() + se * remaining);
                end + spread <= limit as f64
            }
        };
        if remaining * p_hi <= self.beta_look && inl_ok {
            return SeqDecision::AcceptEarly(visible);
        }

        // --- Early reject (spends alpha): the device is predicted to
        // fail somewhere ahead with confidence, under the *optimistic*
        // reading of the statistics. `(1−p)^r ≤ e^{−r·p}`, so demanding
        // `r·p_lo ≥ ln(1/alpha_look)` is conservative.
        let center = (self.i_min + self.i_max) / 2.0;
        let mean_opt = center.clamp(mean - self.z_alpha * se, mean + self.z_alpha * se);
        let p_lo = self.tail_outside_lower(mean_opt, sd);
        if remaining * p_lo >= self.ln_inv_alpha {
            return SeqDecision::RejectEarly(visible);
        }
        if let Some(limit) = self.inl_limit {
            let end = (self.inl_last as f64 + drift * remaining).abs();
            let spread = self.z_alpha * (2.0 * sd * remaining.sqrt() + se * remaining);
            if end - spread > limit as f64 {
                return SeqDecision::RejectEarly(visible);
            }
        }
        SeqDecision::Continue
    }
}

// ---------------------------------------------------------------------
// Dynamic workload
// ---------------------------------------------------------------------

/// Per-block partial sums of the dynamic residual statistic. The trig
/// moments are data-independent but cheapest to accumulate in stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct BlockSums {
    sv: f64,
    svv: f64,
    svc: f64,
    svs: f64,
    c: f64,
    s: f64,
    cc: f64,
    ss: f64,
    cs: f64,
}

/// The early-stop decision layer for the dynamic workload.
///
/// Consumes the centred half-LSB code values directly — the identical
/// integer sequence both backends acquire — so its decisions are
/// backend-independent by construction. The statistic: an incremental
/// quadrature estimate of the fundamental (amplitude + DC) and, per
/// [`SequencerConfig::check_interval`]-sample block, the residual power
/// after subtracting that model. The residual is exactly the
/// noise-and-distortion (NAD) band of the SINAD definition; Welford
/// moments over the blocks give a confidence interval, and a
/// deterministic partial-record leakage guard covers the model bias.
/// Harmonic distortion is bounded through the NAD (each distinct alias
/// bin's power is part of the residual), so no per-harmonic state is
/// needed.
///
/// Reusable across sweeps and configurations: the block buffer is
/// cleared, never shrunk, so the sequenced dynamic hot path is
/// allocation-free after warm-up.
#[derive(Debug, Clone)]
pub struct DynSequencer {
    policy: SequencerConfig,
    // Plan cache key.
    n: usize,
    bin: usize,
    harmonics: usize,
    // Derived thresholds.
    sinad_ratio_min: f64,
    thd_ratio_max: f64,
    noise_max_half: f64,
    order_multiplicity: f64,
    guard_scale: f64,
    alpha_look: f64,
    beta_look: f64,
    z_alpha: f64,
    z_beta: f64,
    // Quadrature recurrence at the fundamental.
    rot_cos: f64,
    rot_sin: f64,
    cur_cos: f64,
    cur_sin: f64,
    qc: f64,
    qs: f64,
    // Exact integer side sums.
    sum: i64,
    sum_sq: u64,
    samples: u64,
    // Residual blocks.
    blocks: Vec<BlockSums>,
    cur: BlockSums,
    /// Samples left in the current block (countdown — no hot-path
    /// modulo).
    block_left: u64,
}

impl DynSequencer {
    /// Creates a sequencer with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy fails [`SequencerConfig::validate`].
    pub fn new(policy: SequencerConfig) -> Self {
        if let Err(e) = policy.validate() {
            panic!("invalid sequencer policy: {e}");
        }
        DynSequencer {
            policy,
            n: 0,
            bin: 0,
            harmonics: 0,
            sinad_ratio_min: 1.0,
            thd_ratio_max: 1.0,
            noise_max_half: 0.0,
            order_multiplicity: 1.0,
            guard_scale: 0.0,
            alpha_look: 0.5,
            beta_look: 0.5,
            z_alpha: 0.0,
            z_beta: 0.0,
            rot_cos: 1.0,
            rot_sin: 0.0,
            cur_cos: 1.0,
            cur_sin: 0.0,
            qc: 0.0,
            qs: 0.0,
            sum: 0,
            sum_sq: 0,
            samples: 0,
            blocks: Vec::new(),
            cur: BlockSums::default(),
            block_left: policy.check_interval,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &SequencerConfig {
        &self.policy
    }

    /// Arms the sequencer for one record under `config`: derives the
    /// limit thresholds (in half-LSB² units), the leakage guard and the
    /// per-look budgets, and clears all accumulation. The block buffer
    /// keeps its capacity.
    pub fn begin(&mut self, config: &DynamicConfig) {
        let n = config.record_len();
        let bin = config.cycles() as usize;
        if self.n != n || self.bin != bin || self.harmonics != config.harmonics() {
            self.n = n;
            self.bin = bin;
            self.harmonics = config.harmonics();
            let omega = TAU * bin as f64 / n as f64;
            self.rot_cos = omega.cos();
            self.rot_sin = omega.sin();
            // Worst orders-per-alias-bin multiplicity of the plan: the
            // THD band is bounded by `multiplicity × NAD`.
            let plan = bist_dsp::goertzel::harmonic_plan(bin, n, config.harmonics());
            let mut mult = 1u32;
            for slot in 0..plan.bins.len() {
                let shares = plan.slots.iter().flatten().filter(|&&x| x == slot).count() as u32;
                mult = mult.max(shares);
            }
            self.order_multiplicity = mult as f64;
            // Partial-record model bias: the quadrature estimates of
            // the fundamental and the DC over m samples carry Dirichlet
            // leakage O(1/(m sin ω)) and O(1/(m sin ω/2)); the induced
            // residual-power bias is covered by guard_scale·carrier/m².
            let s1 = omega.sin().abs().max(1e-6);
            let s2 = (omega / 2.0).sin().abs().max(1e-6);
            self.guard_scale = 8.0 / (s1 * s1) + 4.0 / (s2 * s2);
        }
        let limits = config.limits();
        let sinad_eff = limits.min_sinad_db.max(limits.min_enob * 6.02 + 1.76);
        self.sinad_ratio_min = 10f64.powf(sinad_eff / 10.0);
        self.thd_ratio_max = 10f64.powf(limits.max_thd_db / 10.0);
        // Limits are in LSB²; the sequencer works in half-LSB² (×4).
        self.noise_max_half = limits.max_noise_power_lsb2 * 4.0;
        let looks = (n as u64)
            .saturating_sub(self.policy.min_samples)
            .div_euclid(self.policy.check_interval)
            + 1;
        self.alpha_look = SequencerConfig::per_look(self.policy.alpha, looks);
        self.beta_look = SequencerConfig::per_look(self.policy.beta, looks);
        self.z_alpha = normal_quantile(1.0 - self.alpha_look);
        self.z_beta = normal_quantile(1.0 - self.beta_look);
        self.cur_cos = 1.0;
        self.cur_sin = 0.0;
        self.qc = 0.0;
        self.qs = 0.0;
        self.sum = 0;
        self.sum_sq = 0;
        self.samples = 0;
        self.blocks.clear();
        self.blocks
            .reserve(n / self.policy.check_interval as usize + 1);
        self.cur = BlockSums::default();
        self.block_left = self.policy.check_interval;
    }

    /// Feeds one centred half-LSB code value `v = 2·code + 1 − 2ⁿ`.
    // bist-lint: hot-path — per-sample dynamic sequencer update
    pub fn push(&mut self, v: i64) {
        let x = v as f64;
        let (c, s) = (self.cur_cos, self.cur_sin);
        self.qc += x * c;
        self.qs += x * s;
        // Rotate the quadrature phasor by ω.
        self.cur_cos = c * self.rot_cos - s * self.rot_sin;
        self.cur_sin = s * self.rot_cos + c * self.rot_sin;
        self.sum += v;
        self.sum_sq += (v * v) as u64;
        self.cur.sv += x;
        self.cur.svv += x * x;
        self.cur.svc += x * c;
        self.cur.svs += x * s;
        self.cur.c += c;
        self.cur.s += s;
        self.cur.cc += c * c;
        self.cur.ss += s * s;
        self.cur.cs += c * s;
        self.samples += 1;
        self.block_left -= 1;
        if self.block_left == 0 {
            self.blocks.push(self.cur);
            self.cur = BlockSums::default();
            self.block_left = self.policy.check_interval;
        }
    }

    /// Samples consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Whether a checkpoint is due at `visible` consumed samples: the
    /// dynamic path has no pipeline latency, so decisions ride directly
    /// on the acquired stream — on block boundaries at or after
    /// `min_samples`, strictly before the record completes. (Hot loops
    /// use [`DynSequencer::next_checkpoint_after`] countdowns instead
    /// of calling this per sample.)
    pub fn checkpoint_due(&self, visible: u64) -> bool {
        visible < self.n as u64
            && visible >= self.policy.min_samples
            && visible.is_multiple_of(self.policy.check_interval)
    }

    /// The first checkpoint sample strictly after `consumed` — the
    /// countdown target hot loops compare against instead of a
    /// per-sample modulo.
    pub fn next_checkpoint_after(&self, consumed: u64) -> u64 {
        let interval = self.policy.check_interval;
        let next = (consumed / interval + 1) * interval;
        next.max(self.policy.min_samples.div_ceil(interval) * interval)
    }

    /// Evaluates the decision rule at a checkpoint with `visible`
    /// consumed samples.
    // bist-lint: hot-path — dynamic checkpoint decision
    pub fn checkpoint(&mut self, visible: u64) -> SeqDecision {
        let blocks = self.blocks.len() as u64;
        if blocks < MIN_BLOCKS_FOR_STATS {
            return SeqDecision::Continue;
        }
        let m = visible as f64;
        let dc = self.sum as f64 / m;
        let ac = 2.0 * self.qc / m;
        let asn = 2.0 * self.qs / m;
        let carrier = (ac * ac + asn * asn) / 2.0;
        let block_len = self.policy.check_interval as f64;
        let mut resid = Running::new();
        for b in &self.blocks {
            let model_energy = ac * ac * b.cc
                + asn * asn * b.ss
                + 2.0 * ac * asn * b.cs
                + 2.0 * dc * (ac * b.c + asn * b.s)
                + block_len * dc * dc;
            let r = b.svv - 2.0 * (ac * b.svc + asn * b.svs + dc * b.sv) + model_energy;
            resid.push(r / block_len);
        }
        let nad = resid.mean().max(0.0);
        let se = resid.std_dev() / (blocks as f64).sqrt();
        let guard = self.guard_scale * carrier / (m * m);
        let nad_hi = nad + self.z_beta * se + guard;
        let nad_lo = (nad - self.z_alpha * se - guard).max(0.0);
        // Carrier estimation uncertainty: noise-driven variance plus
        // the same relative leakage bound.
        let car_se = 2.0 * (carrier * nad / m).max(0.0).sqrt() + 4.0 * carrier / m;
        let car_lo = carrier - self.z_beta * car_se;
        let car_hi = carrier + self.z_alpha * car_se;

        // Accept: every limit confidently met. SINAD/ENOB share the
        // carrier/NAD ratio; THD is bounded by multiplicity × NAD;
        // noise is bounded by NAD.
        let sinad_ok = car_lo > 0.0 && nad_hi * self.sinad_ratio_min <= car_lo;
        let thd_ok = self.order_multiplicity * nad_hi <= self.thd_ratio_max * car_lo;
        let noise_ok = nad_hi <= self.noise_max_half;
        if sinad_ok && thd_ok && noise_ok {
            return SeqDecision::AcceptEarly(visible);
        }
        // Reject: the SINAD/ENOB band confidently fails even under the
        // optimistic reading (a failed noise or THD limit implies a
        // large NAD, so this rule dominates in practice; devices
        // failing only a looser custom limit fall through to the full
        // record — zero drift).
        if nad_lo > 0.0 && nad_lo * self.sinad_ratio_min > car_hi {
            return SeqDecision::RejectEarly(visible);
        }
        SeqDecision::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BehavioralBackend, RtlBackend};
    use crate::harness::plan_ramp;
    use crate::screener::{Screener, Workload};
    use bist_adc::noise::NoiseConfig;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::transfer::{Adc, TransferFunction};
    use bist_adc::types::{Resolution, Volts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(bits: u32) -> BistConfig {
        BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(bits)
            .build()
            .unwrap()
    }

    fn ideal() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    /// Sequenced static sweep through the screener front door.
    fn seq_static<B: Backend, A: Adc + ?Sized>(
        backend: B,
        adc: &A,
        config: &BistConfig,
        policy: SequencerConfig,
        noise: &NoiseConfig,
        seed: u64,
    ) -> SeqOutcome<BistVerdict> {
        let mut screener = Screener::new(Workload::static_ramp(*config).with_noise(*noise))
            .backend(backend)
            .sequencer(policy);
        *screener
            .screen_one(adc, &mut StdRng::seed_from_u64(seed))
            .as_static()
            .expect("static workload")
    }

    /// Unsequenced full static sweep — the drift reference.
    fn full_static<A: Adc + ?Sized>(
        adc: &A,
        config: &BistConfig,
        noise: &NoiseConfig,
        seed: u64,
    ) -> BistVerdict {
        let mut screener = Screener::new(Workload::static_ramp(*config).with_noise(*noise));
        screener
            .screen_one(adc, &mut StdRng::seed_from_u64(seed))
            .as_static()
            .expect("static workload")
            .verdict
    }

    /// Sequenced dynamic sweep through the screener front door.
    fn seq_dyn<B: Backend, A: Adc + ?Sized>(
        backend: B,
        adc: &A,
        config: &DynamicConfig,
        policy: SequencerConfig,
        seed: u64,
    ) -> SeqOutcome<DynamicVerdict> {
        let mut screener = Screener::new(Workload::dynamic_sine(*config))
            .backend(backend)
            .sequencer(policy);
        *screener
            .screen_one(adc, &mut StdRng::seed_from_u64(seed))
            .as_dynamic()
            .expect("dynamic workload")
    }

    #[test]
    fn policy_validation() {
        assert!(SequencerConfig::default().validate().is_ok());
        for bad in [
            SequencerConfig {
                alpha: 0.0,
                ..Default::default()
            },
            SequencerConfig {
                beta: 1.0,
                ..Default::default()
            },
            SequencerConfig {
                min_samples: 0,
                ..Default::default()
            },
            SequencerConfig {
                check_interval: 0,
                ..Default::default()
            },
        ] {
            let err = bad.validate().unwrap_err();
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "invalid sequencer policy")]
    fn static_sequencer_rejects_bad_policy() {
        StaticSequencer::new(SequencerConfig {
            alpha: -1.0,
            ..Default::default()
        });
    }

    #[test]
    fn checkpoint_schedule() {
        let p = SequencerConfig {
            min_samples: 100,
            check_interval: 50,
            ..Default::default()
        };
        assert!(!p.checkpoint_due(99));
        assert!(p.checkpoint_due(100));
        assert!(!p.checkpoint_due(120));
        assert!(p.checkpoint_due(150));
    }

    #[test]
    fn ideal_static_device_accepts_early_and_no_earlier_than_min_samples() {
        let config = cfg(5);
        let policy = SequencerConfig::default();
        let out = seq_static(
            BehavioralBackend,
            &ideal(),
            &config,
            policy,
            &NoiseConfig::noiseless(),
            1,
        );
        assert!(out.accepted());
        assert!(out.stopped_early(), "{:?}", out.decision);
        let at = out.decision.at_sample().unwrap();
        assert!(at >= policy.min_samples);
        assert_eq!((at - policy.min_samples) % policy.check_interval, 0);
        // The ideal staircase is zero-variance: the statistical accept
        // fires long before the ramp completes.
        let (_, sampling) = plan_ramp(&ideal(), &config);
        assert!(out.samples_consumed() < sampling.samples as u64 / 2);
        assert!(out.samples_saved(sampling.samples as u64) > 0);
    }

    #[test]
    fn grossly_nonlinear_device_rejects_early() {
        let mut t: Vec<f64> = (1..=63).map(|k| k as f64 * 0.1).collect();
        t[5] += 0.1; // code 5 twice as wide — fails within the first checkpoint horizon
        let adc =
            TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t);
        let config = cfg(4);
        let out = seq_static(
            BehavioralBackend,
            &adc,
            &config,
            SequencerConfig::default(),
            &NoiseConfig::noiseless(),
            1,
        );
        assert!(!out.accepted());
        assert!(matches!(out.decision, SeqDecision::RejectEarly(_)));
        let (_, sampling) = plan_ramp(&adc, &config);
        assert!(out.samples_consumed() < sampling.samples as u64);
    }

    #[test]
    fn sequenced_static_decision_matches_full_sweep_on_ideal_and_faulty() {
        // Early stops must agree with what the full sweep would say
        // when the defect lies inside the observable prefix (a defect
        // parked beyond the horizon is the priced beta drift — see the
        // checkpoint rule comments).
        for (label, adc) in [
            ("ideal", ideal()),
            ("bad", {
                let mut t: Vec<f64> = (1..=63).map(|k| k as f64 * 0.1).collect();
                t[8] += 0.09;
                TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t)
            }),
        ] {
            let config = cfg(5);
            let full = full_static(&adc, &config, &NoiseConfig::noiseless(), 2);
            let out = seq_static(
                BehavioralBackend,
                &adc,
                &config,
                SequencerConfig::default(),
                &NoiseConfig::noiseless(),
                2,
            );
            assert_eq!(out.accepted(), full.accepted(), "{label}");
        }
    }

    #[test]
    fn rtl_and_behavioral_stop_at_the_same_sample_static() {
        use bist_adc::flash::FlashConfig;
        for seed in 0..8u64 {
            let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(seed));
            for (bits, deglitch) in [(4u32, false), (6, true)] {
                let config =
                    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
                        .counter_bits(bits)
                        .deglitch(deglitch)
                        .build()
                        .unwrap();
                let noise = NoiseConfig::noiseless().with_transition_noise(0.004);
                let policy = SequencerConfig::default();
                let b = seq_static(BehavioralBackend, &adc, &config, policy, &noise, 100 + seed);
                let r = seq_static(RtlBackend::new(), &adc, &config, policy, &noise, 100 + seed);
                assert_eq!(b.decision, r.decision, "seed {seed} bits {bits}");
                assert_eq!(b.verdict, r.verdict, "seed {seed} bits {bits}");
            }
        }
    }

    #[test]
    fn dynamic_ideal_accepts_early_and_matches_across_backends() {
        let config = DynamicConfig::paper_default();
        let policy = SequencerConfig {
            min_samples: 512,
            ..Default::default()
        };
        let adc = ideal();
        let b = seq_dyn(BehavioralBackend, &adc, &config, policy, 3);
        assert!(b.accepted());
        assert!(b.stopped_early());
        assert!(b.samples_consumed() < config.record_len() as u64 / 2);
        let r = seq_dyn(RtlBackend::new(), &adc, &config, policy, 3);
        assert_eq!(b.decision, r.decision);
        assert_eq!(b.samples_consumed(), r.samples_consumed());
    }

    #[test]
    fn dynamic_heavy_mismatch_rejects_early() {
        use bist_adc::flash::FlashConfig;
        let config = DynamicConfig::paper_default();
        let adc = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_width_sigma_lsb(0.6)
            .sample(&mut StdRng::seed_from_u64(4));
        let policy = SequencerConfig {
            min_samples: 512,
            ..Default::default()
        };
        let out = seq_dyn(BehavioralBackend, &adc, &config, policy, 5);
        assert!(!out.accepted());
        assert!(matches!(out.decision, SeqDecision::RejectEarly(_)));
    }

    #[test]
    fn completed_sweep_reports_continue_and_full_verdict() {
        // An absurdly late min_samples forces the full sweep.
        let config = cfg(5);
        let policy = SequencerConfig {
            min_samples: 1_000_000,
            ..Default::default()
        };
        let out = seq_static(
            BehavioralBackend,
            &ideal(),
            &config,
            policy,
            &NoiseConfig::noiseless(),
            1,
        );
        assert_eq!(out.decision, SeqDecision::Continue);
        assert!(!out.stopped_early());
        assert!(out.accepted());
        let full = full_static(&ideal(), &config, &NoiseConfig::noiseless(), 1);
        assert_eq!(out.verdict, full);
    }

    #[test]
    fn decision_display_and_helpers() {
        assert_eq!(SeqDecision::Continue.to_string(), "continue");
        assert!(SeqDecision::AcceptEarly(7).to_string().contains("7"));
        assert!(SeqDecision::RejectEarly(9).stops());
        assert_eq!(SeqDecision::AcceptEarly(7).at_sample(), Some(7));
        assert_eq!(SeqDecision::Continue.at_sample(), None);
    }
}
