//! Parametric yield under a linearity spec.
//!
//! §4 reports two yield figures that anchor the whole evaluation: under
//! the increased (stringent) ±0.5 LSB DNL spec only ~30 % of the 6-bit
//! flash devices are good, while under the actual ±1 LSB spec the fault
//! probability is only ≈ 1.4×10⁻⁴. Both follow from the Gaussian
//! code-width model: `P(good) = [Φ(z_hi) − Φ(z_lo)]^N`.

use crate::analytic::WidthDistribution;
use bist_adc::spec::LinearitySpec;
use std::fmt;

/// Yield model for a device with `codes` independent Gaussian code
/// widths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldModel {
    dist: WidthDistribution,
    codes: u64,
}

impl YieldModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `codes == 0`.
    pub fn new(dist: WidthDistribution, codes: u64) -> Self {
        assert!(codes > 0, "device must have at least one code");
        YieldModel { dist, codes }
    }

    /// The paper's device: 64 codes, σ = 0.21 LSB.
    pub fn paper_device() -> Self {
        YieldModel::new(WidthDistribution::paper_worst_case(), 64)
    }

    /// The width distribution.
    pub fn distribution(&self) -> &WidthDistribution {
        &self.dist
    }

    /// Number of codes.
    pub fn codes(&self) -> u64 {
        self.codes
    }

    /// `P(one code within spec)`.
    pub fn p_code_good(&self, spec: &LinearitySpec) -> f64 {
        self.dist.p_code_good(spec)
    }

    /// `P(device good)` = `p_code_good^N` (Eq. 9).
    pub fn p_device_good(&self, spec: &LinearitySpec) -> f64 {
        self.p_code_good(spec).powi(self.codes as i32)
    }

    /// `P(device faulty)` = `1 − P(device good)`, computed stably for
    /// high-yield specs.
    pub fn p_device_faulty(&self, spec: &LinearitySpec) -> f64 {
        let p = self.p_code_good(spec);
        // 1 - p^N = -expm1(N ln p)
        -(self.codes as f64 * p.ln()).exp_m1()
    }

    /// Sweeps yield over a range of symmetric DNL limits, returning
    /// `(limit, p_good)` rows.
    pub fn yield_curve(&self, limits_lsb: &[f64]) -> Vec<(f64, f64)> {
        limits_lsb
            .iter()
            .map(|&l| (l, self.p_device_good(&LinearitySpec::dnl_only(l))))
            .collect()
    }
}

impl fmt::Display for YieldModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "yield model: {} codes, width σ {} LSB",
            self.codes,
            self.dist.sigma()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stringent_yield_is_about_30_percent() {
        let y = YieldModel::paper_device().p_device_good(&LinearitySpec::paper_stringent());
        assert!((0.28..0.38).contains(&y), "yield {y}");
    }

    #[test]
    fn paper_actual_fault_rate_is_about_1e_minus_4() {
        let p = YieldModel::paper_device().p_device_faulty(&LinearitySpec::paper_actual());
        assert!((0.7e-4..2.5e-4).contains(&p), "p_faulty {p}");
    }

    #[test]
    fn good_and_faulty_sum_to_one() {
        let m = YieldModel::paper_device();
        for limit in [0.3, 0.5, 0.8, 1.0, 1.5] {
            let spec = LinearitySpec::dnl_only(limit);
            let s = m.p_device_good(&spec) + m.p_device_faulty(&spec);
            assert!((s - 1.0).abs() < 1e-12, "limit {limit}");
        }
    }

    #[test]
    fn yield_monotone_in_spec() {
        let m = YieldModel::paper_device();
        let curve = m.yield_curve(&[0.3, 0.5, 0.7, 1.0, 1.5]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "{curve:?}");
        }
    }

    #[test]
    fn more_codes_lower_yield() {
        let dist = WidthDistribution::paper_worst_case();
        let spec = LinearitySpec::paper_stringent();
        let small = YieldModel::new(dist, 16).p_device_good(&spec);
        let large = YieldModel::new(dist, 256).p_device_good(&spec);
        assert!(large < small);
    }

    #[test]
    fn tighter_process_higher_yield() {
        let spec = LinearitySpec::paper_stringent();
        let loose = YieldModel::new(WidthDistribution::new(1.0, 0.21), 64);
        let tight = YieldModel::new(WidthDistribution::new(1.0, 0.16), 64);
        assert!(tight.p_device_good(&spec) > loose.p_device_good(&spec));
        // At the paper's best-case σ = 0.16 the stringent yield rises
        // dramatically.
        assert!(tight.p_device_good(&spec) > 0.7);
    }

    #[test]
    fn stable_for_very_high_yield() {
        // A huge spec: p_faulty must not round to exactly zero. The
        // residual is dominated by the Gaussian tail below zero width
        // (the width window clamps at 0): 64·Φ(−1/0.21) ≈ 6×10⁻⁵.
        let m = YieldModel::paper_device();
        let p = m.p_device_faulty(&LinearitySpec::dnl_only(1.8));
        assert!(p > 1e-6 && p < 1e-4, "p {p}");
    }

    #[test]
    #[should_panic(expected = "at least one code")]
    fn zero_codes_panics() {
        YieldModel::new(WidthDistribution::paper_worst_case(), 0);
    }

    #[test]
    fn display_mentions_sigma() {
        assert!(YieldModel::paper_device().to_string().contains("0.21"));
    }
}
