//! Test harnesses: wire a stimulus through a converter into the BIST,
//! the reference measurement, or the conventional production test.
//!
//! Three flavours, mirroring §4 of the paper:
//!
//! * the proposed method — slow ramp, LSB monitor plus upper-bit
//!   functional check — run through
//!   [`crate::screener::Screener`] with a static workload.
//! * [`reference_measurement`] — the "very accurate measurement, taking
//!   approximately 1000 samples per code width … as a reference".
//! * [`conventional_test`] — the production histogram test "where 4096
//!   samples are taken for the test of all the codes".
//!
//! ## The streaming engine
//!
//! All three harnesses are built on a fused single-pass pipeline that
//! matches the hardware semantics: a lazy
//! [`CodeStream`] evaluates the stimulus,
//! injects noise and converts one sample at a time, and the
//! accumulators — [`LsbMonitorAcc`],
//! [`FunctionalAcc`], the transition
//! counter and (for the histogram harnesses) the
//! [`CodeHistogram`] — consume it
//! incrementally from one traversal. No capture is materialised on the
//! production path; [`bist_from_capture`] remains as the materialised
//! reference for tests, plots and external code records.
//!
//! The verdict stage is pluggable through [`crate::backend::Backend`]:
//! the identical fused acquisition can be judged by the behavioural
//! accumulators (the default) or by the gate-accurate
//! `bist_rtl::BistTop` datapath ([`crate::backend::RtlBackend`]) — the
//! seam the differential fleet experiment in `bist-mc` validates at
//! scale. The entry point is [`crate::screener::Screener`], which
//! drives this engine for static workloads.
//!
//! ## Scratch reuse
//!
//! Per-device state that must persist across devices lives in
//! [`Scratch`]: the per-code and per-check result buffers. The contract
//! is *clear, don't shrink* — each run clears the buffers but keeps
//! their capacity, so after the first device ("warm-up") the
//! device→verdict hot path under
//! [`crate::screener::Screener::screen_one`] performs zero heap
//! allocations (enforced by `tests/zero_alloc.rs`).

use crate::config::BistConfig;
use crate::functional::{FunctionalAcc, FunctionalCheck, FunctionalResult};
use crate::limits::slope_for_delta_s;
use crate::lsb_monitor::{CodeResult, LsbMonitorAcc, MonitorResult};
use bist_adc::histogram::{ramp_linearity, CodeHistogram, HistogramLinearity, HistogramTestError};
use bist_adc::noise::NoiseConfig;
use bist_adc::sampler::{Capture, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::spec::LinearitySpec;
use bist_adc::stream::CodeStream;
use bist_adc::transfer::Adc;
use bist_adc::types::{Code, Volts};
use rand::RngCore;
use std::error::Error;
use std::fmt;

/// Sample rate used by the simulated harnesses — static ramp and
/// dynamic sine alike (the absolute value is immaterial: the ramp cares
/// only about the slope/f_sample ratio Δs of Eq. 5, the sine only about
/// the cycles-per-record coherency ratio).
pub(crate) const SAMPLE_RATE: f64 = 1.0e6;

/// Result of one complete BIST run on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct BistOutcome {
    /// The LSB-monitor result (DNL/INL verdicts per code).
    pub monitor: MonitorResult,
    /// The upper-bit functional result.
    pub functional: FunctionalResult,
    /// The number of complete measurements a healthy sweep must produce
    /// (a cheap on-chip transition counter enforces this; without it a
    /// dead LSB would pass both checks vacuously).
    pub expected_codes: u64,
}

impl BistOutcome {
    /// The device-level decision: accepted only if the sweep produced
    /// the expected number of measurements, every code passed the
    /// DNL/INL windows, and the functional check saw no mismatch.
    pub fn accepted(&self) -> bool {
        self.complete() && self.monitor.all_pass() && self.functional.all_pass()
    }

    /// Whether the sweep produced *exactly* the expected number of code
    /// measurements. Missing transitions indicate stuck bits, dead
    /// comparators or a stuck output bus; surplus transitions indicate
    /// a toggling LSB splitting codes — under the earlier `>=` rule a
    /// glitchy sweep could still read "complete".
    pub fn complete(&self) -> bool {
        self.monitor.codes.len() as u64 == self.expected_codes
    }
}

impl fmt::Display for BistOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} | device {}",
            self.monitor,
            self.functional,
            if self.complete() {
                "complete".to_owned()
            } else {
                format!(
                    "INCOMPLETE ({}/{} codes)",
                    self.monitor.codes.len(),
                    self.expected_codes
                )
            },
            if self.accepted() {
                "ACCEPTED"
            } else {
                "REJECTED"
            }
        )
    }
}

/// Compact, heap-free verdict of one BIST sweep — what the on-chip
/// block actually latches. The full per-code detail stays in the
/// [`Scratch`] the sweep ran with (see [`Scratch::take_outcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistVerdict {
    /// Number of complete codes the LSB monitor judged.
    pub codes_judged: u64,
    /// DNL window failures.
    pub dnl_failures: u64,
    /// INL window failures.
    pub inl_failures: u64,
    /// Functional checks fired.
    pub functional_checks: u64,
    /// Functional mismatches.
    pub functional_mismatches: u64,
    /// The transition-counter expectation (see [`BistOutcome`]).
    pub expected_codes: u64,
    /// ADC samples consumed by the sweep.
    pub samples: u64,
}

impl BistVerdict {
    /// Whether the sweep produced *exactly* the expected number of
    /// measurements (same rule as [`BistOutcome::complete`]: surplus
    /// transitions fail too).
    pub fn complete(&self) -> bool {
        self.codes_judged == self.expected_codes
    }

    /// The device-level decision (same rule as [`BistOutcome::accepted`]).
    pub fn accepted(&self) -> bool {
        self.complete()
            && self.dnl_failures == 0
            && self.inl_failures == 0
            && self.functional_mismatches == 0
    }
}

/// Reusable per-device working state for the streaming engine.
///
/// Holds the result buffers the accumulators write into. Contract:
/// every run *clears* the buffers but never shrinks them, so capacity
/// warms up on the first device and subsequent devices allocate
/// nothing. Keep one `Scratch` per worker thread and pass it to
/// [`process_code_stream`] (a [`crate::screener::Screener`] carries
/// its own).
#[derive(Debug, Default)]
pub struct Scratch {
    pub(crate) monitor_codes: Vec<CodeResult>,
    pub(crate) checks: Vec<FunctionalCheck>,
}

impl Scratch {
    /// Creates an empty scratch (buffers warm up on first use).
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Per-code monitor results of the most recent sweep.
    pub fn monitor_codes(&self) -> &[CodeResult] {
        &self.monitor_codes
    }

    /// Functional checks of the most recent sweep.
    pub fn checks(&self) -> &[FunctionalCheck] {
        &self.checks
    }

    /// Assembles the full [`BistOutcome`] of the most recent sweep,
    /// moving the detail buffers out (the scratch then re-warms on the
    /// next device; use only on the detailed/diagnostic path).
    pub fn take_outcome(&mut self, verdict: BistVerdict) -> BistOutcome {
        BistOutcome {
            monitor: MonitorResult {
                codes: std::mem::take(&mut self.monitor_codes),
                dnl_failures: verdict.dnl_failures,
                inl_failures: verdict.inl_failures,
            },
            functional: FunctionalResult {
                checks: std::mem::take(&mut self.checks),
                mismatches: verdict.functional_mismatches,
            },
            expected_codes: verdict.expected_codes,
        }
    }
}

/// Builds the ramp and sampling plan realising the config's Δs on the
/// given converter: starts two LSB below the range, overshoots the top.
/// Public so benches and diagnostics can reproduce the exact sweep the
/// harness drives.
pub fn plan_ramp<A: Adc + ?Sized>(adc: &A, config: &BistConfig) -> (Ramp, SamplingConfig) {
    let (low, high) = adc.input_range();
    let lsb = adc.resolution().lsb_size(Volts(high.0 - low.0)).0;
    let slope = slope_for_delta_s(config.delta_s(), SAMPLE_RATE, lsb);
    // Start 2 LSB below the range; overshoot the top by 10 LSB so that
    // devices whose accumulated width drift (gain error) pushes the last
    // transitions past nominal full scale still have every code closed.
    let start = Volts(low.0 - 2.0 * lsb);
    let span = (high.0 - low.0) + 12.0 * lsb;
    let samples = (span / slope * SAMPLE_RATE).ceil() as usize + 2;
    (
        Ramp::new(start, slope),
        SamplingConfig::new(SAMPLE_RATE, samples),
    )
}

/// Runs the BIST processing over any code stream in one pass: the LSB
/// monitor, the upper-bit functional check and the transition counter
/// all accumulate incrementally from the single traversal.
///
/// This is the engine under [`crate::screener::Screener::screen_one`]
/// (static workloads) and [`bist_from_capture`]; use it directly to
/// screen codes from an external source without materialising them.
pub fn process_code_stream<I: IntoIterator<Item = Code>>(
    config: &BistConfig,
    codes: I,
    scratch: &mut Scratch,
) -> BistVerdict {
    let bit = config.monitored_bit();
    let mut monitor = LsbMonitorAcc::new(config, &mut scratch.monitor_codes);
    let mut functional = FunctionalAcc::new(bit, config.deglitch(), &mut scratch.checks);
    let mut samples = 0u64;
    for code in codes {
        monitor.push((code.0 >> bit) & 1 == 1);
        functional.push(code);
        samples += 1;
    }
    let m = monitor.finish();
    let f = functional.finish();
    BistVerdict {
        codes_judged: m.codes_judged,
        dnl_failures: m.dnl_failures,
        inl_failures: m.inl_failures,
        functional_checks: f.checks,
        functional_mismatches: f.mismatches,
        expected_codes: config.expected_measurements(),
        samples,
    }
}

/// Runs the BIST processing on an already-captured code record (e.g.
/// from a shared acquisition or an external source) — the materialised
/// counterpart of the streaming engine, kept for tests and diagnostics.
pub fn bist_from_capture(config: &BistConfig, capture: &Capture) -> BistOutcome {
    let mut scratch = Scratch::new();
    let verdict = process_code_stream(config, capture.codes().iter().copied(), &mut scratch);
    scratch.take_outcome(verdict)
}

/// Error from a histogram-based harness.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HarnessError {
    /// The underlying histogram test failed.
    Histogram(HistogramTestError),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Histogram(e) => write!(f, "histogram test failed: {e}"),
        }
    }
}

impl Error for HarnessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HarnessError::Histogram(e) => Some(e),
        }
    }
}

impl From<HistogramTestError> for HarnessError {
    fn from(e: HistogramTestError) -> Self {
        HarnessError::Histogram(e)
    }
}

/// A histogram-test verdict: the linearity estimate plus the spec
/// decision.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramVerdict {
    /// The DNL/INL estimate.
    pub linearity: HistogramLinearity,
    /// Whether the estimate meets the spec.
    pub accepted: bool,
}

/// Runs a ramp histogram test with `samples_per_code` average hits per
/// code and judges it against `spec` — §4's reference measurement uses
/// ~1000 samples per code.
///
/// The histogram accumulates directly from the code stream: the ~64 k
/// sample capture of the paper's reference setting is never
/// materialised.
///
/// # Errors
///
/// Returns [`HarnessError`] if the capture yields an unusable histogram.
///
/// # Panics
///
/// Panics if `samples_per_code` is zero.
pub fn reference_measurement<A: Adc + ?Sized, R: RngCore + ?Sized>(
    adc: &A,
    spec: &LinearitySpec,
    samples_per_code: u32,
    noise: &NoiseConfig,
    rng: &mut R,
) -> Result<HistogramVerdict, HarnessError> {
    assert!(samples_per_code > 0, "samples per code must be non-zero");
    let (low, high) = adc.input_range();
    let lsb = adc.resolution().lsb_size(Volts(high.0 - low.0)).0;
    let slope = lsb / samples_per_code as f64 * SAMPLE_RATE;
    let start = Volts(low.0 - 2.0 * lsb);
    let span = (high.0 - low.0) + 12.0 * lsb;
    let samples = (span / slope * SAMPLE_RATE).ceil() as usize + 2;
    let ramp = Ramp::new(start, slope);
    let stream = CodeStream::noisy(
        adc,
        &ramp,
        SamplingConfig::new(SAMPLE_RATE, samples),
        noise,
        rng,
    );
    let hist = CodeHistogram::from_codes(adc.resolution(), stream);
    let linearity = ramp_linearity(&hist)?;
    let accepted = judge_linearity(&linearity, spec);
    Ok(HistogramVerdict {
        linearity,
        accepted,
    })
}

/// The conventional production test of §4: a ramp histogram with a fixed
/// *total* sample budget (4096 for the paper's 6-bit device, i.e. 64 per
/// code).
///
/// # Errors
///
/// Returns [`HarnessError`] if the capture yields an unusable histogram.
///
/// # Panics
///
/// Panics if `total_samples` is smaller than the number of codes.
pub fn conventional_test<A: Adc + ?Sized, R: RngCore + ?Sized>(
    adc: &A,
    spec: &LinearitySpec,
    total_samples: u32,
    noise: &NoiseConfig,
    rng: &mut R,
) -> Result<HistogramVerdict, HarnessError> {
    let codes = adc.resolution().code_count();
    assert!(
        total_samples >= codes,
        "need at least one sample per code ({codes})"
    );
    reference_measurement(adc, spec, total_samples / codes, noise, rng)
}

/// Judges a histogram linearity estimate against a spec (DNL always,
/// INL when the spec has an INL limit).
pub fn judge_linearity(linearity: &HistogramLinearity, spec: &LinearitySpec) -> bool {
    let dnl_ok = linearity.peak_dnl().0 <= spec.dnl_limit().0;
    let inl_ok = match spec.inl_limit() {
        Some(limit) => linearity.peak_inl().0 <= limit.0,
        None => true,
    };
    dnl_ok && inl_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screener::{Screener, Workload};
    use bist_adc::faults::{FaultyAdc, OutputFault};
    use bist_adc::flash::FlashConfig;
    use bist_adc::sampler::acquire_noisy;
    use bist_adc::transfer::TransferFunction;
    use bist_adc::types::Resolution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ideal() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    fn cfg(bits: u32) -> BistConfig {
        BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(bits)
            .build()
            .unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// One-shot static sweep through the screener front door, returning
    /// the full per-code outcome.
    fn run_static_bist<A: Adc + ?Sized>(
        adc: &A,
        config: &BistConfig,
        noise: &NoiseConfig,
        slope_error: f64,
        rng: &mut StdRng,
    ) -> BistOutcome {
        let mut screener = Screener::new(
            Workload::static_ramp(*config)
                .with_noise(*noise)
                .with_slope_error(slope_error),
        );
        let verdict = screener.screen_one(adc, rng);
        screener
            .take_static_outcome(&verdict)
            .expect("static workload")
    }

    #[test]
    fn ideal_device_accepted_all_counters() {
        for bits in 4..=7 {
            let outcome = run_static_bist(
                &ideal(),
                &cfg(bits),
                &NoiseConfig::noiseless(),
                0.0,
                &mut rng(1),
            );
            assert!(outcome.accepted(), "counter {bits}: {outcome}");
            assert_eq!(outcome.monitor.codes.len(), 62);
        }
    }

    #[test]
    fn measured_counts_near_ideal() {
        let config = cfg(4);
        let outcome = run_static_bist(
            &ideal(),
            &config,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng(1),
        );
        let ideal_count = config.limits().i_ideal();
        for c in &outcome.monitor.codes {
            assert!(
                c.count.abs_diff(ideal_count) <= 1,
                "count {} vs ideal {ideal_count}",
                c.count
            );
        }
    }

    #[test]
    fn streaming_verdict_matches_materialized_outcome() {
        // The streaming engine and the materialised capture path must be
        // bit-identical from the same RNG state — including under noise,
        // slope error and the deglitcher.
        let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(5)
            .deglitch(true)
            .build()
            .unwrap();
        let adc = FlashConfig::paper_device().sample(&mut rng(21));
        let noise = NoiseConfig::noiseless().with_transition_noise(0.004);
        for (round, slope_error) in [(0u64, 0.0), (1, -0.022), (2, 0.015)] {
            let mut screener = Screener::new(
                Workload::static_ramp(config)
                    .with_noise(noise)
                    .with_slope_error(slope_error),
            );
            let verdict = screener.screen_one(&adc, &mut rng(100 + round));
            let (ramp, sampling) = plan_ramp(&adc, &config);
            let ramp = ramp.with_slope_error(slope_error);
            let capture = acquire_noisy(&adc, &ramp, sampling, &noise, &mut rng(100 + round));
            let materialized = bist_from_capture(&config, &capture);
            assert_eq!(
                screener.scratch().monitor_codes(),
                &materialized.monitor.codes[..]
            );
            assert_eq!(
                screener.scratch().checks(),
                &materialized.functional.checks[..]
            );
            assert_eq!(verdict.accepted(), materialized.accepted());
            assert_eq!(verdict.samples(), capture.codes().len() as u64);
        }
    }

    #[test]
    fn scratch_take_outcome_preserves_detail() {
        let config = cfg(6);
        let mut screener = Screener::new(Workload::static_ramp(config));
        let verdict = screener.screen_one(&ideal(), &mut rng(1));
        let codes_judged = verdict
            .as_static()
            .expect("static workload")
            .verdict
            .codes_judged;
        let outcome = screener
            .take_static_outcome(&verdict)
            .expect("static workload");
        assert_eq!(outcome.monitor.codes.len() as u64, codes_judged);
        assert!(outcome.accepted());
        assert!(screener.scratch().monitor_codes().is_empty());
    }

    #[test]
    fn grossly_nonlinear_device_rejected() {
        // Make code 20 two LSB wide (DNL +1, way past ±0.5).
        let mut t: Vec<f64> = (1..=63).map(|k| k as f64 * 0.1).collect();
        t[20] += 0.1;
        let adc =
            TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t);
        let outcome = run_static_bist(&adc, &cfg(4), &NoiseConfig::noiseless(), 0.0, &mut rng(1));
        assert!(!outcome.accepted());
        assert!(outcome.monitor.dnl_failures > 0);
    }

    #[test]
    fn stuck_output_bit_caught_by_functional_test() {
        let adc = FaultyAdc::new(
            ideal(),
            OutputFault::StuckBit {
                bit: 3,
                value: false,
            },
        );
        let outcome = run_static_bist(&adc, &cfg(4), &NoiseConfig::noiseless(), 0.0, &mut rng(1));
        assert!(!outcome.functional.all_pass());
        assert!(!outcome.accepted());
    }

    #[test]
    fn slope_error_shifts_counts() {
        let config = cfg(6);
        let nominal = run_static_bist(
            &ideal(),
            &config,
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng(1),
        );
        // A 5 % steeper ramp yields ~5 % fewer counts per code.
        let steep = run_static_bist(
            &ideal(),
            &config,
            &NoiseConfig::noiseless(),
            0.05,
            &mut rng(1),
        );
        let mean = |o: &BistOutcome| {
            o.monitor.codes.iter().map(|c| c.count).sum::<u64>() as f64
                / o.monitor.codes.len() as f64
        };
        let ratio = mean(&steep) / mean(&nominal);
        assert!((ratio - 1.0 / 1.05).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn reference_measurement_classifies_ideal_good() {
        let v = reference_measurement(
            &ideal(),
            &LinearitySpec::paper_stringent(),
            1000,
            &NoiseConfig::noiseless(),
            &mut rng(2),
        )
        .unwrap();
        assert!(v.accepted);
        assert!(v.linearity.peak_dnl().0 < 0.01);
        assert!((v.linearity.samples_per_code - 1000.0).abs() < 40.0);
    }

    #[test]
    fn conventional_test_uses_budget() {
        let v = conventional_test(
            &ideal(),
            &LinearitySpec::paper_stringent(),
            4096,
            &NoiseConfig::noiseless(),
            &mut rng(3),
        )
        .unwrap();
        assert!(v.accepted);
        assert!((v.linearity.samples_per_code - 64.0).abs() < 5.0);
    }

    #[test]
    fn bist_agrees_with_reference_on_flash_batch() {
        // On real mismatched devices, the 7-bit BIST and the accurate
        // reference must agree on the vast majority of devices.
        let config = cfg(7);
        let spec = LinearitySpec::paper_stringent();
        let mut r = rng(11);
        let mut agree = 0;
        let total = 40;
        for _ in 0..total {
            let adc = FlashConfig::paper_device().sample(&mut r);
            let bist = run_static_bist(&adc, &config, &NoiseConfig::noiseless(), 0.0, &mut r);
            let reference =
                reference_measurement(&adc, &spec, 1000, &NoiseConfig::noiseless(), &mut r)
                    .unwrap();
            if bist.accepted() == reference.accepted {
                agree += 1;
            }
        }
        assert!(agree >= total - 3, "only {agree}/{total} agree");
    }

    #[test]
    #[should_panic(expected = "at least one sample per code")]
    fn conventional_too_few_samples_panics() {
        let _ = conventional_test(
            &ideal(),
            &LinearitySpec::paper_stringent(),
            10,
            &NoiseConfig::noiseless(),
            &mut rng(1),
        );
    }

    #[test]
    fn outcome_display() {
        let outcome = run_static_bist(
            &ideal(),
            &cfg(4),
            &NoiseConfig::noiseless(),
            0.0,
            &mut rng(1),
        );
        assert!(outcome.to_string().contains("ACCEPTED"));
    }
}
