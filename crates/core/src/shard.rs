//! Resident worker shard: the reusable compute unit behind the
//! screening service (`bist-serve`).
//!
//! A [`ResidentShard`] wraps the same per-worker engines
//! ([`StaticBatch`] / [`DynBatch`]) that [`crate::pool`] hands its
//! scoped workers, but keeps them alive between bursts so a
//! long-running service screens continuously without re-allocating:
//! after the first burst warms the engines (lane scratch, report
//! buffers, sine table), every later submit→verdict round trip is
//! allocation-free — proven by the counting-allocator test in
//! `crates/core/tests/zero_alloc.rs`.
//!
//! The shard also carries the submission-id seam: callers tag each
//! [`ShardJob`] with an arbitrary `u64` id, the shard maps engine
//! device indices back to those ids when draining reports, and because
//! every engine verdict is bit-identical to the scalar screener for
//! any lane width and refill order (the batch-equivalence property),
//! any arrival order, burst grouping, or worker count yields the same
//! per-id verdicts as one [`crate::screener::Screener::run`] pass.

use crate::backend::Backend;
use crate::batch::{BatchDevice, DynBatch, StaticBatch};
use crate::screener::{ScreenVerdict, Workload};
use bist_adc::Adc;
use rand::RngCore;

/// Which engine a [`ShardJob`] is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// The static LSB-monitor linearity test.
    Static,
    /// The dynamic (coherent sine) spectral test.
    Dynamic,
}

/// One tagged device submission for a [`ResidentShard`].
#[derive(Debug)]
pub struct ShardJob<A, R> {
    /// Caller-chosen submission id, echoed on the matching
    /// [`ShardVerdict`].
    pub id: u64,
    /// Which workload screens this device.
    pub kind: JobKind,
    /// The device under test.
    pub adc: A,
    /// The device's noise/dither stream.
    pub rng: R,
}

/// One streamed verdict from a [`ResidentShard`], tagged with the
/// submission id it answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardVerdict {
    /// The id of the [`ShardJob`] this verdict answers.
    pub id: u64,
    /// The device's decision and verdict — bit-identical to what
    /// [`crate::screener::Screener::run`] reports for the same device.
    pub verdict: ScreenVerdict,
}

/// The shard's workload plan: which tests it is resident for and the
/// engine knobs shared by every burst.
#[derive(Debug, Clone, Copy)]
pub struct ShardPlan {
    /// Static workload, when the shard screens [`JobKind::Static`]
    /// jobs. Must be a [`Workload::Static`] variant.
    pub static_workload: Option<Workload>,
    /// Dynamic workload, when the shard screens [`JobKind::Dynamic`]
    /// jobs. Must be a [`Workload::Dynamic`] variant.
    pub dynamic_workload: Option<Workload>,
    /// Early-stop sequencing policy applied to both engines.
    pub sequencer: Option<crate::sequencer::SequencerConfig>,
    /// SoA lane width for both engines.
    pub lane_width: usize,
}

impl ShardPlan {
    /// A plan resident for one workload (static or dynamic), default
    /// lane width, no sequencer.
    pub fn for_workload(workload: Workload) -> Self {
        let mut plan = ShardPlan {
            static_workload: None,
            dynamic_workload: None,
            sequencer: None,
            lane_width: crate::batch::DEFAULT_LANE_WIDTH,
        };
        match workload {
            Workload::Static { .. } => plan.static_workload = Some(workload),
            Workload::Dynamic { .. } => plan.dynamic_workload = Some(workload),
        }
        plan
    }
}

/// A resident worker shard: long-lived batch engines plus the
/// submission-id table, reused burst after burst.
#[derive(Debug)]
pub struct ResidentShard<A, R, B> {
    static_batch: Option<StaticBatch<A, R>>,
    dyn_batch: Option<DynBatch<A, R>>,
    backend: B,
    /// Engine device index → submission id, rebuilt per burst inside
    /// its retained capacity.
    ids: Vec<u64>,
}

impl<A: Adc, R: RngCore, B: Backend> ResidentShard<A, R, B> {
    /// Builds a shard resident for the workloads named by `plan`,
    /// judging with `backend`.
    ///
    /// # Panics
    ///
    /// Panics when `plan.static_workload` is not a
    /// [`Workload::Static`] variant (or the dynamic field not a
    /// [`Workload::Dynamic`]), or when neither workload is set.
    pub fn new(plan: &ShardPlan, backend: B) -> Self {
        assert!(
            plan.static_workload.is_some() || plan.dynamic_workload.is_some(),
            "a resident shard needs at least one workload"
        );
        let static_batch = plan.static_workload.map(|w| match w {
            Workload::Static {
                config,
                noise,
                slope_error,
            } => {
                let mut batch = StaticBatch::new(config)
                    .with_noise(noise)
                    .with_slope_error(slope_error)
                    .with_lane_width(plan.lane_width);
                if let Some(policy) = plan.sequencer {
                    batch = batch.with_sequencer(policy);
                }
                batch
            }
            Workload::Dynamic { .. } => panic!("static_workload must be Workload::Static"),
        });
        let dyn_batch = plan.dynamic_workload.map(|w| match w {
            Workload::Dynamic { config, noise } => {
                let mut batch = DynBatch::new(config)
                    .with_noise(noise)
                    .with_lane_width(plan.lane_width);
                if let Some(policy) = plan.sequencer {
                    batch = batch.with_sequencer(policy);
                }
                batch
            }
            Workload::Static { .. } => panic!("dynamic_workload must be Workload::Dynamic"),
        });
        ResidentShard {
            static_batch,
            dyn_batch,
            backend,
            ids: Vec::new(),
        }
    }

    /// True when the shard is resident for `kind` jobs.
    pub fn accepts(&self, kind: JobKind) -> bool {
        match kind {
            JobKind::Static => self.static_batch.is_some(),
            JobKind::Dynamic => self.dyn_batch.is_some(),
        }
    }

    // bist-lint: hot-path — service steady state: every burst is screened through here
    /// Screens one burst of jobs, streaming one [`ShardVerdict`] per
    /// job into `sink` (static verdicts first, then dynamic, each
    /// group in submission order). After the first burst the engines
    /// and id table are warm and this path allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics when a job's [`JobKind`] has no resident engine — the
    /// service validates kinds at the ingest seam, so reaching this is
    /// a routing bug, not load.
    pub fn process<I, F>(&mut self, jobs: I, mut sink: F)
    where
        I: IntoIterator<Item = ShardJob<A, R>>,
        F: FnMut(ShardVerdict),
    {
        self.ids.clear();
        for job in jobs {
            let index = self.ids.len();
            self.ids.push(job.id);
            match job.kind {
                JobKind::Static => self
                    .static_batch
                    .as_mut()
                    .expect("shard is not resident for static jobs")
                    .push(BatchDevice::new(index, job.adc, job.rng)),
                JobKind::Dynamic => self
                    .dyn_batch
                    .as_mut()
                    .expect("shard is not resident for dynamic jobs")
                    .push(BatchDevice::new(index, job.adc, job.rng)),
            }
        }
        if let Some(batch) = &mut self.static_batch {
            if batch.queued() > 0 {
                self.backend.process_batch(batch);
                for report in batch.finish_reports() {
                    sink(ShardVerdict {
                        id: self.ids[report.device],
                        verdict: ScreenVerdict::Static(report.outcome),
                    });
                }
                batch.clear_reports();
            }
        }
        if let Some(batch) = &mut self.dyn_batch {
            if batch.queued() > 0 {
                self.backend.process_dyn_batch(batch);
                for report in batch.finish_reports() {
                    sink(ShardVerdict {
                        id: self.ids[report.device],
                        verdict: ScreenVerdict::Dynamic(report.outcome),
                    });
                }
                batch.clear_reports();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BehavioralBackend;
    use crate::config::BistConfig;
    use crate::dynamic::DynamicConfig;
    use crate::screener::Screener;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::transfer::TransferFunction;
    use bist_adc::types::{Resolution, Volts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn static_workload() -> Workload {
        let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(5)
            .build()
            .unwrap();
        Workload::static_ramp(config)
    }

    fn device(i: u64) -> (TransferFunction, StdRng) {
        let adc = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        (adc, StdRng::seed_from_u64(i))
    }

    #[test]
    fn verdicts_match_screener_across_bursts_and_ids() {
        let mut plan = ShardPlan::for_workload(static_workload());
        plan.dynamic_workload = Some(Workload::dynamic_sine(DynamicConfig::paper_default()));
        let mut shard = ResidentShard::new(&plan, BehavioralBackend);
        // Screen 6 static devices in two bursts with shuffled ids.
        let ids = [40u64, 11, 32, 23, 14, 5];
        let mut streamed = Vec::new();
        for burst in ids.chunks(3) {
            let jobs = burst.iter().map(|&id| {
                let (adc, rng) = device(id);
                ShardJob {
                    id,
                    kind: JobKind::Static,
                    adc,
                    rng,
                }
            });
            shard.process(jobs, |v| streamed.push(v));
        }
        assert_eq!(streamed.len(), ids.len());
        let mut screener = Screener::new(static_workload());
        for v in &streamed {
            let (adc, mut rng) = device(v.id);
            let reference = screener.screen_one(&adc, &mut rng);
            assert_eq!(v.verdict, reference, "id {}", v.id);
        }
    }

    #[test]
    fn mixed_burst_streams_both_workloads() {
        let mut plan = ShardPlan::for_workload(static_workload());
        plan.dynamic_workload = Some(Workload::dynamic_sine(DynamicConfig::paper_default()));
        let mut shard = ResidentShard::new(&plan, BehavioralBackend);
        let jobs = (0..4u64).map(|id| {
            let (adc, rng) = device(id);
            ShardJob {
                id,
                kind: if id % 2 == 0 {
                    JobKind::Static
                } else {
                    JobKind::Dynamic
                },
                adc,
                rng,
            }
        });
        let mut got = Vec::new();
        shard.process(jobs, |v| got.push(v));
        assert_eq!(got.len(), 4);
        got.sort_by_key(|v| v.id);
        assert!(got[0].verdict.as_static().is_some());
        assert!(got[1].verdict.as_dynamic().is_some());
    }

    #[test]
    #[should_panic(expected = "not resident for dynamic")]
    fn unrouted_kind_panics() {
        let plan = ShardPlan::for_workload(static_workload());
        let mut shard = ResidentShard::new(&plan, BehavioralBackend);
        let (adc, rng) = device(0);
        shard.process(
            [ShardJob {
                id: 0,
                kind: JobKind::Dynamic,
                adc,
                rng,
            }],
            |_| {},
        );
    }
}
