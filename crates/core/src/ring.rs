//! Bounded MPMC ring — the queue primitive behind the resident
//! screening service (`bist-serve`).
//!
//! The ring is the backpressure seam of the service: submissions and
//! verdicts both travel through fixed-capacity rings, so a flooded
//! service answers [`Enqueue::Busy`] (handing the item back to the
//! caller) instead of growing without bound, and a device that was
//! accepted is never dropped — [`Ring::pop`] keeps draining queued
//! items even after [`Ring::close`], returning `None` only once the
//! ring is both closed and empty.
//!
//! The implementation is a mutex-guarded circular buffer with two
//! condvars (`not_empty`, `not_full`). That is deliberate: the ring
//! moves whole submissions/verdicts (hundreds of nanoseconds of copy at
//! most) while each device costs microseconds-to-milliseconds of DSP,
//! so a lock-free layout would buy nothing measurable and would cost an
//! `unsafe` surface the engine otherwise does not have. The only atomic
//! is a depth mirror so telemetry can read queue occupancy without
//! taking the lock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Outcome of a non-blocking enqueue attempt — the service's
/// backpressure contract.
#[derive(Debug)]
pub enum Enqueue<T> {
    /// The item was queued and will be processed.
    Accepted,
    /// The ring is at capacity; the item is handed back so the caller
    /// can retry, shed load, or park it — it is never silently dropped.
    Busy(T),
    /// The ring was closed; the item is handed back.
    Closed(T),
}

impl<T> Enqueue<T> {
    /// True when the item was queued.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Enqueue::Accepted)
    }
}

struct RingState<T> {
    slots: Box<[Option<T>]>,
    head: usize,
    len: usize,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with blocking and
/// non-blocking endpoints on both sides.
pub struct Ring<T> {
    state: Mutex<RingState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Mirror of `state.len` for lock-free telemetry reads.
    depth: AtomicUsize,
    capacity: usize,
}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` items (`capacity >= 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Ring {
            state: Mutex::new(RingState {
                slots: slots.into_boxed_slice(),
                head: 0,
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth: AtomicUsize::new(0),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth. Monitoring only: the value may be stale by
    /// the time the caller acts on it.
    pub fn len(&self) -> usize {
        // ORDERING: Relaxed — the depth mirror feeds telemetry
        // snapshots only; it synchronizes nothing and a momentarily
        // stale read is harmless.
        self.depth.load(Ordering::Relaxed)
    }

    /// True when no items are queued (same staleness caveat as `len`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // bist-lint: hot-path — service ingest: every submission crosses this seam
    /// Attempts to queue `item` without blocking.
    pub fn try_push(&self, item: T) -> Enqueue<T> {
        let mut state = self.state.lock().expect("ring lock");
        if state.closed {
            return Enqueue::Closed(item);
        }
        if state.len == self.capacity {
            return Enqueue::Busy(item);
        }
        let tail = (state.head + state.len) % self.capacity;
        state.slots[tail] = Some(item);
        state.len += 1;
        // ORDERING: Relaxed — depth mirror for telemetry only; real
        // producer/consumer synchronization is the mutex + condvars.
        self.depth.store(state.len, Ordering::Relaxed);
        drop(state);
        self.not_empty.notify_one();
        Enqueue::Accepted
    }

    // bist-lint: hot-path — verdict delivery: workers block here instead of dropping
    /// Queues `item`, blocking while the ring is full. Returns the item
    /// back as `Err` if the ring is closed before space frees up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("ring lock");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.len < self.capacity {
                let tail = (state.head + state.len) % self.capacity;
                state.slots[tail] = Some(item);
                state.len += 1;
                // ORDERING: Relaxed — depth mirror for telemetry only;
                // the mutex orders the queue contents themselves.
                self.depth.store(state.len, Ordering::Relaxed);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("ring lock");
        }
    }

    // bist-lint: hot-path — worker claim loop: every queued item leaves through here
    /// Dequeues the oldest item, blocking while the ring is empty.
    /// Returns `None` only once the ring is closed *and* drained, so
    /// accepted items are never lost to shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("ring lock");
        loop {
            if state.len > 0 {
                let item = self.take_front(&mut state);
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("ring lock");
        }
    }

    // bist-lint: hot-path — burst top-up after a blocking claim
    /// Dequeues the oldest item without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("ring lock");
        if state.len == 0 {
            return None;
        }
        let item = self.take_front(&mut state);
        drop(state);
        self.not_full.notify_one();
        Some(item)
    }

    fn take_front(&self, state: &mut RingState<T>) -> T {
        let item = state.slots[state.head].take().expect("occupied slot");
        state.head = (state.head + 1) % self.capacity;
        state.len -= 1;
        // ORDERING: Relaxed — depth mirror for telemetry only; the
        // mutex orders the queue contents themselves.
        self.depth.store(state.len, Ordering::Relaxed);
        item
    }

    /// Closes the ring: future pushes fail, blocked producers and
    /// consumers wake, and `pop` drains the remaining items before
    /// reporting `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("ring lock");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once `close` has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("ring lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let ring = Ring::with_capacity(2);
        assert!(ring.try_push(1).is_accepted());
        assert!(ring.try_push(2).is_accepted());
        match ring.try_push(3) {
            Enqueue::Busy(v) => assert_eq!(v, 3),
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.try_pop(), Some(1));
        assert!(ring.try_push(3).is_accepted());
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), Some(3));
        assert_eq!(ring.try_pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let ring = Ring::with_capacity(4);
        assert!(ring.try_push("a").is_accepted());
        assert!(ring.try_push("b").is_accepted());
        ring.close();
        match ring.try_push("c") {
            Enqueue::Closed(v) => assert_eq!(v, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(ring.pop(), Some("a"));
        assert_eq!(ring.pop(), Some("b"));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn blocking_push_returns_item_on_close() {
        let ring = Arc::new(Ring::with_capacity(1));
        ring.push(7u32).expect("space");
        let r2 = Arc::clone(&ring);
        let blocked = std::thread::spawn(move || r2.push(8u32));
        // Give the producer time to block on the full ring, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        ring.close();
        assert_eq!(blocked.join().expect("join"), Err(8));
        assert_eq!(ring.pop(), Some(7));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn mpmc_hands_out_every_item_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u64 = 500;
        let ring = Arc::new(Ring::with_capacity(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    ring.push(p as u64 * PER_PRODUCER + i).expect("open ring");
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let ring = Arc::clone(&ring);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = ring.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        ring.close();
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().expect("consumer"));
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..PRODUCERS as u64 * PER_PRODUCER).collect();
        assert_eq!(all, expect);
    }
}
