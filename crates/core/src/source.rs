//! The device-generation seam: one [`DeviceSource`] trait in front of
//! every converter architecture the fleet can screen.
//!
//! The paper's method is architecture-agnostic — it watches output bits,
//! not circuit internals — so fleet entry points should not care *how* a
//! device was mismatched. This module is the one seam they all sample
//! through:
//!
//! * [`DeviceSource`] — object-safe: `sample_transfer(rng)` draws one
//!   device as a [`TransferFunction`], plus metadata (architecture tag,
//!   resolution, expected DNL signature).
//! * Implementors: [`FlashConfig`] (resistor ladder + comparator
//!   offsets), [`IidWidthSource`] (the §3 iid-Gaussian theory model),
//!   [`SarConfig`] (binary-weighted capacitor mismatch) and
//!   [`PipelineConfig`] (inter-stage gain error).
//! * [`SourceSpec`] — the `Copy` enum-dispatch form, for the many fleet
//!   descriptors (`Batch`, experiments, sweep cells) that are passed by
//!   value.
//! * [`Zoo`] — a mixed-architecture fleet with a stable per-device
//!   `(seed, index) → (architecture, rng)` assignment, so zoo reports
//!   are bit-identical for any workers × lanes × chunking, exactly like
//!   single-architecture batches.
//!
//! It also hosts the canonical seeded-RNG derivations ([`stream_rng`],
//! [`device_rng`], [`splitmix_finalize`]) that every reproducible stream
//! in the workspace builds on — `bist_mc::batch` re-exports them, so
//! existing streams are bit-identical to their pre-seam values.

use crate::analytic::WidthDistribution;
use bist_adc::flash::FlashConfig;
use bist_adc::pipeline::PipelineConfig;
use bist_adc::sar::SarConfig;
use bist_adc::transfer::{Adc, TransferFunction};
use bist_adc::types::{Resolution, Volts};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;

/// The converter architectures the zoo can draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Architecture {
    /// Full-parallel flash: resistor ladder + comparator bank.
    Flash,
    /// The §3 theory model: iid Gaussian code widths (no circuit).
    IidWidths,
    /// Successive approximation over a binary-weighted capacitor DAC.
    Sar,
    /// Two-stage pipeline with an inter-stage residue amplifier.
    Pipeline,
}

impl Architecture {
    /// Number of architectures (the length of [`Architecture::ALL`]).
    pub const COUNT: usize = 4;

    /// Every architecture, in [`Architecture::index`] order.
    pub const ALL: [Architecture; Architecture::COUNT] = [
        Architecture::Flash,
        Architecture::IidWidths,
        Architecture::Sar,
        Architecture::Pipeline,
    ];

    /// A dense index in `0..COUNT`, stable across releases — used for
    /// per-architecture accumulator arrays (e.g. `bist_core::priors`).
    pub fn index(self) -> usize {
        match self {
            Architecture::Flash => 0,
            Architecture::IidWidths => 1,
            Architecture::Sar => 2,
            Architecture::Pipeline => 3,
        }
    }

    /// A short stable label for reports and perf-record metric names.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Flash => "flash",
            Architecture::IidWidths => "iid",
            Architecture::Sar => "sar",
            Architecture::Pipeline => "pipeline",
        }
    }

    /// The DNL signature this architecture's dominant mismatch produces.
    pub fn dnl_signature(self) -> DnlSignature {
        match self {
            Architecture::Flash => DnlSignature::LadderCorrelated,
            Architecture::IidWidths => DnlSignature::IidPerCode,
            Architecture::Sar => DnlSignature::MajorCarry,
            Architecture::Pipeline => DnlSignature::CoarseBoundary,
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where an architecture concentrates its differential nonlinearity —
/// the structure the BIST's per-code width counter is exposed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnlSignature {
    /// Independent per-code width errors (the §3 theory model).
    IidPerCode,
    /// Errors correlated along the ladder: a resistor deviation shifts
    /// every tap above it (the Eq. 10 correlation).
    LadderCorrelated,
    /// Spikes at major carries — worst at the MSB transition, scaling
    /// with `√(2^i)` per bit (capacitor matching law).
    MajorCarry,
    /// Repeating spikes at each coarse-stage boundary from residue-gain
    /// and coarse-threshold error.
    CoarseBoundary,
}

impl DnlSignature {
    /// A short stable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DnlSignature::IidPerCode => "iid-per-code",
            DnlSignature::LadderCorrelated => "ladder-correlated",
            DnlSignature::MajorCarry => "major-carry",
            DnlSignature::CoarseBoundary => "coarse-boundary",
        }
    }
}

impl fmt::Display for DnlSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One architecture's device generator: draws mismatched converter
/// instances as [`TransferFunction`]s plus the metadata fleet tooling
/// keys on.
///
/// Object-safe (`&dyn DeviceSource` works) so heterogeneous source
/// collections need no generics; [`SourceSpec`] is the `Copy`
/// enum-dispatch form for by-value descriptors.
///
/// # Contract
///
/// `sample_transfer` must consume rng draws identically for a given
/// source value — the fleet's bit-exactness guarantees (same report for
/// any workers × lanes × chunking, scalar ≡ batched) rest on device `i`
/// being a pure function of `(source, rng_i)`.
pub trait DeviceSource {
    /// The architecture tag (stable; keys per-architecture priors).
    fn architecture(&self) -> Architecture;

    /// The resolution every sampled device states.
    fn resolution(&self) -> Resolution;

    /// Draws one device instance as its transfer function.
    fn sample_transfer(&self, rng: &mut dyn RngCore) -> TransferFunction;

    /// The DNL signature screening should expect from this source.
    fn dnl_signature(&self) -> DnlSignature {
        self.architecture().dnl_signature()
    }
}

impl DeviceSource for FlashConfig {
    fn architecture(&self) -> Architecture {
        Architecture::Flash
    }

    fn resolution(&self) -> Resolution {
        FlashConfig::resolution(self)
    }

    fn sample_transfer(&self, rng: &mut dyn RngCore) -> TransferFunction {
        self.sample(rng)
            .transfer()
            .expect("flash states its transfer")
    }
}

impl DeviceSource for SarConfig {
    fn architecture(&self) -> Architecture {
        Architecture::Sar
    }

    fn resolution(&self) -> Resolution {
        SarConfig::resolution(self)
    }

    fn sample_transfer(&self, rng: &mut dyn RngCore) -> TransferFunction {
        self.sample(rng)
            .transfer()
            .expect("sar states its transfer")
    }
}

impl DeviceSource for PipelineConfig {
    fn architecture(&self) -> Architecture {
        Architecture::Pipeline
    }

    fn resolution(&self) -> Resolution {
        PipelineConfig::resolution(self)
    }

    fn sample_transfer(&self, rng: &mut dyn RngCore) -> TransferFunction {
        self.sample(rng)
            .transfer()
            .expect("pipeline states its transfer")
    }
}

/// The §3 theory model as a device source: iid Gaussian code widths at a
/// stated resolution (the simulation half of the paper's sim/measurement
/// split).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IidWidthSource {
    resolution: Resolution,
    dist: WidthDistribution,
}

impl IidWidthSource {
    /// An iid-width source at `resolution` drawing from `dist`.
    pub fn new(resolution: Resolution, dist: WidthDistribution) -> Self {
        IidWidthSource { resolution, dist }
    }

    /// The paper's worst-case simulation model: 6 bits, σ_w = 0.21 LSB.
    pub fn paper() -> Self {
        IidWidthSource::new(Resolution::SIX_BIT, WidthDistribution::paper_worst_case())
    }

    /// The width distribution devices draw from.
    pub fn distribution(&self) -> WidthDistribution {
        self.dist
    }
}

impl DeviceSource for IidWidthSource {
    fn architecture(&self) -> Architecture {
        Architecture::IidWidths
    }

    fn resolution(&self) -> Resolution {
        self.resolution
    }

    fn sample_transfer(&self, rng: &mut dyn RngCore) -> TransferFunction {
        iid_width_transfer(self.resolution, &self.dist, rng)
    }
}

/// A `Copy` device source, enum-dispatched over every architecture —
/// the form fleet descriptors (`bist_mc::batch::Batch`, experiment
/// configs, sweep cells) embed and pass by value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceSpec {
    /// Behavioural flash (ladder + comparator mismatch).
    Flash(FlashConfig),
    /// iid Gaussian code widths (theory model).
    IidWidths(IidWidthSource),
    /// SAR with binary-weighted capacitor mismatch.
    Sar(SarConfig),
    /// Two-stage pipeline with inter-stage gain error.
    Pipeline(PipelineConfig),
}

impl SourceSpec {
    /// The paper's physical flash source (σ_w = 0.21 LSB).
    pub fn paper_flash() -> Self {
        SourceSpec::Flash(FlashConfig::paper_device())
    }

    /// The paper's iid-width simulation source (σ = 0.21 LSB).
    pub fn paper_iid() -> Self {
        SourceSpec::IidWidths(IidWidthSource::paper())
    }

    /// A paper-scale SAR source (mid-range yield; MSB-carry DNL).
    pub fn paper_sar() -> Self {
        SourceSpec::Sar(SarConfig::paper_device())
    }

    /// A paper-scale pipeline source (mid-range yield; boundary DNL).
    pub fn paper_pipeline() -> Self {
        SourceSpec::Pipeline(PipelineConfig::paper_device())
    }

    fn as_dyn(&self) -> &dyn DeviceSource {
        match self {
            SourceSpec::Flash(c) => c,
            SourceSpec::IidWidths(c) => c,
            SourceSpec::Sar(c) => c,
            SourceSpec::Pipeline(c) => c,
        }
    }
}

impl DeviceSource for SourceSpec {
    fn architecture(&self) -> Architecture {
        self.as_dyn().architecture()
    }

    fn resolution(&self) -> Resolution {
        self.as_dyn().resolution()
    }

    fn sample_transfer(&self, rng: &mut dyn RngCore) -> TransferFunction {
        self.as_dyn().sample_transfer(rng)
    }
}

impl fmt::Display for SourceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceSpec::Flash(c) => {
                write!(f, "flash (σ_w {:.3} LSB)", c.code_width_sigma_lsb())
            }
            SourceSpec::IidWidths(c) => {
                write!(f, "iid widths (σ {} LSB)", c.distribution().sigma())
            }
            SourceSpec::Sar(c) => {
                write!(f, "sar (σ_unit {:.3})", c.unit_cap_sigma())
            }
            SourceSpec::Pipeline(c) => {
                write!(f, "pipeline (σ_gain {:.3})", c.gain_sigma())
            }
        }
    }
}

impl From<FlashConfig> for SourceSpec {
    fn from(c: FlashConfig) -> Self {
        SourceSpec::Flash(c)
    }
}

impl From<IidWidthSource> for SourceSpec {
    fn from(c: IidWidthSource) -> Self {
        SourceSpec::IidWidths(c)
    }
}

impl From<SarConfig> for SourceSpec {
    fn from(c: SarConfig) -> Self {
        SourceSpec::Sar(c)
    }
}

impl From<PipelineConfig> for SourceSpec {
    fn from(c: PipelineConfig) -> Self {
        SourceSpec::Pipeline(c)
    }
}

/// Stream salts for the zoo's derived RNG streams (distinct from every
/// experiment salt in `bist-mc`, so zoo fleets never collide with sweep
/// streams at the same master seed).
const ZOO_ARCH_SALT: u64 = 0x200_a51e;
const ZOO_DEVICE_SALT: u64 = 0x200_de71;
const ZOO_NOISE_SALT: u64 = 0x200_0153;

/// A mixed-architecture fleet: a set of sources plus a master seed,
/// with a stable per-device `(seed, index) → (architecture, rng)`
/// assignment.
///
/// Device `i`'s architecture pick, generation rng and acquisition-noise
/// rng are each pure functions of `(seed, i)` on independent
/// [`stream_rng`] streams — no draw-order coupling between devices — so
/// a zoo fleet screened through `Screener::run` produces bit-identical
/// reports for any workers × lane width × chunk size, and adding noise
/// draws to one device never perturbs its neighbours.
///
/// All sources must state the same resolution (one fleet is screened
/// against one BIST plan).
#[derive(Debug, Clone, PartialEq)]
pub struct Zoo {
    sources: Vec<SourceSpec>,
    seed: u64,
}

impl Zoo {
    /// A zoo drawing uniformly (per-device, seeded) from `sources`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or resolutions disagree.
    pub fn new(sources: Vec<SourceSpec>) -> Self {
        assert!(!sources.is_empty(), "zoo needs at least one source");
        let r = sources[0].resolution();
        assert!(
            sources.iter().all(|s| s.resolution() == r),
            "zoo sources must share one resolution"
        );
        Zoo { sources, seed: 0 }
    }

    /// The paper-scale four-architecture zoo (flash, iid, SAR,
    /// pipeline), all 6-bit.
    pub fn paper() -> Self {
        Zoo::new(vec![
            SourceSpec::paper_flash(),
            SourceSpec::paper_iid(),
            SourceSpec::paper_sar(),
            SourceSpec::paper_pipeline(),
        ])
    }

    /// Sets the master seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared resolution of every source.
    pub fn resolution(&self) -> Resolution {
        self.sources[0].resolution()
    }

    /// The source set, in assignment-index order.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.sources
    }

    /// Device `index`'s source pick — stable in `(seed, index)` only.
    pub fn source_of(&self, index: usize) -> &SourceSpec {
        let pick = stream_rng(self.seed, &[ZOO_ARCH_SALT, index as u64]).next_u64();
        &self.sources[(pick % self.sources.len() as u64) as usize]
    }

    /// Device `index`'s architecture tag.
    pub fn architecture_of(&self, index: usize) -> Architecture {
        self.source_of(index).architecture()
    }

    /// Device `index`'s generation RNG (independent of the pick stream).
    pub fn device_rng(&self, index: usize) -> StdRng {
        stream_rng(self.seed, &[ZOO_DEVICE_SALT, index as u64])
    }

    /// Device `index`'s acquisition-noise RNG (independent of both).
    pub fn noise_rng(&self, index: usize) -> StdRng {
        stream_rng(self.seed, &[ZOO_NOISE_SALT, index as u64])
    }

    /// Generates device `index`'s transfer function.
    pub fn device(&self, index: usize) -> TransferFunction {
        self.source_of(index)
            .sample_transfer(&mut self.device_rng(index))
    }

    /// A fleet of `n` `(device, noise rng)` pairs in index order — the
    /// shape `Screener::run` consumes.
    pub fn fleet(&self, n: usize) -> impl Iterator<Item = (TransferFunction, StdRng)> + '_ {
        (0..n).map(move |i| (self.device(i), self.noise_rng(i)))
    }

    /// How many of the first `n` devices land on each architecture
    /// (indexed by [`Architecture::index`]).
    pub fn census(&self, n: usize) -> [usize; Architecture::COUNT] {
        let mut counts = [0usize; Architecture::COUNT];
        for i in 0..n {
            counts[self.architecture_of(i).index()] += 1;
        }
        counts
    }
}

/// The SplitMix64 finaliser behind every derived RNG stream in the
/// workspace (`bist_mc::batch` re-exports it).
pub fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A reproducible RNG for an arbitrary tuple of stream coordinates —
/// the one mixing function behind every experiment-derived stream
/// (device generation, acquisition noise, per-cell sweeps), so stream
/// independence is auditable in one place.
///
/// Each coordinate is absorbed and finalised in turn, so streams differ
/// whenever any coordinate (or the coordinate order) differs; the empty
/// tuple just finalises the seed. Same-seed, same-coordinates calls are
/// bit-identical across threads, platforms and releases
/// ([`rand`]'s compat `StdRng` is pinned).
pub fn stream_rng(seed: u64, coords: &[u64]) -> StdRng {
    let mut z = seed;
    for &c in coords {
        z = splitmix_finalize(
            z.wrapping_add(0x9e3779b97f4a7c15)
                .wrapping_add(c.wrapping_mul(0x2545f4914f6cdd1d)),
        );
    }
    StdRng::seed_from_u64(splitmix_finalize(z))
}

/// The RNG for device `index` of a single-architecture batch (stable
/// golden-ratio mixing of seed and index — `bist_mc::batch::Batch`'s
/// historical stream, kept bit-identical).
pub fn device_rng(seed: u64, index: usize) -> StdRng {
    // SplitMix64 finaliser decorrelates consecutive indices.
    StdRng::seed_from_u64(splitmix_finalize(
        seed.wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(index as u64 + 1)),
    ))
}

/// Builds a transfer function whose inner-code widths are iid draws from
/// `dist` (clamped at zero — a negative draw becomes a missing code).
/// The first transition sits at its ideal position; the input range is
/// the ideal 6.4·(2ⁿ/64)-style span with 0.1 V/LSB.
pub fn iid_width_transfer<R: Rng + ?Sized>(
    resolution: Resolution,
    dist: &WidthDistribution,
    rng: &mut R,
) -> TransferFunction {
    let q = 0.1; // volts per LSB (arbitrary but fixed)
    let n_transitions = resolution.transition_count() as usize;
    let mut t = Vec::with_capacity(n_transitions);
    t.push(q); // T[1] ideal
    for _ in 1..n_transitions {
        let w_lsb = (dist.mean() + dist.sigma() * standard_normal(rng)).max(0.0);
        let prev = *t.last().expect("non-empty");
        t.push(prev + w_lsb * q);
    }
    // Keep the *nominal* range: accumulated width drift is a gain error,
    // and the LSB size (hence Δs) must stay referenced to the ideal LSB.
    // The harness ramp sweeps past the range far enough to close the
    // last code. Transitions above `high` are legal.
    let high = q * resolution.code_count() as f64;
    TransferFunction::from_transitions(resolution, Volts(0.0), Volts(high), t)
}

/// One standard-normal draw (Marsaglia polar method over `rand`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0f64..1.0);
        let v: f64 = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_adc::spec::LinearitySpec;

    #[test]
    fn sources_state_their_resolution() {
        for s in [
            SourceSpec::paper_flash(),
            SourceSpec::paper_iid(),
            SourceSpec::paper_sar(),
            SourceSpec::paper_pipeline(),
        ] {
            assert_eq!(s.resolution(), Resolution::SIX_BIT);
            let tf = s.sample_transfer(&mut stream_rng(1, &[s.architecture().index() as u64]));
            assert_eq!(tf.resolution(), Resolution::SIX_BIT);
        }
    }

    #[test]
    fn architecture_index_is_dense_and_stable() {
        for (i, a) in Architecture::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
        assert_eq!(Architecture::ALL.len(), Architecture::COUNT);
    }

    #[test]
    fn sampling_is_a_pure_function_of_source_and_rng() {
        for s in [
            SourceSpec::paper_flash(),
            SourceSpec::paper_iid(),
            SourceSpec::paper_sar(),
            SourceSpec::paper_pipeline(),
        ] {
            let a = s.sample_transfer(&mut stream_rng(9, &[3]));
            let b = s.sample_transfer(&mut stream_rng(9, &[3]));
            assert_eq!(a.transitions(), b.transitions(), "{s}");
            let c = s.sample_transfer(&mut stream_rng(9, &[4]));
            assert_ne!(a.transitions(), c.transitions(), "{s}");
        }
    }

    #[test]
    fn zoo_assignment_is_stable_and_covers_all_architectures() {
        let zoo = Zoo::paper().with_seed(42);
        let census = zoo.census(200);
        for (a, &n) in Architecture::ALL.iter().zip(census.iter()) {
            assert!(n > 20, "architecture {a} drew only {n}/200 devices");
        }
        // Assignment depends on (seed, index) only.
        let again = Zoo::paper().with_seed(42);
        for i in 0..50 {
            assert_eq!(zoo.architecture_of(i), again.architecture_of(i));
            assert_eq!(zoo.device(i).transitions(), again.device(i).transitions());
        }
        // A different seed reshuffles.
        let other = Zoo::paper().with_seed(43);
        assert_ne!(
            (0..50).map(|i| zoo.architecture_of(i)).collect::<Vec<_>>(),
            (0..50)
                .map(|i| other.architecture_of(i))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn paper_sources_have_mid_range_yield() {
        // Every architecture's paper preset must yield in (5%, 95%)
        // under the stringent spec: screening a zoo then exercises both
        // accept and reject paths on every architecture.
        let spec = LinearitySpec::paper_stringent();
        for s in [
            SourceSpec::paper_flash(),
            SourceSpec::paper_iid(),
            SourceSpec::paper_sar(),
            SourceSpec::paper_pipeline(),
        ] {
            let good = (0..200)
                .filter(|&i| {
                    let tf = s.sample_transfer(&mut device_rng(7, i));
                    spec.classify(&tf).good
                })
                .count();
            assert!(
                (10..190).contains(&good),
                "{s}: yield {good}/200 is degenerate"
            );
        }
    }

    #[test]
    fn dnl_signatures_are_architecture_specific() {
        assert_eq!(
            SourceSpec::paper_sar().dnl_signature(),
            DnlSignature::MajorCarry
        );
        assert_eq!(
            SourceSpec::paper_pipeline().dnl_signature(),
            DnlSignature::CoarseBoundary
        );
        assert_eq!(
            SourceSpec::paper_flash().dnl_signature(),
            DnlSignature::LadderCorrelated
        );
        assert_eq!(
            SourceSpec::paper_iid().dnl_signature(),
            DnlSignature::IidPerCode
        );
    }
}
