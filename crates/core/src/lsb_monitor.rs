#![allow(clippy::needless_range_loop)] // index loops mirror the maths/netlists
//! Behavioural reference model of the Figure-4 LSB-processing block.
//!
//! The primary interface is the streaming accumulator
//! [`LsbMonitorAcc`]: it consumes the monitored bit one sample at a
//! time — exactly like the on-chip block, which has no sample memory —
//! extracting the run length of every complete code (the gap between
//! consecutive transitions), judging it against the count window, and
//! accumulating INL. [`monitor_bit_stream`] is the materialised
//! convenience wrapper over a captured `&[bool]`. Bit-exact with the
//! RTL [`bist_rtl::datapath::LsbProcessor`] — a cross-validation test
//! in this crate enforces it.
//!
//! ## Scratch-reuse contract
//!
//! [`LsbMonitorAcc::new`] borrows the caller's `Vec<CodeResult>` result
//! buffer, clearing its contents but keeping its capacity — so a caller
//! screening many devices (see `harness::Scratch`) pays the per-code
//! allocation only on the first device and the hot path is
//! allocation-free afterwards.

use crate::config::BistConfig;
use bist_adc::types::Lsb;
use bist_rtl::window_compare::{WindowComparator, WindowVerdict};
use std::fmt;

/// One judged code from the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeResult {
    /// Measurement sequence number (0 = first complete code).
    pub index: u64,
    /// Measured width in samples.
    pub count: u64,
    /// Whether a real counter of the configured width would have
    /// saturated (count > 2^bits).
    pub overflow: bool,
    /// DNL window verdict.
    pub dnl_verdict: WindowVerdict,
    /// Estimated code width in LSB (`count · Δs`) — the off-chip
    /// engineering view; the on-chip block only keeps the verdict.
    pub width_lsb: Lsb,
    /// Estimated DNL in LSB (`width − 1`).
    pub dnl_lsb: Lsb,
    /// INL after this code in counter units.
    pub inl_counts: i64,
    /// INL window verdict (true = pass; always true when INL checking is
    /// off).
    pub inl_pass: bool,
}

/// Aggregate result of monitoring one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorResult {
    /// Per-code results in sweep order.
    pub codes: Vec<CodeResult>,
    /// Number of DNL failures.
    pub dnl_failures: u64,
    /// Number of INL failures.
    pub inl_failures: u64,
}

impl MonitorResult {
    /// Whether every judged code passed both windows.
    pub fn all_pass(&self) -> bool {
        self.dnl_failures == 0 && self.inl_failures == 0
    }

    /// The measured counts in sweep order.
    pub fn counts(&self) -> Vec<u64> {
        self.codes.iter().map(|c| c.count).collect()
    }

    /// The estimated DNL profile in LSB.
    pub fn dnl_profile(&self) -> Vec<Lsb> {
        self.codes.iter().map(|c| c.dnl_lsb).collect()
    }
}

impl fmt::Display for MonitorResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} codes judged: {} DNL fails, {} INL fails → {}",
            self.codes.len(),
            self.dnl_failures,
            self.inl_failures,
            if self.all_pass() { "PASS" } else { "FAIL" }
        )
    }
}

/// Runs the behavioural LSB monitor over a monitored-bit stream.
///
/// The stream is the sampled level of the monitored bit (one entry per
/// ADC sample). The segment before the first transition and the segment
/// after the last transition are partial codes and are not judged,
/// mirroring the hardware.
///
/// # Examples
///
/// ```
/// use bist_adc::spec::LinearitySpec;
/// use bist_adc::types::Resolution;
/// use bist_core::config::BistConfig;
/// use bist_core::lsb_monitor::monitor_bit_stream;
///
/// # fn main() -> Result<(), bist_core::limits::PlanLimitsError> {
/// let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
///     .counter_bits(4)
///     .build()?;
/// // Three complete codes of 11 samples each (in-window for i∈[6,16]).
/// let mut stream = Vec::new();
/// for run in 0..5 {
///     stream.extend(std::iter::repeat(run % 2 == 1).take(11));
/// }
/// let result = monitor_bit_stream(&cfg, &stream);
/// assert_eq!(result.codes.len(), 3);
/// assert!(result.all_pass());
/// # Ok(())
/// # }
/// ```
pub fn monitor_bit_stream(config: &BistConfig, stream: &[bool]) -> MonitorResult {
    let mut codes = Vec::new();
    let mut acc = LsbMonitorAcc::new(config, &mut codes);
    for &b in stream {
        acc.push(b);
    }
    let tally = acc.finish();
    MonitorResult {
        codes,
        dnl_failures: tally.dnl_failures,
        inl_failures: tally.inl_failures,
    }
}

/// Compact (heap-free) summary returned by [`LsbMonitorAcc::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorTally {
    /// Number of complete codes judged.
    pub codes_judged: u64,
    /// Number of DNL failures.
    pub dnl_failures: u64,
    /// Number of INL failures.
    pub inl_failures: u64,
}

/// The heap-free per-sweep state of the LSB monitor: the window
/// comparator, the deglitcher taps, the run tracker and the failure
/// tallies — everything [`LsbMonitorAcc`] holds except the borrowed
/// result buffer.
///
/// `Copy`, so lane-parallel engines (the batched verdict path in
/// `bist_core::batch`) can keep one per lane in a plain array and step
/// them with the *same* `push` the scalar accumulator uses — batched
/// and scalar sweeps run the identical code path, not a re-derivation.
#[derive(Debug, Clone, Copy)]
pub struct MonitorState {
    comparator: WindowComparator,
    capacity: u64,
    i_ideal: i64,
    delta_s: f64,
    inl_limit: Option<u64>,
    // Deglitcher taps (None = filter off): the last two raw bits, zero-
    // initialised like the RTL's flops.
    taps: Option<(bool, bool)>,
    pos: u64,
    level: bool,
    run_start: Option<u64>,
    index: u64,
    dnl_failures: u64,
    inl_failures: u64,
    inl_acc: i64,
}

impl MonitorState {
    /// Fresh state for one sweep under `config`.
    pub fn new(config: &BistConfig) -> Self {
        MonitorState {
            comparator: WindowComparator::new(config.limits().i_min(), config.limits().i_max()),
            capacity: 1u64 << config.counter_bits(),
            i_ideal: config.limits().i_ideal() as i64,
            delta_s: config.delta_s().0,
            inl_limit: config.inl_limit_counts(),
            taps: config.deglitch().then_some((false, false)),
            pos: 0,
            level: false,
            run_start: None,
            index: 0,
            dnl_failures: 0,
            inl_failures: 0,
            inl_acc: 0,
        }
    }

    /// Pushes one raw sample of the monitored bit, returning the code
    /// measurement it completes, if any.
    pub fn push(&mut self, raw: bool) -> Option<CodeResult> {
        let bit = match &mut self.taps {
            // Majority over the window [b_{i-2}, b_{i-1}, b_i].
            Some((t2, t1)) => {
                let vote = u8::from(*t2) + u8::from(*t1) + u8::from(raw) >= 2;
                (*t2, *t1) = (*t1, raw);
                vote
            }
            None => raw,
        };
        if self.pos == 0 {
            self.level = bit;
        }
        let mut completed = None;
        if bit != self.level {
            // Transition: the previous run is complete.
            if let Some(start) = self.run_start {
                completed = Some(self.record(self.pos - start));
            }
            self.run_start = Some(self.pos);
            self.level = bit;
        }
        self.pos += 1;
        completed
    }

    /// Advances the sweep by `k` repeats of the last pushed sample
    /// without stepping the per-sample machinery — the run-skipping
    /// fast path of the batched engine.
    ///
    /// Contract: the caller must have pushed the same raw value at
    /// least twice in a row (once suffices with the deglitcher off), so
    /// every skipped push would provably change nothing but `pos`: the
    /// deglitcher window is saturated at that value, the vote equals
    /// the held level, and no transition can fire.
    pub fn skip_run(&mut self, k: u64) {
        if let Some((t2, t1)) = self.taps {
            debug_assert!(
                t2 == t1 && t1 == self.level,
                "skip_run before the deglitcher settled"
            );
        }
        self.pos += k;
    }

    fn record(&mut self, raw_count: u64) -> CodeResult {
        // A k-bit counter stores count − 1 and saturates at 2^k − 1,
        // so counts above 2^k are unmeasurable.
        let overflow = raw_count > self.capacity;
        let count = raw_count.min(self.capacity);
        let dnl_verdict = if overflow {
            WindowVerdict::TooWide
        } else {
            self.comparator.compare(count)
        };
        if !dnl_verdict.is_pass() {
            self.dnl_failures += 1;
        }
        self.inl_acc += count as i64 - self.i_ideal;
        let inl_pass = match self.inl_limit {
            Some(limit) => self.inl_acc.unsigned_abs() <= limit,
            None => true,
        };
        if !inl_pass {
            self.inl_failures += 1;
        }
        let width_lsb = Lsb(raw_count as f64 * self.delta_s);
        let result = CodeResult {
            index: self.index,
            count,
            overflow,
            dnl_verdict,
            width_lsb,
            dnl_lsb: Lsb(width_lsb.0 - 1.0),
            inl_counts: self.inl_acc,
            inl_pass,
        };
        self.index += 1;
        result
    }

    /// The compact tally so far. The run in flight (after the last
    /// transition) is a partial code and is not counted, mirroring the
    /// hardware.
    pub fn tally(&self) -> MonitorTally {
        MonitorTally {
            codes_judged: self.index,
            dnl_failures: self.dnl_failures,
            inl_failures: self.inl_failures,
        }
    }
}

/// Streaming LSB monitor: push the monitored bit one sample at a time.
///
/// Replicates [`monitor_bit_stream`] exactly (including the optional
/// 3-tap majority-vote deglitcher, realised here as two zero-initialised
/// tap registers, matching the RTL) without materialising the bit
/// stream. Per-code results land in the borrowed buffer; counters are
/// returned by [`LsbMonitorAcc::finish`]. The sweep state itself lives
/// in a [`MonitorState`] — this wrapper only adds the result buffer.
#[derive(Debug)]
pub struct LsbMonitorAcc<'s> {
    state: MonitorState,
    codes: &'s mut Vec<CodeResult>,
}

impl<'s> LsbMonitorAcc<'s> {
    /// Starts a sweep, clearing (but not shrinking) the result buffer.
    pub fn new(config: &BistConfig, codes: &'s mut Vec<CodeResult>) -> Self {
        codes.clear();
        LsbMonitorAcc {
            state: MonitorState::new(config),
            codes,
        }
    }

    /// Pushes one raw sample of the monitored bit.
    pub fn push(&mut self, raw: bool) {
        if let Some(result) = self.state.push(raw) {
            self.codes.push(result);
        }
    }

    /// Number of code measurements recorded so far this sweep — lets a
    /// caller driving the accumulator sample by sample (the sequenced
    /// engine) detect a completed code without releasing the borrow.
    pub fn recorded(&self) -> usize {
        self.codes.len()
    }

    /// The most recent code measurement, if any.
    pub fn latest(&self) -> Option<CodeResult> {
        self.codes.last().copied()
    }

    /// Ends the sweep. The run in flight (after the last transition) is
    /// a partial code and is not judged, mirroring the hardware.
    pub fn finish(self) -> MonitorTally {
        self.state.tally()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::types::Resolution;

    fn cfg(counter_bits: u32) -> BistConfig {
        BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(counter_bits)
            .build()
            .unwrap()
    }

    fn stream(runs: &[u64]) -> Vec<bool> {
        let mut out = Vec::new();
        let mut level = false;
        for &r in runs {
            out.extend(std::iter::repeat_n(level, r as usize));
            level = !level;
        }
        out
    }

    #[test]
    fn drops_partial_first_and_last_runs() {
        let result = monitor_bit_stream(&cfg(4), &stream(&[7, 10, 12, 9, 100]));
        assert_eq!(result.counts(), vec![10, 12, 9]);
    }

    #[test]
    fn verdicts_follow_window() {
        // Window [6, 16] for the 4-bit planned config.
        let result = monitor_bit_stream(&cfg(4), &stream(&[3, 5, 10, 16, 3]));
        let verdicts: Vec<WindowVerdict> = result.codes.iter().map(|c| c.dnl_verdict).collect();
        assert_eq!(
            verdicts,
            vec![
                WindowVerdict::TooNarrow,
                WindowVerdict::Pass,
                WindowVerdict::Pass,
            ]
        );
        assert_eq!(result.dnl_failures, 1);
        assert!(!result.all_pass());
    }

    #[test]
    fn counter_saturation_flags_overflow() {
        // 4-bit counter capacity is 16 counts; a 30-sample run overflows.
        let result = monitor_bit_stream(&cfg(4), &stream(&[3, 30, 10, 3]));
        assert!(result.codes[0].overflow);
        assert_eq!(result.codes[0].count, 16);
        assert_eq!(result.codes[0].dnl_verdict, WindowVerdict::TooWide);
        assert!(!result.codes[1].overflow);
    }

    #[test]
    fn width_estimates_use_delta_s() {
        let config = cfg(4);
        let ds = config.delta_s().0;
        let result = monitor_bit_stream(&config, &stream(&[3, 11, 3]));
        assert!((result.codes[0].width_lsb.0 - 11.0 * ds).abs() < 1e-12);
        assert!((result.codes[0].dnl_lsb.0 - (11.0 * ds - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn inl_accumulates() {
        // Planned 4-bit config: i_ideal = round(1/0.09375) = 11.
        let config = cfg(4);
        assert_eq!(config.limits().i_ideal(), 11);
        let result = monitor_bit_stream(&config, &stream(&[3, 13, 9, 11, 3]));
        let inls: Vec<i64> = result.codes.iter().map(|c| c.inl_counts).collect();
        assert_eq!(inls, vec![2, 0, 0]);
    }

    #[test]
    fn empty_and_constant_streams() {
        let result = monitor_bit_stream(&cfg(4), &[]);
        assert!(result.codes.is_empty());
        let result = monitor_bit_stream(&cfg(4), &[true; 100]);
        assert!(result.codes.is_empty());
        assert!(result.all_pass());
    }

    #[test]
    fn single_transition_judges_nothing() {
        let result = monitor_bit_stream(&cfg(4), &stream(&[50, 50]));
        assert!(result.codes.is_empty());
    }

    #[test]
    fn deglitch_removes_toggle() {
        let mut s = stream(&[10, 12, 10]);
        // Inject an isolated toggle mid-run: without deglitching it
        // splits a code into two short (failing) runs.
        s[16] = !s[16];
        let raw_cfg = cfg(4);
        let raw = monitor_bit_stream(&raw_cfg, &s);
        assert!(raw.dnl_failures > 0);
        let deglitched_cfg =
            BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
                .counter_bits(4)
                .deglitch(true)
                .build()
                .unwrap();
        let filtered = monitor_bit_stream(&deglitched_cfg, &s);
        assert_eq!(filtered.dnl_failures, 0, "{filtered}");
    }

    #[test]
    fn dnl_profile_and_display() {
        let result = monitor_bit_stream(&cfg(4), &stream(&[3, 11, 11, 3]));
        assert_eq!(result.dnl_profile().len(), 2);
        assert!(result.to_string().contains("PASS"));
    }

    #[test]
    fn matches_rtl_datapath_exactly() {
        // The RTL processor and the behavioural monitor must agree on
        // every count and verdict for a representative stream.
        use bist_rtl::datapath::LsbProcessor;
        let config = cfg(4);
        let runs: Vec<u64> = (0..40).map(|i| 6 + (i * 7) % 12).collect();
        let s = stream(&runs);
        let behavioural = monitor_bit_stream(&config, &s);

        let mut rtl = LsbProcessor::new(config.to_rtl());
        let mut rtl_counts = Vec::new();
        let mut rtl_verdicts = Vec::new();
        for &b in &s {
            if let Some(m) = rtl.tick(b) {
                rtl_counts.push(m.count.min(1 << config.counter_bits()));
                rtl_verdicts.push(m.dnl_verdict);
            }
        }
        // The RTL's 2-cycle synchroniser may miss the very last edge;
        // compare the common prefix.
        let n = rtl_counts.len().min(behavioural.codes.len());
        assert!(n > 30, "too few common measurements: {n}");
        assert_eq!(behavioural.counts()[..n], rtl_counts[..n], "count mismatch");
        for i in 0..n {
            assert_eq!(
                behavioural.codes[i].dnl_verdict, rtl_verdicts[i],
                "verdict mismatch at {i}"
            );
        }
    }
}
