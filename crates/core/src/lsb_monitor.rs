#![allow(clippy::needless_range_loop)] // index loops mirror the maths/netlists
//! Behavioural reference model of the Figure-4 LSB-processing block.
//!
//! Operates on a captured bit stream of the monitored bit: extracts the
//! run length of every complete code (the gap between consecutive
//! transitions), judges it against the count window, and accumulates INL.
//! Bit-exact with the RTL [`bist_rtl::datapath::LsbProcessor`] —
//! a cross-validation test in this crate enforces it.

use crate::config::BistConfig;
use bist_adc::types::Lsb;
use bist_dsp::filter::MajorityVote;
use bist_rtl::window_compare::{WindowComparator, WindowVerdict};
use std::fmt;

/// One judged code from the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeResult {
    /// Measurement sequence number (0 = first complete code).
    pub index: u64,
    /// Measured width in samples.
    pub count: u64,
    /// Whether a real counter of the configured width would have
    /// saturated (count > 2^bits).
    pub overflow: bool,
    /// DNL window verdict.
    pub dnl_verdict: WindowVerdict,
    /// Estimated code width in LSB (`count · Δs`) — the off-chip
    /// engineering view; the on-chip block only keeps the verdict.
    pub width_lsb: Lsb,
    /// Estimated DNL in LSB (`width − 1`).
    pub dnl_lsb: Lsb,
    /// INL after this code in counter units.
    pub inl_counts: i64,
    /// INL window verdict (true = pass; always true when INL checking is
    /// off).
    pub inl_pass: bool,
}

/// Aggregate result of monitoring one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorResult {
    /// Per-code results in sweep order.
    pub codes: Vec<CodeResult>,
    /// Number of DNL failures.
    pub dnl_failures: u64,
    /// Number of INL failures.
    pub inl_failures: u64,
}

impl MonitorResult {
    /// Whether every judged code passed both windows.
    pub fn all_pass(&self) -> bool {
        self.dnl_failures == 0 && self.inl_failures == 0
    }

    /// The measured counts in sweep order.
    pub fn counts(&self) -> Vec<u64> {
        self.codes.iter().map(|c| c.count).collect()
    }

    /// The estimated DNL profile in LSB.
    pub fn dnl_profile(&self) -> Vec<Lsb> {
        self.codes.iter().map(|c| c.dnl_lsb).collect()
    }
}

impl fmt::Display for MonitorResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} codes judged: {} DNL fails, {} INL fails → {}",
            self.codes.len(),
            self.dnl_failures,
            self.inl_failures,
            if self.all_pass() { "PASS" } else { "FAIL" }
        )
    }
}

/// Runs the behavioural LSB monitor over a monitored-bit stream.
///
/// The stream is the sampled level of the monitored bit (one entry per
/// ADC sample). The segment before the first transition and the segment
/// after the last transition are partial codes and are not judged,
/// mirroring the hardware.
///
/// # Examples
///
/// ```
/// use bist_adc::spec::LinearitySpec;
/// use bist_adc::types::Resolution;
/// use bist_core::config::BistConfig;
/// use bist_core::lsb_monitor::monitor_bit_stream;
///
/// # fn main() -> Result<(), bist_core::limits::PlanLimitsError> {
/// let cfg = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
///     .counter_bits(4)
///     .build()?;
/// // Three complete codes of 11 samples each (in-window for i∈[6,16]).
/// let mut stream = Vec::new();
/// for run in 0..5 {
///     stream.extend(std::iter::repeat(run % 2 == 1).take(11));
/// }
/// let result = monitor_bit_stream(&cfg, &stream);
/// assert_eq!(result.codes.len(), 3);
/// assert!(result.all_pass());
/// # Ok(())
/// # }
/// ```
pub fn monitor_bit_stream(config: &BistConfig, stream: &[bool]) -> MonitorResult {
    let filtered: Vec<bool> = if config.deglitch() {
        let mut f = MajorityVote::new(3);
        // Match the RTL deglitcher's zero-initialised taps: prime with
        // two zero samples before the stream proper.
        f.push(false);
        f.push(false);
        stream.iter().map(|&b| f.push(b)).collect()
    } else {
        stream.to_vec()
    };

    let comparator = WindowComparator::new(config.limits().i_min(), config.limits().i_max());
    let capacity = 1u64 << config.counter_bits();
    let i_ideal = config.limits().i_ideal() as i64;
    let delta_s = config.delta_s().0;

    let mut codes = Vec::new();
    let mut dnl_failures = 0;
    let mut inl_failures = 0;
    let mut inl_acc: i64 = 0;
    let mut run_start: Option<usize> = None;
    let mut index = 0u64;
    let mut level = filtered.first().copied().unwrap_or(false);

    for (i, &bit) in filtered.iter().enumerate() {
        if bit == level {
            continue;
        }
        // Transition at sample i: the previous run is complete.
        if let Some(start) = run_start {
            let raw_count = (i - start) as u64;
            // A k-bit counter stores count − 1 and saturates at 2^k − 1,
            // so counts above 2^k are unmeasurable.
            let overflow = raw_count > capacity;
            let count = raw_count.min(capacity);
            let dnl_verdict = if overflow {
                WindowVerdict::TooWide
            } else {
                comparator.compare(count)
            };
            if !dnl_verdict.is_pass() {
                dnl_failures += 1;
            }
            inl_acc += count as i64 - i_ideal;
            let inl_pass = match config.inl_limit_counts() {
                Some(limit) => inl_acc.unsigned_abs() <= limit,
                None => true,
            };
            if !inl_pass {
                inl_failures += 1;
            }
            let width_lsb = Lsb(raw_count as f64 * delta_s);
            codes.push(CodeResult {
                index,
                count,
                overflow,
                dnl_verdict,
                width_lsb,
                dnl_lsb: Lsb(width_lsb.0 - 1.0),
                inl_counts: inl_acc,
                inl_pass,
            });
            index += 1;
        }
        run_start = Some(i);
        level = bit;
    }

    MonitorResult {
        codes,
        dnl_failures,
        inl_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::types::Resolution;

    fn cfg(counter_bits: u32) -> BistConfig {
        BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(counter_bits)
            .build()
            .unwrap()
    }

    fn stream(runs: &[u64]) -> Vec<bool> {
        let mut out = Vec::new();
        let mut level = false;
        for &r in runs {
            out.extend(std::iter::repeat_n(level, r as usize));
            level = !level;
        }
        out
    }

    #[test]
    fn drops_partial_first_and_last_runs() {
        let result = monitor_bit_stream(&cfg(4), &stream(&[7, 10, 12, 9, 100]));
        assert_eq!(result.counts(), vec![10, 12, 9]);
    }

    #[test]
    fn verdicts_follow_window() {
        // Window [6, 16] for the 4-bit planned config.
        let result = monitor_bit_stream(&cfg(4), &stream(&[3, 5, 10, 16, 3]));
        let verdicts: Vec<WindowVerdict> = result.codes.iter().map(|c| c.dnl_verdict).collect();
        assert_eq!(
            verdicts,
            vec![
                WindowVerdict::TooNarrow,
                WindowVerdict::Pass,
                WindowVerdict::Pass,
            ]
        );
        assert_eq!(result.dnl_failures, 1);
        assert!(!result.all_pass());
    }

    #[test]
    fn counter_saturation_flags_overflow() {
        // 4-bit counter capacity is 16 counts; a 30-sample run overflows.
        let result = monitor_bit_stream(&cfg(4), &stream(&[3, 30, 10, 3]));
        assert!(result.codes[0].overflow);
        assert_eq!(result.codes[0].count, 16);
        assert_eq!(result.codes[0].dnl_verdict, WindowVerdict::TooWide);
        assert!(!result.codes[1].overflow);
    }

    #[test]
    fn width_estimates_use_delta_s() {
        let config = cfg(4);
        let ds = config.delta_s().0;
        let result = monitor_bit_stream(&config, &stream(&[3, 11, 3]));
        assert!((result.codes[0].width_lsb.0 - 11.0 * ds).abs() < 1e-12);
        assert!((result.codes[0].dnl_lsb.0 - (11.0 * ds - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn inl_accumulates() {
        // Planned 4-bit config: i_ideal = round(1/0.09375) = 11.
        let config = cfg(4);
        assert_eq!(config.limits().i_ideal(), 11);
        let result = monitor_bit_stream(&config, &stream(&[3, 13, 9, 11, 3]));
        let inls: Vec<i64> = result.codes.iter().map(|c| c.inl_counts).collect();
        assert_eq!(inls, vec![2, 0, 0]);
    }

    #[test]
    fn empty_and_constant_streams() {
        let result = monitor_bit_stream(&cfg(4), &[]);
        assert!(result.codes.is_empty());
        let result = monitor_bit_stream(&cfg(4), &[true; 100]);
        assert!(result.codes.is_empty());
        assert!(result.all_pass());
    }

    #[test]
    fn single_transition_judges_nothing() {
        let result = monitor_bit_stream(&cfg(4), &stream(&[50, 50]));
        assert!(result.codes.is_empty());
    }

    #[test]
    fn deglitch_removes_toggle() {
        let mut s = stream(&[10, 12, 10]);
        // Inject an isolated toggle mid-run: without deglitching it
        // splits a code into two short (failing) runs.
        s[16] = !s[16];
        let raw_cfg = cfg(4);
        let raw = monitor_bit_stream(&raw_cfg, &s);
        assert!(raw.dnl_failures > 0);
        let deglitched_cfg =
            BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
                .counter_bits(4)
                .deglitch(true)
                .build()
                .unwrap();
        let filtered = monitor_bit_stream(&deglitched_cfg, &s);
        assert_eq!(filtered.dnl_failures, 0, "{filtered}");
    }

    #[test]
    fn dnl_profile_and_display() {
        let result = monitor_bit_stream(&cfg(4), &stream(&[3, 11, 11, 3]));
        assert_eq!(result.dnl_profile().len(), 2);
        assert!(result.to_string().contains("PASS"));
    }

    #[test]
    fn matches_rtl_datapath_exactly() {
        // The RTL processor and the behavioural monitor must agree on
        // every count and verdict for a representative stream.
        use bist_rtl::datapath::LsbProcessor;
        let config = cfg(4);
        let runs: Vec<u64> = (0..40).map(|i| 6 + (i * 7) % 12).collect();
        let s = stream(&runs);
        let behavioural = monitor_bit_stream(&config, &s);

        let mut rtl = LsbProcessor::new(config.to_rtl());
        let mut rtl_counts = Vec::new();
        let mut rtl_verdicts = Vec::new();
        for &b in &s {
            if let Some(m) = rtl.tick(b) {
                rtl_counts.push(m.count.min(1 << config.counter_bits()));
                rtl_verdicts.push(m.dnl_verdict);
            }
        }
        // The RTL's 2-cycle synchroniser may miss the very last edge;
        // compare the common prefix.
        let n = rtl_counts.len().min(behavioural.codes.len());
        assert!(n > 30, "too few common measurements: {n}");
        assert_eq!(behavioural.counts()[..n], rtl_counts[..n], "count mismatch");
        for i in 0..n {
            assert_eq!(
                behavioural.codes[i].dnl_verdict, rtl_verdicts[i],
                "verdict mismatch at {i}"
            );
        }
    }
}
