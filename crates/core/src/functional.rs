//! Behavioural reference of the Figure-2 upper-bit functional test.
//!
//! While the monitored bit is processed by the LSB monitor, the bits
//! above it must simply count: the code sequence of a ramp increments by
//! one, so the upper word increments exactly at each falling edge of the
//! monitored bit. Comparing the observed upper word against an internal
//! counter clocked by that edge verifies the converter's functionality —
//! stuck output bits, decoder miswires and skipped codes all break the
//! `+1` continuity.

use bist_adc::types::Code;
use std::fmt;

/// One functional check fired at a falling edge of the monitored bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalCheck {
    /// Sample index at which the check fired.
    pub sample: usize,
    /// The expected upper word (previous value + 1).
    pub expected: u64,
    /// The observed upper word.
    pub observed: u64,
    /// Whether they matched.
    pub ok: bool,
}

/// Result of the functional test over one sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalResult {
    /// All checks fired.
    pub checks: Vec<FunctionalCheck>,
    /// Number of mismatches.
    pub mismatches: u64,
}

impl FunctionalResult {
    /// Whether every check matched.
    pub fn all_pass(&self) -> bool {
        self.mismatches == 0
    }
}

impl fmt::Display for FunctionalResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "functional: {}/{} mismatches → {}",
            self.mismatches,
            self.checks.len(),
            if self.all_pass() { "PASS" } else { "FAIL" }
        )
    }
}

/// Runs the upper-bit functional test on a code stream.
///
/// `monitored_bit` is the bit index driving the edge detection (0 = LSB,
/// the paper's full-BIST case); the "upper word" is `code >> (monitored_bit + 1)`.
/// After the first falling edge seeds the expected value, every further
/// falling edge requires the upper word to have incremented by exactly
/// one. On a mismatch the expectation resynchronises so each defect is
/// counted once.
///
/// # Examples
///
/// ```
/// use bist_adc::types::Code;
/// use bist_core::functional::check_code_stream;
///
/// // A clean staircase 0,0,1,1,2,2,... passes.
/// let codes: Vec<Code> = (0u32..32).flat_map(|c| [Code(c), Code(c)]).collect();
/// let result = check_code_stream(&codes, 0);
/// assert!(result.all_pass());
/// assert!(result.checks.len() >= 14);
/// ```
pub fn check_code_stream(codes: &[Code], monitored_bit: u32) -> FunctionalResult {
    let mut checks = Vec::new();
    let mut acc = FunctionalAcc::new(monitored_bit, false, &mut checks);
    for &code in codes {
        acc.push(code);
    }
    let tally = acc.finish();
    FunctionalResult {
        checks,
        mismatches: tally.mismatches,
    }
}

/// Compact (heap-free) summary returned by [`FunctionalAcc::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalTally {
    /// Number of checks fired.
    pub checks: u64,
    /// Number of mismatches.
    pub mismatches: u64,
}

/// Streaming upper-bit functional checker: push codes one sample at a
/// time.
///
/// Replicates [`check_code_stream`] exactly without materialising the
/// code stream. With `deglitch` enabled the codes are first passed
/// through a streaming median-of-3 filter (the first sample passes
/// through unchanged; the trailing in-flight window is discarded at
/// [`FunctionalAcc::finish`]) — the behavioural twin of the RTL
/// `CodeMedianFilter` guarding `bist_rtl`'s upper-bit checker, and
/// bit-exact with it per the backend-equivalence property tests.
///
/// Follows the same scratch-reuse contract as
/// [`crate::lsb_monitor::LsbMonitorAcc`]: the borrowed check buffer is
/// cleared, not reallocated.
#[derive(Debug)]
pub struct FunctionalAcc<'s> {
    state: FunctionalState,
    checks: &'s mut Vec<FunctionalCheck>,
}

/// The heap-free per-sweep state of the functional checker: edge
/// detector, expectation counter, median window and mismatch tally —
/// everything [`FunctionalAcc`] holds except the borrowed check buffer.
///
/// `Copy`, so lane-parallel engines (the batched verdict path in
/// `bist_core::batch`) can keep one per lane in a plain array and step
/// them with the *same* `push` the scalar accumulator uses.
#[derive(Debug, Clone, Copy)]
pub struct FunctionalState {
    monitored_bit: u32,
    fired: u64,
    mismatches: u64,
    expected: Option<u64>,
    prev_bit: Option<bool>,
    pos: usize,
    /// Median-of-3 window state: the last two raw codes and how many
    /// codes have been pushed (None = filter off).
    median: Option<(Code, Code, u64)>,
}

impl FunctionalState {
    /// Fresh state for one sweep.
    pub fn new(monitored_bit: u32, deglitch: bool) -> Self {
        FunctionalState {
            monitored_bit,
            fired: 0,
            mismatches: 0,
            expected: None,
            prev_bit: None,
            pos: 0,
            median: deglitch.then_some((Code(0), Code(0), 0)),
        }
    }

    /// Pushes one raw code sample, returning the check it fires, if
    /// any.
    pub fn push(&mut self, code: Code) -> Option<FunctionalCheck> {
        match &mut self.median {
            None => self.step(code),
            Some((c1, c2, n)) => {
                let emit = match *n {
                    // First sample passes through unfiltered.
                    0 => {
                        *c1 = code;
                        Some(code)
                    }
                    1 => {
                        *c2 = code;
                        None
                    }
                    _ => {
                        let (a, b, c) = (c1.0, c2.0, code.0);
                        let m = a.max(b).min(a.max(c)).min(b.max(c));
                        (*c1, *c2) = (*c2, code);
                        Some(Code(m))
                    }
                };
                *n += 1;
                emit.and_then(|c| self.step(c))
            }
        }
    }

    /// Advances the sweep by `k` repeats of the last pushed code
    /// without stepping the per-sample machinery — the run-skipping
    /// fast path of the batched engine.
    ///
    /// Contract: the caller must have pushed the same code at least
    /// twice in a row (once suffices with the median filter off), so
    /// every skipped push would provably emit that same code again with
    /// no edge: only the sample position and the median's push count
    /// advance.
    pub fn skip_run(&mut self, k: u64) {
        if let Some((c1, c2, n)) = &mut self.median {
            debug_assert!(c1 == c2 && *n >= 2, "skip_run before the median settled");
            *n += k;
        }
        self.pos += k as usize;
    }

    /// Processes one element of the (possibly filtered) code stream.
    fn step(&mut self, code: Code) -> Option<FunctionalCheck> {
        let bit = (code.0 >> self.monitored_bit) & 1 == 1;
        let upper = u64::from(code.0 >> (self.monitored_bit + 1));
        let mut check = None;
        if let Some(p) = self.prev_bit {
            if p && !bit {
                // Falling edge of the monitored bit.
                match self.expected {
                    None => self.expected = Some(upper),
                    Some(prev_val) => {
                        let want = prev_val.wrapping_add(1);
                        let ok = upper == want;
                        if !ok {
                            self.mismatches += 1;
                        }
                        self.fired += 1;
                        check = Some(FunctionalCheck {
                            sample: self.pos,
                            expected: want,
                            observed: upper,
                            ok,
                        });
                        self.expected = Some(upper);
                    }
                }
            }
        }
        self.prev_bit = Some(bit);
        self.pos += 1;
        check
    }

    /// The compact tally so far. The median filter's in-flight window
    /// is discarded — like the monitor path (and the hardware), the
    /// sweep stops dead at the last sample and judges nothing beyond
    /// it.
    pub fn tally(&self) -> FunctionalTally {
        FunctionalTally {
            checks: self.fired,
            mismatches: self.mismatches,
        }
    }
}

impl<'s> FunctionalAcc<'s> {
    /// Starts a sweep, clearing (but not shrinking) the check buffer.
    pub fn new(monitored_bit: u32, deglitch: bool, checks: &'s mut Vec<FunctionalCheck>) -> Self {
        checks.clear();
        FunctionalAcc {
            state: FunctionalState::new(monitored_bit, deglitch),
            checks,
        }
    }

    /// Pushes one raw code sample.
    pub fn push(&mut self, code: Code) {
        if let Some(check) = self.state.push(code) {
            self.checks.push(check);
        }
    }

    /// Number of checks fired so far this sweep — lets a caller driving
    /// the accumulator sample by sample (the sequenced engine) detect a
    /// new check without releasing the borrow.
    pub fn fired(&self) -> usize {
        self.checks.len()
    }

    /// The most recent check, if any.
    pub fn latest(&self) -> Option<FunctionalCheck> {
        self.checks.last().copied()
    }

    /// Ends the sweep. The median filter's in-flight window is
    /// discarded — like the monitor path (and the hardware), the sweep
    /// stops dead at the last sample and judges nothing beyond it. (An
    /// earlier revision flushed the trailing raw code here, which could
    /// fire one final check no realisable filter-then-synchronise
    /// datapath would ever see; the harness's overshoot past full scale
    /// makes the two semantics identical on real sweeps.)
    pub fn finish(self) -> FunctionalTally {
        self.state.tally()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase(codes: impl IntoIterator<Item = u32>, per_code: usize) -> Vec<Code> {
        codes
            .into_iter()
            .flat_map(|c| std::iter::repeat_n(Code(c), per_code))
            .collect()
    }

    #[test]
    fn clean_ramp_passes() {
        let codes = staircase(0..64, 5);
        let r = check_code_stream(&codes, 0);
        assert!(r.all_pass());
        // Falling LSB edges: 1→2, 3→4, …, 61→62 after the seeding edge.
        assert_eq!(r.checks.len(), 30);
    }

    #[test]
    fn stuck_bit_detected() {
        // Bit 3 stuck low: codes with bit 3 set read wrong.
        let codes: Vec<Code> = staircase(0..64, 5)
            .into_iter()
            .map(|c| Code(c.0 & !(1 << 3)))
            .collect();
        let r = check_code_stream(&codes, 0);
        assert!(!r.all_pass());
        assert!(r.mismatches >= 2, "mismatches {}", r.mismatches);
    }

    #[test]
    fn skipped_code_detected_once() {
        // 20 never appears: …18,19,21,22,… breaks one +1 check when the
        // upper word jumps (19→21 has upper 9→10 at the falling edge,
        // which is fine) — skip an even/odd pair instead: drop 20 and 21.
        let seq: Vec<u32> = (0..64).filter(|&c| c != 20 && c != 21).collect();
        let codes = staircase(seq, 5);
        let r = check_code_stream(&codes, 0);
        assert_eq!(r.mismatches, 1);
    }

    #[test]
    fn stuck_code_yields_no_edges() {
        let codes = staircase(std::iter::repeat_n(17, 50), 1);
        let r = check_code_stream(&codes, 0);
        assert!(r.checks.is_empty());
        assert!(r.all_pass(), "no evidence either way from a stuck code");
    }

    #[test]
    fn monitored_bit_one_partial_bist() {
        // Monitoring bit 1: falling edges of bit 1 occur every 4 codes;
        // upper word is code >> 2.
        let codes = staircase(0..64, 3);
        let r = check_code_stream(&codes, 1);
        assert!(r.all_pass());
        assert!(!r.checks.is_empty());
        // A fault in bit 5 (part of the upper word) is caught.
        let bad: Vec<Code> = codes.iter().map(|c| Code(c.0 | 1 << 5)).collect();
        let r = check_code_stream(&bad, 1);
        assert!(!r.all_pass());
    }

    #[test]
    fn mismatch_records_expected_and_observed() {
        let seq: Vec<u32> = (0..8).chain(16..24).collect();
        let codes = staircase(seq, 4);
        let r = check_code_stream(&codes, 0);
        assert_eq!(r.mismatches, 1);
        let bad = r.checks.iter().find(|c| !c.ok).unwrap();
        assert_eq!(bad.expected, 4); // after 7 (upper 3), expected 4
        assert_eq!(bad.observed, 8); // observed 16's upper word
    }

    #[test]
    fn empty_stream() {
        let r = check_code_stream(&[], 0);
        assert!(r.all_pass());
        assert!(r.checks.is_empty());
    }

    #[test]
    fn display_format() {
        let codes = staircase(0..8, 3);
        let r = check_code_stream(&codes, 0);
        assert!(r.to_string().contains("PASS"));
    }

    #[test]
    fn matches_rtl_checker() {
        use bist_rtl::datapath::UpperBitChecker;
        use bist_rtl::logic::Bus;
        // Same faulty stream through both implementations.
        let codes: Vec<Code> = staircase(0..64, 6)
            .into_iter()
            .map(|c| Code(c.0 & !(1 << 4)))
            .collect();
        let behavioural = check_code_stream(&codes, 0);
        let mut rtl = UpperBitChecker::new(5);
        for &c in &codes {
            rtl.tick(c.0 & 1 == 1, Bus::truncate(5, u64::from(c.0 >> 1)));
        }
        assert_eq!(behavioural.mismatches, rtl.mismatches());
        assert_eq!(behavioural.checks.len() as u64, rtl.checks());
    }
}
