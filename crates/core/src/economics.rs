//! Test-cost model: the §1/§5 economics that motivate the method.
//!
//! The paper's argument chain: mixed-signal tester time is expensive →
//! moving tester functions on-chip reduces the *pins* and *data volume*
//! per converter → more converters test in parallel on the same tester →
//! test time (and cost) per device drops. This module quantifies each
//! link so the claim "the proposed methodology has a major advantage
//! \[for\] chips containing more than one A/D converter" can be evaluated
//! numerically.

use crate::config::BistConfig;
use std::fmt;

/// Degree of on-chip test integration, ordered by decreasing tester
/// involvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TestStyle {
    /// Conventional: all `n` output bits captured by the tester, DNL/INL
    /// computed off-chip from the full code record.
    Conventional,
    /// Partial BIST (Figure 2): bits `1..=q` captured by the tester,
    /// bits `q+1..n` checked on-chip.
    PartialBist {
        /// Number of off-chip bits.
        q: u32,
    },
    /// Full BIST: everything on-chip; the tester reads one pass/fail pin
    /// (or scans one signature register) at the end.
    FullBist,
}

impl TestStyle {
    /// Digital test pins the tester must capture per converter during
    /// the sweep (§5: full static BIST needs a single results pin).
    pub fn pins_per_converter(&self, adc_bits: u32) -> u32 {
        match *self {
            TestStyle::Conventional => adc_bits,
            TestStyle::PartialBist { q } => q.min(adc_bits),
            TestStyle::FullBist => 1,
        }
    }

    /// Data volume (bits) the tester must acquire and process for one
    /// converter over a sweep of `samples` samples.
    pub fn tester_bits(&self, adc_bits: u32, samples: u64) -> u64 {
        match *self {
            TestStyle::Conventional => u64::from(adc_bits) * samples,
            TestStyle::PartialBist { q } => u64::from(q.min(adc_bits)) * samples,
            // One pass/fail read (plus an optional 16-bit signature).
            TestStyle::FullBist => 17,
        }
    }
}

impl fmt::Display for TestStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TestStyle::Conventional => f.write_str("conventional"),
            TestStyle::PartialBist { q } => write!(f, "partial BIST (q={q})"),
            TestStyle::FullBist => f.write_str("full BIST"),
        }
    }
}

/// Tester resources and timing for one sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestPlanCost {
    /// Sweep duration in seconds (one ramp).
    pub sweep_seconds: f64,
    /// Converters testable in parallel with the available pins.
    pub parallel_converters: u32,
    /// Effective test time per converter in seconds.
    pub seconds_per_converter: f64,
    /// Tester data volume per converter in bits.
    pub tester_bits_per_converter: u64,
}

impl fmt::Display for TestPlanCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep {:.3} s, {}x parallel → {:.4} s/converter, {} tester bits",
            self.sweep_seconds,
            self.parallel_converters,
            self.seconds_per_converter,
            self.tester_bits_per_converter
        )
    }
}

/// Computes the cost of screening converters with the given style.
///
/// `sample_rate` is the converter sample rate; the sweep length follows
/// from the config's Δs and resolution (`2ⁿ/Δs` samples plus margins).
/// `tester_pins` is the number of digital capture pins the tester
/// offers.
///
/// # Panics
///
/// Panics if `sample_rate` or `tester_pins` is zero.
pub fn plan_cost(
    config: &BistConfig,
    style: TestStyle,
    sample_rate: f64,
    tester_pins: u32,
) -> TestPlanCost {
    assert!(sample_rate > 0.0, "sample rate must be positive");
    assert!(tester_pins > 0, "tester must have at least one pin");
    let n = config.resolution().bits();
    let codes = f64::from(config.resolution().code_count());
    // Samples per sweep: (codes + margin) / Δs.
    let samples = ((codes + 12.0) / config.delta_s().0).ceil() as u64;
    let sweep_seconds = samples as f64 / sample_rate;
    let pins_per = style.pins_per_converter(n);
    let parallel = (tester_pins / pins_per).max(1);
    TestPlanCost {
        sweep_seconds,
        parallel_converters: parallel,
        seconds_per_converter: sweep_seconds / f64::from(parallel),
        tester_bits_per_converter: style.tester_bits(n, samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_adc::spec::LinearitySpec;
    use bist_adc::types::Resolution;

    fn config() -> BistConfig {
        BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
            .counter_bits(4)
            .build()
            .expect("paper operating point")
    }

    #[test]
    fn pins_by_style() {
        assert_eq!(TestStyle::Conventional.pins_per_converter(6), 6);
        assert_eq!(TestStyle::PartialBist { q: 2 }.pins_per_converter(6), 2);
        assert_eq!(TestStyle::FullBist.pins_per_converter(6), 1);
    }

    #[test]
    fn full_bist_parallelism_is_n_times_conventional() {
        // §5: "several A/D converters can easily be tested in parallel".
        let cfg = config();
        let conventional = plan_cost(&cfg, TestStyle::Conventional, 1e6, 48);
        let full = plan_cost(&cfg, TestStyle::FullBist, 1e6, 48);
        assert_eq!(conventional.parallel_converters, 8); // 48/6
        assert_eq!(full.parallel_converters, 48); // 48/1
        assert!(full.seconds_per_converter < conventional.seconds_per_converter / 5.9);
        // Same sweep duration either way — the ramp is unchanged.
        assert_eq!(conventional.sweep_seconds, full.sweep_seconds);
    }

    #[test]
    fn partial_bist_interpolates() {
        let cfg = config();
        let partial = plan_cost(&cfg, TestStyle::PartialBist { q: 2 }, 1e6, 48);
        assert_eq!(partial.parallel_converters, 24);
        let conv = plan_cost(&cfg, TestStyle::Conventional, 1e6, 48);
        let full = plan_cost(&cfg, TestStyle::FullBist, 1e6, 48);
        assert!(partial.seconds_per_converter < conv.seconds_per_converter);
        assert!(partial.seconds_per_converter > full.seconds_per_converter);
    }

    #[test]
    fn data_volume_collapses_with_bist() {
        let cfg = config();
        let conv = plan_cost(&cfg, TestStyle::Conventional, 1e6, 8);
        let full = plan_cost(&cfg, TestStyle::FullBist, 1e6, 8);
        // Conventional: 6 bits × ~830 samples ≈ 5000 bits; BIST: 17.
        assert!(conv.tester_bits_per_converter > 4000);
        assert_eq!(full.tester_bits_per_converter, 17);
    }

    #[test]
    fn sweep_time_grows_with_counter_size() {
        // Finer Δs (bigger counter) needs a slower ramp: accuracy costs
        // test time — the other axis of the Figure-1 trade-off.
        let fast = plan_cost(&config(), TestStyle::FullBist, 1e6, 8);
        let precise_cfg =
            BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
                .counter_bits(7)
                .build()
                .expect("paper operating point");
        let precise = plan_cost(&precise_cfg, TestStyle::FullBist, 1e6, 8);
        let ratio = precise.sweep_seconds / fast.sweep_seconds;
        assert!((7.0..9.0).contains(&ratio), "ratio {ratio}"); // Δs ratio ≈ 8
    }

    #[test]
    fn single_pin_tester_still_works() {
        let cost = plan_cost(&config(), TestStyle::Conventional, 1e6, 1);
        assert_eq!(cost.parallel_converters, 1);
    }

    #[test]
    #[should_panic(expected = "at least one pin")]
    fn zero_pins_panics() {
        plan_cost(&config(), TestStyle::FullBist, 1e6, 0);
    }

    #[test]
    fn displays() {
        assert_eq!(TestStyle::FullBist.to_string(), "full BIST");
        let cost = plan_cost(&config(), TestStyle::FullBist, 1e6, 16);
        assert!(cost.to_string().contains("parallel"));
    }
}
