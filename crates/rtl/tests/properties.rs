//! Property-based tests of the RTL primitives' hardware laws.

use bist_rtl::accumulator::Accumulator;
use bist_rtl::counter::Counter;
use bist_rtl::datapath::{LsbProcessor, LsbProcessorConfig};
use bist_rtl::deglitch::{CodeMedianFilter, Deglitcher};
use bist_rtl::edge::EdgeDetector;
use bist_rtl::logic::Bus;
use bist_rtl::registers::{Lfsr, Misr, ShiftRegister};
use bist_rtl::window_compare::{WindowComparator, WindowVerdict};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bus truncation equals masking; wrapping add stays in range.
    #[test]
    fn bus_laws(width in 1u32..17, value in 0u64..1_000_000, add in 0u64..1_000_000) {
        let mask = (1u64 << width) - 1;
        let b = Bus::truncate(width, value);
        prop_assert_eq!(b.value(), value & mask);
        let sum = b.wrapping_add(add);
        prop_assert_eq!(sum.value(), (value & mask).wrapping_add(add) & mask);
        prop_assert!(b.saturating_add(add).value() <= b.max_value());
        prop_assert!(b.saturating_add(add).value() >= b.value().min(b.max_value()));
    }

    /// Bit slicing reassembles to the original word.
    #[test]
    fn bus_slice_reassembles(value in 0u64..256) {
        let b = Bus::new(8, value);
        let hi = b.slice(7, 4);
        let lo = b.slice(3, 0);
        prop_assert_eq!(hi.value() << 4 | lo.value(), value);
    }

    /// A counter that never clears counts exactly min(ticks, max).
    #[test]
    fn counter_counts_ticks(width in 2u32..10, ticks in 0u64..2000) {
        let mut c = Counter::new(width);
        for _ in 0..ticks {
            c.tick(true, false);
        }
        prop_assert_eq!(c.value().value(), ticks.min(c.max_count()));
        prop_assert_eq!(c.overflowed(), ticks > c.max_count());
    }

    /// Clear always wins over enable and resets overflow.
    #[test]
    fn counter_clear_dominates(width in 2u32..10, ticks in 1u64..500) {
        let mut c = Counter::new(width);
        for _ in 0..ticks {
            c.tick(true, false);
        }
        c.tick(true, true);
        prop_assert_eq!(c.value().value(), 0);
        prop_assert!(!c.overflowed());
    }

    /// The accumulator never exceeds its symmetric bounds and is exact
    /// while unsaturated.
    #[test]
    fn accumulator_bounds(width in 3u32..16, deltas in prop::collection::vec(-50i64..50, 1..100)) {
        let mut acc = Accumulator::new(width);
        let mut exact: i64 = 0;
        let mut ever_saturated = false;
        for &d in &deltas {
            acc.add(d);
            exact += d;
            ever_saturated |= exact.abs() > acc.limit();
            prop_assert!(acc.value().abs() <= acc.limit());
            if !ever_saturated {
                prop_assert_eq!(acc.value(), exact);
            }
        }
        prop_assert_eq!(acc.saturated(), ever_saturated);
    }

    /// The window comparator is a partition: exactly one verdict per
    /// count, ordered TooNarrow < Pass < TooWide along the count axis.
    #[test]
    fn window_comparator_partition(i_min in 0u64..50, extra in 0u64..50, count in 0u64..200) {
        let cmp = WindowComparator::new(i_min, i_min + extra);
        let v = cmp.compare(count);
        match v {
            WindowVerdict::TooNarrow => prop_assert!(count < i_min),
            WindowVerdict::Pass => prop_assert!((i_min..=i_min + extra).contains(&count)),
            WindowVerdict::TooWide => prop_assert!(count > i_min + extra),
        }
    }

    /// A shift register is a pure delay of its own length.
    #[test]
    fn shift_register_is_delay(len in 1usize..16, bits in prop::collection::vec(any::<bool>(), 1..80)) {
        let mut sr = ShiftRegister::new(len);
        let outs: Vec<bool> = bits.iter().map(|&b| sr.tick(b)).collect();
        for (i, &out) in outs.iter().enumerate() {
            let expected = if i >= len { bits[i - len] } else { false };
            prop_assert_eq!(out, expected, "at {}", i);
        }
    }

    /// MISR signatures are deterministic and differ for single-word
    /// stream differences (no aliasing on these short streams).
    #[test]
    fn misr_sensitivity(words in prop::collection::vec(0u64..65536, 2..40), flip in 0usize..39) {
        prop_assume!(flip < words.len());
        let taps = 0b1010_0000_0001_1001u64;
        let mut a = Misr::new(16, taps);
        let mut b = Misr::new(16, taps);
        for &w in &words {
            a.tick(w);
        }
        for (i, &w) in words.iter().enumerate() {
            b.tick(if i == flip { w ^ 0x8000 } else { w });
        }
        prop_assert_ne!(a.signature(), b.signature());
    }

    /// An LFSR with any non-zero seed never reaches the all-zero state.
    #[test]
    fn lfsr_never_zero(seed in 1u64..63) {
        let mut lfsr = Lfsr::new(6, 0b110000, seed);
        for _ in 0..200 {
            prop_assert_ne!(lfsr.tick().value(), 0);
        }
    }

    /// The edge detector is exactly a 2-cycle-delayed transition
    /// detector of its input — no spurious power-on edge for any
    /// stream, including those starting high (the priming window).
    #[test]
    fn edge_detector_reports_input_transitions_only(
        bits in prop::collection::vec(any::<bool>(), 1..120),
    ) {
        let mut ed = EdgeDetector::new();
        let mut observed = Vec::new();
        for (t, &b) in bits.iter().enumerate() {
            let e = ed.tick(b);
            if e.any() {
                observed.push((t, e.rising));
            }
        }
        let expected: Vec<(usize, bool)> = bits
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] != w[1])
            .map(|(i, w)| (i + 3, w[1])) // transition at i+1, +2 latency
            .filter(|(t, _)| *t < bits.len())
            .collect();
        prop_assert_eq!(observed, expected);
    }

    /// Recirculating either deglitch filter (the drain protocol) never
    /// changes its output, whatever state the stream left it in.
    #[test]
    fn deglitch_hold_is_inert(
        bits in prop::collection::vec(any::<bool>(), 1..60),
        codes in prop::collection::vec(0u64..64, 1..60),
        drains in 1usize..8,
    ) {
        let mut d = Deglitcher::new();
        let mut last = false;
        for &b in &bits {
            last = d.tick(b);
        }
        for _ in 0..drains {
            prop_assert_eq!(d.hold(), last);
        }
        let mut f = CodeMedianFilter::new(6);
        let mut last = Bus::zero(6);
        for &c in &codes {
            last = f.tick(Bus::new(6, c));
        }
        for _ in 0..drains {
            prop_assert_eq!(f.hold(), last);
        }
    }

    /// The MISR compaction of the top level never truncates a count:
    /// for any counter width, two single-code sweeps with different
    /// measured widths produce different signatures (the old fixed
    /// 14-bit mask aliased widths ≡ mod 2^14).
    #[test]
    fn top_signature_separates_widths(
        counter_bits in 14u32..18,
        width_a in 1u64..40_000,
        delta in 1u64..=16_384, // includes 2^14, the old mask's alias stride
    ) {
        use bist_rtl::top::{BistTop, BistTopConfig};
        let capacity = 1u64 << counter_bits;
        let width_b = width_a + delta;
        prop_assume!(width_b <= capacity);
        let cfg = BistTopConfig {
            lsb: LsbProcessorConfig {
                counter_bits,
                i_min: 1,
                i_max: capacity,
                i_ideal: 10,
                inl_limit_counts: None,
                deglitch: false,
            },
            adc_bits: 6,
            expected_codes: 1,
        };
        let sig = |width: u64| {
            let mut top = BistTop::new(cfg);
            for _ in 0..3 { top.tick(0); }
            for _ in 0..width { top.tick(1); }
            for _ in 0..4 { top.tick(0); }
            for _ in 0..BistTop::DRAIN_TICKS { top.drain_tick(); }
            assert_eq!(top.report().codes_measured, 1);
            top.report().signature.value()
        };
        prop_assert_ne!(sig(width_a), sig(width_b));
    }

    /// The LSB processor judges exactly `runs − 2` codes for any clean
    /// run-length stream (first and last runs are partial).
    #[test]
    fn processor_measurement_count(runs in prop::collection::vec(3u64..30, 3..40)) {
        let mut p = LsbProcessor::new(LsbProcessorConfig {
            counter_bits: 8,
            i_min: 1,
            i_max: 256,
            i_ideal: 10,
            inl_limit_counts: None,
            deglitch: false,
        });
        let mut level = false;
        let mut measured = 0u64;
        for &r in &runs {
            for _ in 0..r {
                if p.tick(level).is_some() {
                    measured += 1;
                }
            }
            level = !level;
        }
        // The final run's closing edge may fall beyond the stream (the
        // 2-cycle synchroniser), so allow one missing measurement.
        let expected = runs.len() as u64 - 2;
        prop_assert!(measured == expected || measured == expected.saturating_sub(1),
            "measured {} of {} runs", measured, runs.len());
    }
}
