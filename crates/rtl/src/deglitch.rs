//! RTL deglitch filters for the monitored LSB and the full output code.
//!
//! §3: comparator transition noise *"can cause toggling of the LSB which
//! means that there is no exact transition. Toggles in the LSB can be
//! removed by means of a simple digital filter."* [`Deglitcher`] is that
//! filter as hardware: a 3-stage shift register and a majority gate. Its
//! behaviour is bit-exact with `bist_dsp::filter::MajorityVote` (window
//! 3) once the pipeline is primed — a cross-check test in `bist-core`
//! enforces that.
//!
//! [`CodeMedianFilter`] is the multi-bit counterpart guarding the
//! Figure-2 upper-bit checker: a rank-order (median-of-3) filter over
//! whole output codes — two word registers plus a compare-select
//! network. It is bit-exact with the streaming median the behavioural
//! `FunctionalAcc` applies when deglitching is enabled.
//!
//! Both filters expose a `hold()` drain operation that recirculates the
//! filter's own output. Recirculation provably never creates a new
//! transition (see the unit properties below), so the BIST top level can
//! flush its synchroniser latency at the end of a sweep without judging
//! codes the behavioural reference — which stops dead at the last
//! sample — would not have judged.

use crate::logic::Bus;
use crate::registers::ShiftRegister;
use std::fmt;

/// Three-tap majority-vote filter.
///
/// # Examples
///
/// ```
/// use bist_rtl::deglitch::Deglitcher;
///
/// let mut d = Deglitcher::new();
/// // An isolated glitch is absorbed.
/// let out: Vec<bool> = [false, false, true, false, false]
///     .iter()
///     .map(|&b| d.tick(b))
///     .collect();
/// assert!(out.iter().all(|&b| !b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deglitcher {
    taps: ShiftRegister,
}

impl Deglitcher {
    /// A deglitcher with cleared taps.
    pub fn new() -> Self {
        Deglitcher {
            taps: ShiftRegister::new(3),
        }
    }

    /// Clocks the filter with the raw bit; returns the voted output
    /// (2-of-3 majority over the window including this cycle's input).
    pub fn tick(&mut self, raw: bool) -> bool {
        self.taps.tick(raw);
        let ones = self.taps.bits().iter().filter(|&&b| b).count();
        ones >= 2
    }

    /// Drain cycle: clocks the filter with its *own current output*
    /// (the majority over the stored taps). Recirculation keeps the
    /// output constant — `vote(b₂, b₁, vote(b₃, b₂, b₁)) = vote(b₃, b₂,
    /// b₁)` for every tap pattern — so holding never invents an edge
    /// the input stream did not contain.
    pub fn hold(&mut self) -> bool {
        let ones = self.taps.bits().iter().filter(|&&b| b).count();
        self.tick(ones >= 2)
    }

    /// Clears the filter state.
    pub fn clear(&mut self) {
        self.taps.clear();
    }
}

impl Default for Deglitcher {
    fn default() -> Self {
        Deglitcher::new()
    }
}

impl fmt::Display for Deglitcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deglitcher [{}]",
            self.taps
                .bits()
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        )
    }
}

/// Median-of-3 rank filter over whole output codes.
///
/// The first sample loads both word registers (reset-release capture),
/// so the filter's output sequence is the behavioural streaming median
/// with the first element duplicated once — duplication of consecutive
/// samples preserves every transition and the values at them, which is
/// all the downstream edge-triggered checker observes.
///
/// # Examples
///
/// ```
/// use bist_rtl::deglitch::CodeMedianFilter;
/// use bist_rtl::logic::Bus;
///
/// let mut f = CodeMedianFilter::new(6);
/// // An isolated outlier in a staircase is replaced by its neighbours.
/// let out: Vec<u64> = [3u64, 3, 60, 4, 4]
///     .iter()
///     .map(|&c| f.tick(Bus::new(6, c)).value())
///     .collect();
/// assert_eq!(out, vec![3, 3, 3, 4, 4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeMedianFilter {
    prev2: Bus,
    prev1: Bus,
    last_out: Bus,
    primed: bool,
}

impl CodeMedianFilter {
    /// A filter for `width`-bit codes with cleared registers.
    pub fn new(width: u32) -> Self {
        CodeMedianFilter {
            prev2: Bus::zero(width),
            prev1: Bus::zero(width),
            last_out: Bus::zero(width),
            primed: false,
        }
    }

    /// Clocks the filter with this cycle's code; returns the median of
    /// the 3-sample window ending at this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `code` has a different width than configured.
    pub fn tick(&mut self, code: Bus) -> Bus {
        assert_eq!(code.width(), self.prev1.width(), "code width changed");
        if !self.primed {
            // First valid sample seeds the whole window.
            self.prev2 = code;
            self.prev1 = code;
            self.primed = true;
        }
        let (a, b, c) = (self.prev2.value(), self.prev1.value(), code.value());
        let m = a.max(b).min(a.max(c)).min(b.max(c));
        self.prev2 = self.prev1;
        self.prev1 = code;
        self.last_out = Bus::truncate(code.width(), m);
        self.last_out
    }

    /// Drain cycle: clocks the filter with its own last output. The
    /// median of a window's two stored samples and their own median is
    /// that median again, so holding keeps the output constant and
    /// never creates a transition.
    pub fn hold(&mut self) -> Bus {
        self.tick(self.last_out)
    }

    /// Clears the registers and re-arms the first-sample capture.
    pub fn clear(&mut self) {
        let w = self.prev1.width();
        self.prev2 = Bus::zero(w);
        self.prev1 = Bus::zero(w);
        self.last_out = Bus::zero(w);
        self.primed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(bits: &[bool]) -> Vec<bool> {
        let mut d = Deglitcher::new();
        bits.iter().map(|&b| d.tick(b)).collect()
    }

    #[test]
    fn suppresses_isolated_high_glitch() {
        let out = run(&[false, false, true, false, false, false]);
        assert!(out.iter().all(|&b| !b), "{out:?}");
    }

    #[test]
    fn suppresses_isolated_low_glitch() {
        let out = run(&[true, true, true, false, true, true]);
        // After priming (cycle 1), output stays high through the glitch.
        assert!(out[1..].iter().all(|&b| b), "{out:?}");
    }

    #[test]
    fn passes_clean_transition_with_one_cycle_latency() {
        let out = run(&[false, false, true, true, true]);
        assert_eq!(out, vec![false, false, false, true, true]);
    }

    #[test]
    fn bouncing_edge_single_transition() {
        let out = run(&[false, true, false, true, true, false, true, true, true]);
        let transitions = out.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "{out:?}");
    }

    #[test]
    fn clear_resets() {
        let mut d = Deglitcher::new();
        d.tick(true);
        d.tick(true);
        assert!(d.tick(true));
        d.clear();
        assert!(!d.tick(false));
    }

    #[test]
    fn matches_behavioral_majority_vote() {
        // Bit-exact against the bist-dsp reference for a pseudo-random
        // stream, after the 2-sample priming window (the RTL taps reset
        // to zero whereas the behavioural filter votes over the bits
        // seen so far).
        use bist_dsp::filter::MajorityVote;
        let bits: Vec<bool> = (0..200).map(|i| (i * 7919 % 13) < 6).collect();
        let rtl = run(&bits);
        let mut beh = MajorityVote::new(3);
        let reference: Vec<bool> = bits.iter().map(|&b| beh.push(b)).collect();
        assert_eq!(rtl[2..], reference[2..]);
    }

    #[test]
    fn display_shows_taps() {
        let mut d = Deglitcher::new();
        d.tick(true);
        assert!(d.to_string().contains('1'));
    }

    #[test]
    fn hold_never_flips_the_output() {
        // Every 3-bit tap pattern: recirculating keeps the output fixed
        // for arbitrarily many drain cycles.
        for pattern in 0..8u8 {
            let mut d = Deglitcher::new();
            for i in 0..3 {
                d.tick(pattern >> i & 1 == 1);
            }
            let settled = d.hold();
            for _ in 0..5 {
                assert_eq!(d.hold(), settled, "pattern {pattern:03b}");
            }
        }
    }

    #[test]
    fn code_median_suppresses_outlier_and_passes_staircase() {
        let mut f = CodeMedianFilter::new(6);
        let seq = [5u64, 5, 5, 40, 6, 6, 7, 7];
        let out: Vec<u64> = seq
            .iter()
            .map(|&c| f.tick(Bus::new(6, c)).value())
            .collect();
        assert_eq!(out, vec![5, 5, 5, 5, 6, 6, 6, 7]);
    }

    #[test]
    fn code_median_hold_is_constant() {
        // Any final window: holding repeats the last median forever.
        for (a, b, c) in [(1u64, 9, 5), (0, 9, 1), (7, 7, 0), (3, 3, 3)] {
            let mut f = CodeMedianFilter::new(4);
            f.tick(Bus::new(4, a));
            f.tick(Bus::new(4, b));
            let last = f.tick(Bus::new(4, c));
            for _ in 0..4 {
                assert_eq!(f.hold(), last, "window ({a},{b},{c})");
            }
        }
    }

    #[test]
    fn code_median_first_sample_passes_through() {
        let mut f = CodeMedianFilter::new(6);
        assert_eq!(f.tick(Bus::new(6, 42)).value(), 42);
        f.clear();
        assert_eq!(f.tick(Bus::new(6, 7)).value(), 7);
    }

    #[test]
    #[should_panic(expected = "code width changed")]
    fn code_median_width_mismatch_panics() {
        let mut f = CodeMedianFilter::new(6);
        f.tick(Bus::new(5, 1));
    }
}
