//! RTL majority-vote deglitcher for the monitored LSB.
//!
//! §3: comparator transition noise *"can cause toggling of the LSB which
//! means that there is no exact transition. Toggles in the LSB can be
//! removed by means of a simple digital filter."* This is that filter as
//! hardware: a 3-stage shift register and a majority gate. Its behaviour
//! is bit-exact with `bist_dsp::filter::MajorityVote` (window 3) once the
//! pipeline is primed — a cross-check test in `bist-core` enforces that.

use crate::registers::ShiftRegister;
use std::fmt;

/// Three-tap majority-vote filter.
///
/// # Examples
///
/// ```
/// use bist_rtl::deglitch::Deglitcher;
///
/// let mut d = Deglitcher::new();
/// // An isolated glitch is absorbed.
/// let out: Vec<bool> = [false, false, true, false, false]
///     .iter()
///     .map(|&b| d.tick(b))
///     .collect();
/// assert!(out.iter().all(|&b| !b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deglitcher {
    taps: ShiftRegister,
}

impl Deglitcher {
    /// A deglitcher with cleared taps.
    pub fn new() -> Self {
        Deglitcher {
            taps: ShiftRegister::new(3),
        }
    }

    /// Clocks the filter with the raw bit; returns the voted output
    /// (2-of-3 majority over the window including this cycle's input).
    pub fn tick(&mut self, raw: bool) -> bool {
        self.taps.tick(raw);
        let ones = self.taps.bits().iter().filter(|&&b| b).count();
        ones >= 2
    }

    /// Clears the filter state.
    pub fn clear(&mut self) {
        self.taps.clear();
    }
}

impl Default for Deglitcher {
    fn default() -> Self {
        Deglitcher::new()
    }
}

impl fmt::Display for Deglitcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deglitcher [{}]",
            self.taps
                .bits()
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(bits: &[bool]) -> Vec<bool> {
        let mut d = Deglitcher::new();
        bits.iter().map(|&b| d.tick(b)).collect()
    }

    #[test]
    fn suppresses_isolated_high_glitch() {
        let out = run(&[false, false, true, false, false, false]);
        assert!(out.iter().all(|&b| !b), "{out:?}");
    }

    #[test]
    fn suppresses_isolated_low_glitch() {
        let out = run(&[true, true, true, false, true, true]);
        // After priming (cycle 1), output stays high through the glitch.
        assert!(out[1..].iter().all(|&b| b), "{out:?}");
    }

    #[test]
    fn passes_clean_transition_with_one_cycle_latency() {
        let out = run(&[false, false, true, true, true]);
        assert_eq!(out, vec![false, false, false, true, true]);
    }

    #[test]
    fn bouncing_edge_single_transition() {
        let out = run(&[false, true, false, true, true, false, true, true, true]);
        let transitions = out.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "{out:?}");
    }

    #[test]
    fn clear_resets() {
        let mut d = Deglitcher::new();
        d.tick(true);
        d.tick(true);
        assert!(d.tick(true));
        d.clear();
        assert!(!d.tick(false));
    }

    #[test]
    fn matches_behavioral_majority_vote() {
        // Bit-exact against the bist-dsp reference for a pseudo-random
        // stream, after the 2-sample priming window (the RTL taps reset
        // to zero whereas the behavioural filter votes over the bits
        // seen so far).
        use bist_dsp::filter::MajorityVote;
        let bits: Vec<bool> = (0..200).map(|i| (i * 7919 % 13) < 6).collect();
        let rtl = run(&bits);
        let mut beh = MajorityVote::new(3);
        let reference: Vec<bool> = bits.iter().map(|&b| beh.push(b)).collect();
        assert_eq!(rtl[2..], reference[2..]);
    }

    #[test]
    fn display_shows_taps() {
        let mut d = Deglitcher::new();
        d.tick(true);
        assert!(d.to_string().contains('1'));
    }
}
