//! The complete on-chip BIST top level — the paper's "ultimate goal …
//! a complete BIST solution where no expensive mixed-signal tester is
//! needed".
//!
//! [`BistTop`] wires the Figure-4 LSB processor and the Figure-2
//! upper-bit checker to a single clock, latches sticky pass/fail bits,
//! counts transitions for the completeness check, and compacts every
//! code measurement into a MISR signature so the *entire* test result
//! can be read out through one register scan — a single test pin, as §5
//! promises.
//!
//! ## Sweep protocol
//!
//! Tick once per ADC sample with the output code; when the stimulus
//! ends, run [`BistTop::DRAIN_TICKS`] calls of [`BistTop::drain_tick`]
//! before reading [`BistTop::report`]. Drain cycles recirculate the
//! deglitch filters' own outputs, which lets measurements already
//! inside the 2-cycle synchroniser complete without ever judging a code
//! the sample stream did not close — exactly the semantics of the
//! behavioural accumulators in `bist-core`, which stop dead at the last
//! sample. On-silicon this is simply the BIST clock running a few
//! cycles past the ramp generator.
//!
//! ## Completeness
//!
//! The report's `complete` bit requires the *exact* expected number of
//! measurements. A `≥` rule would accept glitchy sweeps that emit extra
//! transitions — a toggling LSB splitting codes could read "complete"
//! — so surplus measurements are as fatal as missing ones, matching the
//! behavioural harness's rule.

use crate::datapath::{CodeMeasurement, LsbProcessor, LsbProcessorConfig, UpperBitChecker};
use crate::deglitch::CodeMedianFilter;
use crate::logic::Bus;
use crate::registers::Misr;
use std::fmt;

/// Configuration of the full BIST top level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistTopConfig {
    /// LSB-processing block configuration.
    pub lsb: LsbProcessorConfig,
    /// Converter resolution in bits (upper word is `adc_bits − 1` wide).
    pub adc_bits: u32,
    /// Number of complete code measurements a healthy sweep produces
    /// (`2ⁿ − 2` for a full ramp at bit 0).
    pub expected_codes: u64,
}

/// The sticky result register of a finished self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistReport {
    /// Codes measured.
    pub codes_measured: u64,
    /// DNL window failures.
    pub dnl_failures: u64,
    /// INL window failures.
    pub inl_failures: u64,
    /// Upper-bit comparisons fired.
    pub functional_checks: u64,
    /// Upper-bit mismatches.
    pub functional_mismatches: u64,
    /// Whether the sweep produced *exactly* the expected number of
    /// measurements (missing and surplus transitions both fail).
    pub complete: bool,
    /// The MISR signature over all measurements (count ‖ verdict bits).
    pub signature: Bus,
}

impl BistReport {
    /// The single pass/fail bit the chip would expose.
    pub fn pass(&self) -> bool {
        self.complete
            && self.dnl_failures == 0
            && self.inl_failures == 0
            && self.functional_mismatches == 0
    }
}

impl fmt::Display for BistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} codes, {} DNL / {} INL / {} functional failures, signature {:b}",
            if self.pass() { "PASS" } else { "FAIL" },
            self.codes_measured,
            self.dnl_failures,
            self.inl_failures,
            self.functional_mismatches,
            self.signature
        )
    }
}

/// The full on-chip BIST: tick once per ADC sample with the output code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistTop {
    config: BistTopConfig,
    lsb: LsbProcessor,
    upper: UpperBitChecker,
    /// Rank filter guarding the upper-bit checker when deglitching is
    /// on: the Figure-2 comparison must see the same cleaned-up code
    /// the Figure-4 path sees a cleaned-up bit, or transition noise
    /// near an edge fires spurious `+1` mismatches.
    code_filter: CodeMedianFilter,
    misr: Misr,
    /// Input hold register for drain cycles on the unfiltered path.
    last_word: Bus,
}

impl BistTop {
    /// 16-bit MISR polynomial (x¹⁶+x¹⁵+x¹³+x⁴+1-ish taps — any dense
    /// polynomial works for compaction). For counters wider than 13
    /// bits the register is widened so the count field never truncates
    /// (see [`Self::misr_width`]).
    const MISR_TAPS: u64 = 0b1010_0000_0001_1001;

    /// Drain cycles needed after the last sample: two for the edge
    /// synchroniser plus one for the code median filter's window.
    pub const DRAIN_TICKS: u32 = 3;

    /// The signature register width for a given counter width: the
    /// count field needs `counter_bits + 1` bits (counts reach `2^k`)
    /// and the two verdict flags ride above it, with a 16-bit floor.
    /// Masking the count to a fixed 14 bits — the old behaviour — let
    /// distinct failing widths alias to identical signatures once
    /// `counter_bits > 13`.
    pub fn misr_width(counter_bits: u32) -> u32 {
        (counter_bits + 3).max(16)
    }

    /// Builds the top level.
    ///
    /// # Panics
    ///
    /// Panics if `adc_bits < 2` (there must be at least one upper bit)
    /// or the LSB configuration is invalid.
    pub fn new(config: BistTopConfig) -> Self {
        assert!(config.adc_bits >= 2, "need at least one upper bit");
        let width = Self::misr_width(config.lsb.counter_bits);
        let taps = if width > 16 {
            // Keep the dense taps in the top 16 stages and tap stage 0
            // so the polynomial spans the widened register.
            Self::MISR_TAPS << (width - 16) | 1
        } else {
            Self::MISR_TAPS
        };
        BistTop {
            config,
            lsb: LsbProcessor::new(config.lsb),
            upper: UpperBitChecker::new(config.adc_bits - 1),
            code_filter: CodeMedianFilter::new(config.adc_bits),
            misr: Misr::new(width, taps),
            last_word: Bus::zero(config.adc_bits),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BistTopConfig {
        &self.config
    }

    /// Clocks the BIST with this sample's output code. Returns the
    /// LSB-processor measurement when a code completed.
    ///
    /// # Panics
    ///
    /// Panics if `code` does not fit in `adc_bits`.
    pub fn tick(&mut self, code: u64) -> Option<CodeMeasurement> {
        let word = Bus::new(self.config.adc_bits, code);
        self.last_word = word;
        let checker_word = if self.config.lsb.deglitch {
            self.code_filter.tick(word)
        } else {
            word
        };
        self.clock_upper(checker_word);
        let m = self.lsb.tick(word.bit(0));
        self.compact(m.as_ref());
        m
    }

    /// Drain cycle after the last sample: recirculates the filters so
    /// in-flight measurements complete (see the module docs). Call
    /// [`Self::DRAIN_TICKS`] times before [`Self::report`].
    pub fn drain_tick(&mut self) -> Option<CodeMeasurement> {
        let checker_word = if self.config.lsb.deglitch {
            self.code_filter.hold()
        } else {
            self.last_word
        };
        self.clock_upper(checker_word);
        let m = self.lsb.drain_tick();
        self.compact(m.as_ref());
        m
    }

    /// Feeds the Figure-2 checker the (possibly filtered) code.
    fn clock_upper(&mut self, word: Bus) {
        let upper = word.slice(self.config.adc_bits - 1, 1);
        self.upper.tick(word.bit(0), upper);
    }

    /// Folds a completed measurement into the signature: the count in
    /// the low bits, the verdict flags in the top two.
    fn compact(&mut self, m: Option<&CodeMeasurement>) {
        if let Some(m) = m {
            let width = self.misr.signature().width();
            let verdict_bits = (u64::from(!m.dnl_verdict.is_pass()) << (width - 2))
                | (u64::from(!m.inl_pass) << (width - 1));
            self.misr.tick(m.count | verdict_bits);
        }
    }

    /// Live count of completed code measurements — readable mid-sweep
    /// (the early-stop sequencer polls these between ticks; the full
    /// [`Self::report`] assembles the MISR signature too, which a
    /// per-tick poll does not need).
    pub fn measurements(&self) -> u64 {
        self.lsb.measurements()
    }

    /// Live count of DNL window failures.
    pub fn dnl_failures(&self) -> u64 {
        self.lsb.dnl_failures()
    }

    /// Live count of INL window failures.
    pub fn inl_failures(&self) -> u64 {
        self.lsb.inl_failures()
    }

    /// Live count of upper-bit comparisons fired.
    pub fn functional_checks(&self) -> u64 {
        self.upper.checks()
    }

    /// Live count of upper-bit mismatches.
    pub fn functional_mismatches(&self) -> u64 {
        self.upper.mismatches()
    }

    /// The report register as it stands now (read at end of sweep,
    /// after the drain cycles).
    pub fn report(&self) -> BistReport {
        BistReport {
            codes_measured: self.lsb.measurements(),
            dnl_failures: self.lsb.dnl_failures(),
            inl_failures: self.lsb.inl_failures(),
            functional_checks: self.upper.checks(),
            functional_mismatches: self.upper.mismatches(),
            complete: self.lsb.measurements() == self.config.expected_codes,
            signature: self.misr.signature(),
        }
    }

    /// Resets all state for a new self-test run, in place: every block
    /// clears its registers but nothing is reconstructed, so a backend
    /// caching one `BistTop` screens a whole batch without per-device
    /// heap allocations.
    pub fn reset(&mut self) {
        self.lsb.reset();
        self.upper = UpperBitChecker::new(self.config.adc_bits - 1);
        self.code_filter.clear();
        self.misr.clear();
        self.last_word = Bus::zero(self.config.adc_bits);
    }
}

impl fmt::Display for BistTop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BIST top: {}", self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window_compare::WindowVerdict;

    fn config() -> BistTopConfig {
        BistTopConfig {
            lsb: LsbProcessorConfig {
                counter_bits: 6,
                i_min: 6,
                i_max: 16,
                i_ideal: 11,
                inl_limit_counts: None,
                deglitch: false,
            },
            adc_bits: 6,
            expected_codes: 62,
        }
    }

    /// A clean staircase through all 64 codes, `per_code` samples each.
    fn staircase(per_code: usize) -> Vec<u64> {
        (0..64u64)
            .flat_map(|c| std::iter::repeat_n(c, per_code))
            .collect()
    }

    fn run(top: &mut BistTop, codes: &[u64]) -> Vec<CodeMeasurement> {
        let mut ms: Vec<CodeMeasurement> = codes.iter().filter_map(|&c| top.tick(c)).collect();
        for _ in 0..BistTop::DRAIN_TICKS {
            ms.extend(top.drain_tick());
        }
        ms
    }

    #[test]
    fn clean_sweep_passes() {
        let mut top = BistTop::new(config());
        let ms = run(&mut top, &staircase(11));
        assert_eq!(ms.len(), 62);
        assert!(ms.iter().all(|m| m.dnl_verdict == WindowVerdict::Pass));
        let report = top.report();
        assert!(report.pass(), "{report}");
        assert!(report.complete);
        assert!(report.functional_checks > 0);
        assert_ne!(report.signature.value(), 0);
    }

    #[test]
    fn signature_is_deterministic_and_sensitive() {
        let mut a = BistTop::new(config());
        let mut b = BistTop::new(config());
        run(&mut a, &staircase(11));
        run(&mut b, &staircase(11));
        assert_eq!(a.report().signature, b.report().signature);

        // One code slightly wider: same pass verdicts, different
        // signature — the signature carries the fine measurement data.
        let mut skewed = staircase(11);
        let insert_at = skewed.iter().position(|&c| c == 30).expect("code 30");
        skewed.insert(insert_at, 29);
        let mut c = BistTop::new(config());
        run(&mut c, &skewed);
        assert!(c.report().pass());
        assert_ne!(c.report().signature, a.report().signature);
    }

    #[test]
    fn wide_counter_signature_does_not_alias() {
        // Regression: the old compactor masked counts to 14 bits, so
        // widths differing by a multiple of 2^14 compacted identically.
        let lsb = LsbProcessorConfig {
            counter_bits: 15,
            i_min: 1,
            i_max: 1 << 15,
            i_ideal: 10,
            inl_limit_counts: None,
            deglitch: false,
        };
        let cfg = BistTopConfig {
            lsb,
            adc_bits: 6,
            expected_codes: 1,
        };
        let sig_for = |width: u64| {
            let mut top = BistTop::new(cfg);
            // One complete code of the given width between two edges.
            for _ in 0..3 {
                top.tick(0);
            }
            for _ in 0..width {
                top.tick(1);
            }
            for _ in 0..4 {
                top.tick(0);
            }
            for _ in 0..BistTop::DRAIN_TICKS {
                top.drain_tick();
            }
            let report = top.report();
            assert_eq!(report.codes_measured, 1);
            report.signature.value()
        };
        // 16386 ≡ 2 (mod 2^14): the old compactor could not tell these
        // apart.
        assert_ne!(sig_for(16386), sig_for(2));
        assert_eq!(BistTop::misr_width(15), 18);
    }

    #[test]
    fn surplus_transitions_break_completeness() {
        // A glitch splitting one code adds a 63rd measurement: under
        // the old `>=` rule this still read "complete".
        let mut codes = staircase(11);
        let pos = codes.iter().position(|&c| c == 20).expect("code 20");
        // Toggle the LSB mid-code: 20 → 21 → 20 splits the code-20 run.
        codes.insert(pos + 5, 21);
        codes.insert(pos + 6, 21);
        codes.insert(pos + 7, 21);
        let mut top = BistTop::new(config());
        run(&mut top, &codes);
        let report = top.report();
        assert!(report.codes_measured > 62, "{report}");
        assert!(!report.complete);
        assert!(!report.pass());
    }

    #[test]
    fn stuck_lsb_fails_via_completeness() {
        let mut top = BistTop::new(config());
        let stuck: Vec<u64> = staircase(11).iter().map(|c| c & !1).collect();
        run(&mut top, &stuck);
        let report = top.report();
        assert_eq!(report.codes_measured, 0);
        assert!(!report.complete);
        assert!(!report.pass());
    }

    #[test]
    fn stuck_upper_bit_fails_functionally() {
        let mut top = BistTop::new(config());
        let stuck: Vec<u64> = staircase(11).iter().map(|c| c & !(1 << 4)).collect();
        run(&mut top, &stuck);
        let report = top.report();
        assert!(report.functional_mismatches > 0);
        assert!(!report.pass());
    }

    #[test]
    fn wide_code_fails_dnl() {
        let mut codes = staircase(11);
        // Stretch code 20 to 30 samples (> i_max 16).
        let pos = codes.iter().position(|&c| c == 20).expect("code 20");
        for _ in 0..19 {
            codes.insert(pos, 20);
        }
        let mut top = BistTop::new(config());
        run(&mut top, &codes);
        let report = top.report();
        assert!(report.dnl_failures >= 1);
        assert!(!report.pass());
    }

    #[test]
    fn deglitched_upper_checker_ignores_transition_bounce() {
        // A bouncing LSB at a code boundary: the raw upper checker sees
        // repeated falling edges with non-incrementing upper words and
        // fires spurious mismatches; the median-filtered path is clean.
        let mut codes = staircase(11);
        let pos = codes.iter().position(|&c| c == 33).expect("code 33");
        // Bounce 32 ↔ 33 right at the boundary.
        codes.insert(pos, 33);
        codes.insert(pos + 1, 32);
        let raw_cfg = config();
        let mut deglitched_cfg = raw_cfg;
        deglitched_cfg.lsb.deglitch = true;
        let mut raw = BistTop::new(raw_cfg);
        run(&mut raw, &codes);
        let mut filtered = BistTop::new(deglitched_cfg);
        run(&mut filtered, &codes);
        assert!(raw.report().functional_mismatches > 0, "{}", raw.report());
        assert_eq!(
            filtered.report().functional_mismatches,
            0,
            "{}",
            filtered.report()
        );
        assert!(filtered.report().pass());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut top = BistTop::new(config());
        run(&mut top, &staircase(11));
        top.reset();
        let report = top.report();
        assert_eq!(report.codes_measured, 0);
        assert_eq!(report.signature.value(), 0);
        // In-place reset is indistinguishable from a fresh build (and
        // a reset top re-runs a sweep to the identical signature).
        assert_eq!(top, BistTop::new(config()));
        run(&mut top, &staircase(11));
        let mut fresh = BistTop::new(config());
        run(&mut fresh, &staircase(11));
        assert_eq!(top.report(), fresh.report());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_panics() {
        let mut top = BistTop::new(config());
        top.tick(64);
    }

    #[test]
    #[should_panic(expected = "at least one upper bit")]
    fn one_bit_adc_panics() {
        let mut cfg = config();
        cfg.adc_bits = 1;
        BistTop::new(cfg);
    }

    #[test]
    fn display_includes_verdict() {
        let top = BistTop::new(config());
        assert!(top.to_string().contains("FAIL")); // incomplete at start
    }
}
