//! The complete on-chip BIST top level — the paper's "ultimate goal …
//! a complete BIST solution where no expensive mixed-signal tester is
//! needed".
//!
//! [`BistTop`] wires the Figure-4 LSB processor and the Figure-2
//! upper-bit checker to a single clock, latches sticky pass/fail bits,
//! counts transitions for the completeness check, and compacts every
//! code measurement into a MISR signature so the *entire* test result
//! can be read out through one register scan — a single test pin, as §5
//! promises.

use crate::datapath::{CodeMeasurement, LsbProcessor, LsbProcessorConfig, UpperBitChecker};
use crate::logic::Bus;
use crate::registers::Misr;
use std::fmt;

/// Configuration of the full BIST top level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistTopConfig {
    /// LSB-processing block configuration.
    pub lsb: LsbProcessorConfig,
    /// Converter resolution in bits (upper word is `adc_bits − 1` wide).
    pub adc_bits: u32,
    /// Number of complete code measurements a healthy sweep produces
    /// (`2ⁿ − 2` for a full ramp at bit 0).
    pub expected_codes: u64,
}

/// The sticky result register of a finished self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistReport {
    /// Codes measured.
    pub codes_measured: u64,
    /// DNL window failures.
    pub dnl_failures: u64,
    /// INL window failures.
    pub inl_failures: u64,
    /// Upper-bit mismatches.
    pub functional_mismatches: u64,
    /// Whether the sweep produced the expected number of measurements.
    pub complete: bool,
    /// The MISR signature over all measurements (count ‖ verdict bits).
    pub signature: Bus,
}

impl BistReport {
    /// The single pass/fail bit the chip would expose.
    pub fn pass(&self) -> bool {
        self.complete
            && self.dnl_failures == 0
            && self.inl_failures == 0
            && self.functional_mismatches == 0
    }
}

impl fmt::Display for BistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} codes, {} DNL / {} INL / {} functional failures, signature {:b}",
            if self.pass() { "PASS" } else { "FAIL" },
            self.codes_measured,
            self.dnl_failures,
            self.inl_failures,
            self.functional_mismatches,
            self.signature
        )
    }
}

/// The full on-chip BIST: tick once per ADC sample with the output code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistTop {
    config: BistTopConfig,
    lsb: LsbProcessor,
    upper: UpperBitChecker,
    misr: Misr,
    functional_mismatches: u64,
}

impl BistTop {
    /// 16-bit MISR polynomial (x¹⁶+x¹⁵+x¹³+x⁴+1-ish taps — any dense
    /// polynomial works for compaction).
    const MISR_TAPS: u64 = 0b1010_0000_0001_1001;

    /// Builds the top level.
    ///
    /// # Panics
    ///
    /// Panics if `adc_bits < 2` (there must be at least one upper bit)
    /// or the LSB configuration is invalid.
    pub fn new(config: BistTopConfig) -> Self {
        assert!(config.adc_bits >= 2, "need at least one upper bit");
        BistTop {
            config,
            lsb: LsbProcessor::new(config.lsb),
            upper: UpperBitChecker::new(config.adc_bits - 1),
            misr: Misr::new(16, Self::MISR_TAPS),
            functional_mismatches: 0,
        }
    }

    /// Clocks the BIST with this sample's output code. Returns the
    /// LSB-processor measurement when a code completed.
    ///
    /// # Panics
    ///
    /// Panics if `code` does not fit in `adc_bits`.
    pub fn tick(&mut self, code: u64) -> Option<CodeMeasurement> {
        let word = Bus::new(self.config.adc_bits, code);
        let lsb_bit = word.bit(0);
        let upper = word.slice(self.config.adc_bits - 1, 1);
        if let Some(ok) = self.upper.tick(lsb_bit, upper) {
            if !ok {
                self.functional_mismatches += 1;
            }
        }
        let m = self.lsb.tick(lsb_bit);
        if let Some(m) = &m {
            // Compact count and verdicts into the signature: the count
            // in the low bits, verdict flags above.
            let verdict_bits =
                (u64::from(!m.dnl_verdict.is_pass()) << 14) | (u64::from(!m.inl_pass) << 15);
            self.misr.tick((m.count & 0x3FFF) | verdict_bits);
        }
        m
    }

    /// The report register as it stands now (read at end of sweep).
    pub fn report(&self) -> BistReport {
        BistReport {
            codes_measured: self.lsb.measurements(),
            dnl_failures: self.lsb.dnl_failures(),
            inl_failures: self.lsb.inl_failures(),
            functional_mismatches: self.functional_mismatches,
            complete: self.lsb.measurements() >= self.config.expected_codes,
            signature: self.misr.signature(),
        }
    }

    /// Resets all state for a new self-test run.
    pub fn reset(&mut self) {
        *self = BistTop::new(self.config);
    }
}

impl fmt::Display for BistTop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BIST top: {}", self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window_compare::WindowVerdict;

    fn config() -> BistTopConfig {
        BistTopConfig {
            lsb: LsbProcessorConfig {
                counter_bits: 6,
                i_min: 6,
                i_max: 16,
                i_ideal: 11,
                inl_limit_counts: None,
                deglitch: false,
            },
            adc_bits: 6,
            expected_codes: 62,
        }
    }

    /// A clean staircase through all 64 codes, `per_code` samples each.
    fn staircase(per_code: usize) -> Vec<u64> {
        (0..64u64)
            .flat_map(|c| std::iter::repeat_n(c, per_code))
            .collect()
    }

    fn run(top: &mut BistTop, codes: &[u64]) -> Vec<CodeMeasurement> {
        codes.iter().filter_map(|&c| top.tick(c)).collect()
    }

    #[test]
    fn clean_sweep_passes() {
        let mut top = BistTop::new(config());
        let ms = run(&mut top, &staircase(11));
        assert_eq!(ms.len(), 62);
        assert!(ms.iter().all(|m| m.dnl_verdict == WindowVerdict::Pass));
        let report = top.report();
        assert!(report.pass(), "{report}");
        assert!(report.complete);
        assert_ne!(report.signature.value(), 0);
    }

    #[test]
    fn signature_is_deterministic_and_sensitive() {
        let mut a = BistTop::new(config());
        let mut b = BistTop::new(config());
        run(&mut a, &staircase(11));
        run(&mut b, &staircase(11));
        assert_eq!(a.report().signature, b.report().signature);

        // One code slightly wider: same pass verdicts, different
        // signature — the signature carries the fine measurement data.
        let mut skewed = staircase(11);
        let insert_at = skewed.iter().position(|&c| c == 30).expect("code 30");
        skewed.insert(insert_at, 29);
        let mut c = BistTop::new(config());
        run(&mut c, &skewed);
        assert!(c.report().pass());
        assert_ne!(c.report().signature, a.report().signature);
    }

    #[test]
    fn stuck_lsb_fails_via_completeness() {
        let mut top = BistTop::new(config());
        let stuck: Vec<u64> = staircase(11).iter().map(|c| c & !1).collect();
        run(&mut top, &stuck);
        let report = top.report();
        assert_eq!(report.codes_measured, 0);
        assert!(!report.complete);
        assert!(!report.pass());
    }

    #[test]
    fn stuck_upper_bit_fails_functionally() {
        let mut top = BistTop::new(config());
        let stuck: Vec<u64> = staircase(11).iter().map(|c| c & !(1 << 4)).collect();
        run(&mut top, &stuck);
        let report = top.report();
        assert!(report.functional_mismatches > 0);
        assert!(!report.pass());
    }

    #[test]
    fn wide_code_fails_dnl() {
        let mut codes = staircase(11);
        // Stretch code 20 to 30 samples (> i_max 16).
        let pos = codes.iter().position(|&c| c == 20).expect("code 20");
        for _ in 0..19 {
            codes.insert(pos, 20);
        }
        let mut top = BistTop::new(config());
        run(&mut top, &codes);
        let report = top.report();
        assert!(report.dnl_failures >= 1);
        assert!(!report.pass());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut top = BistTop::new(config());
        run(&mut top, &staircase(11));
        top.reset();
        let report = top.report();
        assert_eq!(report.codes_measured, 0);
        assert_eq!(report.signature.value(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_panics() {
        let mut top = BistTop::new(config());
        top.tick(64);
    }

    #[test]
    #[should_panic(expected = "at least one upper bit")]
    fn one_bit_adc_panics() {
        let mut cfg = config();
        cfg.adc_bits = 1;
        BistTop::new(cfg);
    }

    #[test]
    fn display_includes_verdict() {
        let top = BistTop::new(config());
        assert!(top.to_string().contains("FAIL")); // incomplete at start
    }
}
