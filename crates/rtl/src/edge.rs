//! Input synchroniser and edge detector for the monitored LSB.
//!
//! Figure 4's "LSB edge detect": the raw LSB is registered (two-stage
//! synchroniser, as any signal crossing into the BIST clock domain would
//! be) and a transition on the synchronised bit produces a one-cycle
//! pulse. Rising and falling edges are reported separately because the
//! upper-bit functional counter clocks only on the falling edge ("clocked
//! if q goes from 1 to 0").

use crate::registers::Dff;
use std::fmt;

/// Edge pulses produced in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Edges {
    /// Synchronised level after the synchroniser flops.
    pub level: bool,
    /// High for one cycle on a 0→1 transition.
    pub rising: bool,
    /// High for one cycle on a 1→0 transition.
    pub falling: bool,
}

impl Edges {
    /// Whether any transition happened this cycle.
    pub fn any(&self) -> bool {
        self.rising || self.falling
    }
}

/// Two-flop synchroniser plus transition detector.
///
/// A 2-bit priming counter holds the edge outputs low for the first
/// three cycles while the input level propagates through the zeroed
/// synchroniser flops — the hardware reset-release protocol. Without it
/// a stream that starts high would fire a phantom 0→1 edge against the
/// power-on state, which the behavioural monitor (which adopts the
/// first sample as its initial level) never sees.
///
/// # Examples
///
/// ```
/// use bist_rtl::edge::EdgeDetector;
///
/// let mut ed = EdgeDetector::new();
/// // Latency: two synchroniser stages before the edge shows.
/// let outs: Vec<bool> = [false, true, true, true]
///     .iter()
///     .map(|&b| ed.tick(b).rising)
///     .collect();
/// assert_eq!(outs, vec![false, false, false, true]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeDetector {
    sync0: Dff,
    sync1: Dff,
    prev: Dff,
    primed: u8,
}

impl EdgeDetector {
    /// A detector with all stages cleared.
    pub fn new() -> Self {
        EdgeDetector::default()
    }

    /// Clocks the detector with the raw input bit.
    pub fn tick(&mut self, raw: bool) -> Edges {
        // Chain: raw → sync0 → sync1 → prev; compare sync1 vs prev.
        let s0_old = self.sync0.tick(raw, true);
        let s1_old = self.sync1.tick(s0_old, true);
        let prev_old = self.prev.tick(s1_old, true);
        let level = s1_old;
        if self.primed < 3 {
            // Reset window: the first input sample only reaches the
            // `level` output on the third tick; until `prev` holds a
            // real sample no transition can be trusted.
            self.primed += 1;
            return Edges {
                level,
                rising: false,
                falling: false,
            };
        }
        Edges {
            level,
            rising: level && !prev_old,
            falling: !level && prev_old,
        }
    }

    /// Clears all stages and re-arms the priming window.
    pub fn clear(&mut self) {
        self.sync0.clear();
        self.sync1.clear();
        self.prev.clear();
        self.primed = 0;
    }
}

impl fmt::Display for EdgeDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge detector (level {})", u8::from(self.sync1.q()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(bits: &[bool]) -> Vec<Edges> {
        let mut ed = EdgeDetector::new();
        bits.iter().map(|&b| ed.tick(b)).collect()
    }

    #[test]
    fn detects_single_rising_edge_once() {
        let out = run(&[false, false, true, true, true, true]);
        let rises: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, e)| e.rising)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rises, vec![4]); // input edge at 2 + 2 cycles latency
        assert!(out.iter().all(|e| !e.falling));
    }

    #[test]
    fn detects_falling_edge() {
        let out = run(&[true, true, true, false, false, false]);
        let falls: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, e)| e.falling)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(falls, vec![5]);
    }

    #[test]
    fn square_wave_alternates_edges() {
        let bits: Vec<bool> = (0..20).map(|i| (i / 2) % 2 == 1).collect();
        let out = run(&bits);
        let total_edges = out.iter().filter(|e| e.any()).count();
        // Input has 9 transitions within the window; latency trims the tail.
        assert!((8..=9).contains(&total_edges), "{total_edges}");
        // Rising and falling strictly alternate.
        let kinds: Vec<bool> = out.iter().filter(|e| e.any()).map(|e| e.rising).collect();
        for w in kinds.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn level_follows_input_with_latency() {
        let out = run(&[true, true, true, true]);
        assert!(!out[0].level);
        assert!(!out[1].level);
        assert!(out[2].level);
    }

    #[test]
    fn clear_resets_state() {
        let mut ed = EdgeDetector::new();
        ed.tick(true);
        ed.tick(true);
        ed.clear();
        let e = ed.tick(false);
        assert!(!e.any());
    }

    #[test]
    fn stream_starting_high_fires_no_phantom_edge() {
        // Power-on: flops hold 0 but the input is already 1. The old
        // detector reported a 0→1 edge that never happened on the wire.
        let out = run(&[true, true, true, true, true]);
        assert!(out.iter().all(|e| !e.any()), "{out:?}");
        // A real transition after the constant prefix is still seen.
        let out = run(&[true, true, true, false, false, false]);
        assert_eq!(out.iter().filter(|e| e.falling).count(), 1);
        assert!(out.iter().all(|e| !e.rising));
    }

    #[test]
    fn earliest_real_edge_survives_priming() {
        // Transition at input index 1 surfaces at tick 3, the first
        // tick after the priming window.
        let out = run(&[false, true, true, true]);
        let rises: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, e)| e.rising)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rises, vec![3]);
    }

    #[test]
    fn clear_rearms_priming() {
        let mut ed = EdgeDetector::new();
        for _ in 0..6 {
            ed.tick(false);
        }
        ed.clear();
        // Constant-high input after clear: no phantom edge again.
        let any = (0..5).any(|_| ed.tick(true).any());
        assert!(!any);
    }

    #[test]
    fn edges_any() {
        assert!(Edges {
            level: true,
            rising: true,
            falling: false
        }
        .any());
        assert!(!Edges::default().any());
    }
}
