//! # bist-rtl
//!
//! Cycle-accurate digital-hardware models of the on-chip BIST circuitry
//! from R. de Vries et al., *Built-In Self-Test Methodology for A/D
//! Converters* (ED&TC 1997).
//!
//! The paper argues its method needs only "simple digital functions" on
//! chip; this crate makes that concrete by building those functions at
//! register-transfer level and costing them in gate equivalents:
//!
//! * [`logic`] / [`sim`] — width-checked buses, clock, ASCII waveform
//!   tracer.
//! * [`registers`] — DFF, shift register, LFSR, MISR (signature
//!   compaction).
//! * [`counter`] — the n-bit saturating sample counter (the paper's cost
//!   knob, swept 4–7 bits).
//! * [`edge`] / [`deglitch`] — LSB synchroniser/edge detector and the §3
//!   majority-vote toggle filter.
//! * [`window_compare`] / [`accumulator`] — the DNL window check
//!   (Eqs. 3–4) and on-chip INL accumulation.
//! * [`datapath`] — the full Figure-4 LSB processor and Figure-2
//!   upper-bit functional checker.
//! * [`dyn_top`] — the dynamic-test top level: a fixed-point Goertzel
//!   bank plus exact integer power accumulators for the §2 THD /
//!   noise-power parameters, one code per tick.
//! * [`area`] — gate-equivalent area model feeding the Figure-1
//!   trade-off experiment.
//!
//! ## Example
//!
//! ```
//! use bist_rtl::datapath::{LsbProcessor, LsbProcessorConfig};
//!
//! let mut bist = LsbProcessor::new(LsbProcessorConfig {
//!     counter_bits: 4,
//!     i_min: 6,
//!     i_max: 15,
//!     i_ideal: 11,
//!     inl_limit_counts: None,
//!     deglitch: false,
//! });
//! // Feed an LSB stream: 11-sample runs are in-window codes.
//! let mut results = Vec::new();
//! for i in 0..110 {
//!     if let Some(m) = bist.tick((i / 11) % 2 == 1) {
//!         results.push(m);
//!     }
//! }
//! assert!(results.iter().all(|m| m.dnl_verdict.is_pass()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulator;
pub mod area;
pub mod counter;
pub mod datapath;
pub mod deglitch;
pub mod dyn_top;
pub mod edge;
pub mod logic;
pub mod registers;
pub mod sim;
pub mod top;
pub mod window_compare;

pub use counter::Counter;
pub use datapath::{CodeMeasurement, LsbProcessor, LsbProcessorConfig, UpperBitChecker};
pub use dyn_top::{DynBistReport, DynBistTop, DynBistTopConfig, RegisterOverflowError};
pub use logic::Bus;
pub use top::{BistReport, BistTop, BistTopConfig};
pub use window_compare::{WindowComparator, WindowVerdict};
