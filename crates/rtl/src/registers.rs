//! Sequential primitives: flip-flops, shift registers, LFSR and MISR.
//!
//! The LFSR/MISR pair is classic logic-BIST furniture: an LFSR can serve
//! as a cheap on-chip pattern source and a MISR compacts a response
//! stream into a signature — the natural on-chip back-end when even the
//! pass/fail limits of the LSB monitor are to be checked off-chip from a
//! single signature read.

use crate::logic::Bus;
use std::fmt;

/// A D flip-flop with enable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dff {
    q: bool,
}

impl Dff {
    /// A flip-flop initialised to 0.
    pub fn new() -> Self {
        Dff::default()
    }

    /// Clocks the flip-flop: captures `d` when `enable`, returns the
    /// *previous* output (the registered value visible during this
    /// cycle).
    pub fn tick(&mut self, d: bool, enable: bool) -> bool {
        let old = self.q;
        if enable {
            self.q = d;
        }
        old
    }

    /// The current stored value.
    pub fn q(&self) -> bool {
        self.q
    }

    /// Asynchronous clear.
    pub fn clear(&mut self) {
        self.q = false;
    }
}

/// A serial-in shift register of fixed length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftRegister {
    bits: Vec<bool>,
}

impl ShiftRegister {
    /// A register of `len` zeroed stages.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "length must be non-zero");
        ShiftRegister {
            bits: vec![false; len],
        }
    }

    /// Shifts `d` in at stage 0, returns the bit shifted out of the last
    /// stage.
    pub fn tick(&mut self, d: bool) -> bool {
        let out = *self.bits.last().expect("len > 0");
        for i in (1..self.bits.len()).rev() {
            self.bits[i] = self.bits[i - 1];
        }
        self.bits[0] = d;
        out
    }

    /// The current stage contents (stage 0 first).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the register is empty (never: kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Clears all stages.
    pub fn clear(&mut self) {
        self.bits.fill(false);
    }
}

/// A Fibonacci linear-feedback shift register.
///
/// `taps` is a bitmask of feedback taps (bit i set ⇒ stage i feeds the
/// XOR). With a maximal-length polynomial the sequence period is
/// `2^width − 1`.
///
/// # Examples
///
/// ```
/// use bist_rtl::registers::Lfsr;
///
/// // x⁴ + x³ + 1 is maximal for 4 bits: taps at stages 3 and 2.
/// let mut lfsr = Lfsr::new(4, 0b1100, 0b0001);
/// let mut seen = std::collections::HashSet::new();
/// for _ in 0..15 {
///     seen.insert(lfsr.tick().value());
/// }
/// assert_eq!(seen.len(), 15); // full period, all non-zero states
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr {
    state: Bus,
    taps: u64,
}

impl Lfsr {
    /// Creates an LFSR of `width` bits with feedback `taps` and a
    /// non-zero `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero (the LFSR would lock up), if `taps` is
    /// zero, or if either does not fit in `width` bits.
    pub fn new(width: u32, taps: u64, seed: u64) -> Self {
        assert!(seed != 0, "seed must be non-zero");
        assert!(taps != 0, "taps must be non-zero");
        let state = Bus::new(width, seed);
        let _check = Bus::new(width, taps);
        Lfsr { state, taps }
    }

    /// Advances one cycle and returns the new state.
    pub fn tick(&mut self) -> Bus {
        let fb = ((self.state.value() & self.taps).count_ones() & 1) as u64;
        let next = (self.state.value() << 1 | fb) & self.state.max_value();
        self.state = Bus::truncate(self.state.width(), next);
        self.state
    }

    /// The current state.
    pub fn state(&self) -> Bus {
        self.state
    }
}

/// A multiple-input signature register (MISR) compacting a word stream.
///
/// Standard type-2 MISR: the state is shifted as an LFSR and the input
/// word is XOR-ed in each cycle. Two streams differing anywhere are very
/// likely to produce different signatures (aliasing probability
/// ~`2^-width`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Misr {
    state: Bus,
    taps: u64,
}

impl Misr {
    /// Creates a MISR of `width` bits with feedback `taps`, state zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is zero or does not fit in `width` bits.
    pub fn new(width: u32, taps: u64) -> Self {
        assert!(taps != 0, "taps must be non-zero");
        let _check = Bus::new(width, taps);
        Misr {
            state: Bus::zero(width),
            taps,
        }
    }

    /// Absorbs one input word (truncated to the MISR width).
    pub fn tick(&mut self, input: u64) -> Bus {
        let fb = ((self.state.value() & self.taps).count_ones() & 1) as u64;
        let shifted = (self.state.value() << 1 | fb) & self.state.max_value();
        self.state = Bus::truncate(self.state.width(), shifted ^ input);
        self.state
    }

    /// The current signature.
    pub fn signature(&self) -> Bus {
        self.state
    }

    /// Resets the signature to zero.
    pub fn clear(&mut self) {
        self.state = Bus::zero(self.state.width());
    }
}

impl fmt::Display for Misr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MISR sig {:b}", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dff_registers_with_enable() {
        let mut ff = Dff::new();
        assert!(!ff.tick(true, true)); // old value was 0
        assert!(ff.q());
        assert!(ff.tick(false, false)); // hold: returns 1, keeps 1
        assert!(ff.q());
        ff.clear();
        assert!(!ff.q());
    }

    #[test]
    fn shift_register_delays_by_len() {
        let mut sr = ShiftRegister::new(3);
        let input = [true, false, true, true, false];
        let mut out = Vec::new();
        for &b in &input {
            out.push(sr.tick(b));
        }
        // First 3 outputs are the zero reset state, then input delayed.
        assert_eq!(out, vec![false, false, false, true, false]);
        assert_eq!(sr.len(), 3);
        assert!(!sr.is_empty());
    }

    #[test]
    fn shift_register_clear() {
        let mut sr = ShiftRegister::new(2);
        sr.tick(true);
        sr.clear();
        assert_eq!(sr.bits(), &[false, false]);
    }

    #[test]
    #[should_panic(expected = "length must be non-zero")]
    fn zero_len_shift_register_panics() {
        ShiftRegister::new(0);
    }

    #[test]
    fn lfsr_maximal_period() {
        // x^6 + x^5 + 1: taps at stages 5 and 4 → period 63 (the
        // paper's 6-bit world).
        let mut lfsr = Lfsr::new(6, 0b110000, 1);
        let start = lfsr.state().value();
        let mut period = 0;
        loop {
            lfsr.tick();
            period += 1;
            if lfsr.state().value() == start {
                break;
            }
            assert!(period <= 64, "no repeat found");
        }
        assert_eq!(period, 63);
    }

    #[test]
    fn lfsr_never_reaches_zero() {
        let mut lfsr = Lfsr::new(4, 0b1100, 0b1000);
        for _ in 0..100 {
            assert_ne!(lfsr.tick().value(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "seed must be non-zero")]
    fn lfsr_zero_seed_panics() {
        Lfsr::new(4, 0b1100, 0);
    }

    #[test]
    fn misr_distinguishes_streams() {
        let mut a = Misr::new(16, 0b1011_0100_0000_0001);
        let mut b = Misr::new(16, 0b1011_0100_0000_0001);
        let stream: Vec<u64> = (0..100).map(|i| (i * 37) % 64).collect();
        for &w in &stream {
            a.tick(w);
            b.tick(w);
        }
        assert_eq!(a.signature(), b.signature());
        // Flip one word in the stream: signatures diverge.
        b.clear();
        a.clear();
        for (i, &w) in stream.iter().enumerate() {
            a.tick(w);
            b.tick(if i == 50 { w ^ 1 } else { w });
        }
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn misr_clear_resets() {
        let mut m = Misr::new(8, 0b1001_0001);
        m.tick(0xFF);
        assert_ne!(m.signature().value(), 0);
        m.clear();
        assert_eq!(m.signature().value(), 0);
    }

    #[test]
    fn misr_display() {
        let m = Misr::new(4, 0b1001);
        assert!(m.to_string().contains("MISR"));
    }
}
