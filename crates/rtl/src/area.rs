//! Gate-equivalent area model for the on-chip test circuitry.
//!
//! Figure 1 of the paper frames the whole design space: the size of the
//! test circuitry trades against accuracy (type I/II errors), cost and
//! the fault sensitivity of the test logic itself. This model assigns
//! NAND2-equivalent gate counts to each datapath block so the
//! `counter_tradeoff` experiment (E11) can plot area against measured
//! accuracy for counter sizes 3–10.
//!
//! The per-cell weights are the usual standard-cell equivalences
//! (DFF ≈ 6 GE, full adder ≈ 5 GE, 2-input gate = 1 GE); absolute values
//! are indicative, relative growth with counter width is what matters.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// NAND2-equivalent gate count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct GateCount(pub u64);

impl Add for GateCount {
    type Output = GateCount;
    fn add(self, rhs: GateCount) -> GateCount {
        GateCount(self.0 + rhs.0)
    }
}

impl Sum for GateCount {
    fn sum<I: Iterator<Item = GateCount>>(iter: I) -> GateCount {
        GateCount(iter.map(|g| g.0).sum())
    }
}

impl fmt::Display for GateCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} GE", self.0)
    }
}

/// Gate equivalents per standard cell.
const GE_DFF: u64 = 6;
const GE_FULL_ADDER: u64 = 5;
const GE_HALF_ADDER: u64 = 3;
const GE_GATE2: u64 = 1;
const GE_MUX2: u64 = 3;

/// Area of an `n`-bit up-counter with clear and saturation.
pub fn counter(bits: u32) -> GateCount {
    // Per bit: DFF + half adder + clear/saturate gating.
    GateCount(bits as u64 * (GE_DFF + GE_HALF_ADDER + 2 * GE_GATE2) + 4 * GE_GATE2)
}

/// Area of an `n`-bit magnitude comparator against a programmed constant.
pub fn comparator(bits: u32) -> GateCount {
    // ~2 GE per bit for a ripple magnitude compare.
    GateCount(bits as u64 * 2 * GE_GATE2)
}

/// Area of the window comparator (two magnitude comparisons + verdict
/// logic).
pub fn window_comparator(bits: u32) -> GateCount {
    comparator(bits) + comparator(bits) + GateCount(3 * GE_GATE2)
}

/// Area of the edge detector (2-FF synchroniser + history FF + XOR).
pub fn edge_detector() -> GateCount {
    GateCount(3 * GE_DFF + 2 * GE_GATE2)
}

/// Area of the 3-tap majority deglitcher.
pub fn deglitcher() -> GateCount {
    GateCount(3 * GE_DFF + 4 * GE_GATE2)
}

/// Area of a `bits`-wide signed saturating accumulator.
pub fn accumulator(bits: u32) -> GateCount {
    GateCount(bits as u64 * (GE_DFF + GE_FULL_ADDER + GE_MUX2) + 6 * GE_GATE2)
}

/// Area of an `n`-bit expected-value counter plus equality comparator
/// (the Figure-2 upper-bit checker, excluding the shared edge detector).
pub fn upper_bit_checker(bits: u32) -> GateCount {
    counter(bits) + GateCount(bits as u64 * GE_GATE2 + 2 * GE_DFF * bits as u64)
}

/// Itemised area of the full Figure-4 LSB-processing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsbProcessorArea {
    /// Sample counter.
    pub counter: GateCount,
    /// DNL window comparator.
    pub dnl_window: GateCount,
    /// INL accumulator.
    pub inl_accumulator: GateCount,
    /// INL window comparator.
    pub inl_window: GateCount,
    /// Edge detector.
    pub edge: GateCount,
    /// Deglitch filter.
    pub deglitch: GateCount,
    /// Control/verdict latches.
    pub control: GateCount,
}

impl LsbProcessorArea {
    /// Computes the area for a given counter width (the INL accumulator
    /// is sized `counter_bits + 4` to absorb accumulation swing).
    pub fn for_counter_bits(counter_bits: u32) -> Self {
        let inl_bits = counter_bits + 4;
        LsbProcessorArea {
            counter: counter(counter_bits),
            dnl_window: window_comparator(counter_bits),
            inl_accumulator: accumulator(inl_bits),
            inl_window: window_comparator(inl_bits),
            edge: edge_detector(),
            deglitch: deglitcher(),
            control: GateCount(2 * GE_DFF + 6 * GE_GATE2),
        }
    }

    /// Total gate count.
    pub fn total(&self) -> GateCount {
        self.counter
            + self.dnl_window
            + self.inl_accumulator
            + self.inl_window
            + self.edge
            + self.deglitch
            + self.control
    }
}

impl fmt::Display for LsbProcessorArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LSB processor: {} (counter {}, DNL cmp {}, INL acc {}, INL cmp {}, edge {}, deglitch {}, ctl {})",
            self.total(),
            self.counter,
            self.dnl_window,
            self.inl_accumulator,
            self.inl_window,
            self.edge,
            self.deglitch,
            self.control
        )
    }
}

/// Total on-chip BIST area for an `n`-bit converter monitored at bit 0
/// with the given counter width: LSB processor + upper-bit checker for
/// the remaining `n−1` bits.
pub fn full_bist(adc_bits: u32, counter_bits: u32) -> GateCount {
    LsbProcessorArea::for_counter_bits(counter_bits).total()
        + upper_bit_checker(adc_bits.saturating_sub(1))
        + edge_detector()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_area_scales_linearly() {
        let a4 = counter(4).0;
        let a8 = counter(8).0;
        // Fixed overhead + linear term.
        assert!(a8 > a4);
        assert_eq!(a8 - a4, 4 * (GE_DFF + GE_HALF_ADDER + 2 * GE_GATE2));
    }

    #[test]
    fn one_more_counter_bit_is_cheap() {
        // The paper's headline trade-off: each extra counter bit halves
        // the type-I error at a small area cost — the counter bit plus
        // its share of the comparators and the INL accumulator comes to
        // roughly 12 % of the block, well worth a 2× accuracy gain.
        let base = LsbProcessorArea::for_counter_bits(4).total().0;
        let plus = LsbProcessorArea::for_counter_bits(5).total().0;
        let increment = plus - base;
        assert!(increment * 5 < base, "increment {increment} vs base {base}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let a = LsbProcessorArea::for_counter_bits(6);
        let manual = a.counter
            + a.dnl_window
            + a.inl_accumulator
            + a.inl_window
            + a.edge
            + a.deglitch
            + a.control;
        assert_eq!(a.total(), manual);
    }

    #[test]
    fn full_bist_is_small() {
        // Sanity: the whole 6-bit BIST with a 7-bit counter is a few
        // hundred gate equivalents — "does not require too much chip
        // area" (§2).
        let total = full_bist(6, 7).0;
        assert!(total < 600, "total {total}");
        assert!(total > 100, "total {total}");
    }

    #[test]
    fn gate_count_arithmetic() {
        let s: GateCount = [GateCount(1), GateCount(2), GateCount(3)].into_iter().sum();
        assert_eq!(s, GateCount(6));
        assert_eq!((GateCount(4) + GateCount(5)).to_string(), "9 GE");
    }

    #[test]
    fn display_itemises() {
        let a = LsbProcessorArea::for_counter_bits(4);
        let s = a.to_string();
        assert!(s.contains("counter") && s.contains("INL"));
    }
}
