//! Minimal synchronous-simulation scaffolding: a cycle counter, a
//! clocked-block convention and a text waveform tracer.
//!
//! Every sequential block in this crate follows the same convention: a
//! `tick(...)` method receives the cycle's input values, updates internal
//! state as a flip-flop would on the active clock edge, and returns the
//! *registered* outputs. Combinational helpers are plain `&self` methods.
//! Composition order inside a parent block therefore defines the netlist
//! topology explicitly — no global scheduler is needed for these shallow
//! datapaths, which keeps the simulation deterministic and fast.

use std::collections::BTreeMap;
use std::fmt;

/// A free-running cycle counter standing in for the sample clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Clock {
    cycle: u64,
}

impl Clock {
    /// A clock at cycle zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances one cycle and returns the new cycle number.
    pub fn advance(&mut self) -> u64 {
        self.cycle += 1;
        self.cycle
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.cycle)
    }
}

/// Records named digital signals per cycle and renders them as an ASCII
/// waveform — a debugging aid for datapath bring-up and the `rtl_trace`
/// example.
///
/// # Examples
///
/// ```
/// use bist_rtl::sim::Trace;
///
/// let mut t = Trace::new();
/// for cycle in 0..4 {
///     t.sample(cycle, "lsb", (cycle % 2) as u64);
/// }
/// let wave = t.render();
/// assert!(wave.contains("lsb"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// signal name → (cycle, value) samples, kept sorted by insertion.
    signals: BTreeMap<String, Vec<(u64, u64)>>,
    last_cycle: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records `value` for `signal` at `cycle`.
    pub fn sample(&mut self, cycle: u64, signal: &str, value: u64) {
        self.signals
            .entry(signal.to_owned())
            .or_default()
            .push((cycle, value));
        self.last_cycle = self.last_cycle.max(cycle);
    }

    /// Names of all recorded signals (sorted).
    pub fn signal_names(&self) -> Vec<&str> {
        self.signals.keys().map(String::as_str).collect()
    }

    /// The samples of one signal.
    pub fn samples(&self, signal: &str) -> Option<&[(u64, u64)]> {
        self.signals.get(signal).map(Vec::as_slice)
    }

    /// Renders single-bit signals as `▁▔` waveforms and multi-bit
    /// signals as value sequences, one line per signal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.signals.keys().map(|k| k.len()).max().unwrap_or(0);
        for (name, samples) in &self.signals {
            let is_single_bit = samples.iter().all(|&(_, v)| v <= 1);
            let mut line = format!("{name:>width$} ");
            if is_single_bit {
                let mut by_cycle = vec![None; (self.last_cycle + 1) as usize];
                for &(c, v) in samples {
                    by_cycle[c as usize] = Some(v);
                }
                let mut last = 0;
                for v in by_cycle {
                    let v = v.unwrap_or(last);
                    line.push(if v == 1 { '▔' } else { '▁' });
                    last = v;
                }
            } else {
                for &(c, v) in samples {
                    line.push_str(&format!("[{c}]{v} "));
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = Clock::new();
        assert_eq!(c.cycle(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.to_string(), "cycle 2");
    }

    #[test]
    fn trace_records_and_lists() {
        let mut t = Trace::new();
        t.sample(0, "a", 1);
        t.sample(1, "a", 0);
        t.sample(0, "count", 12);
        assert_eq!(t.signal_names(), vec!["a", "count"]);
        assert_eq!(t.samples("a").unwrap(), &[(0, 1), (1, 0)]);
        assert!(t.samples("missing").is_none());
    }

    #[test]
    fn render_bit_waveform() {
        let mut t = Trace::new();
        for c in 0..6 {
            t.sample(c, "clk", c % 2);
        }
        let r = t.render();
        assert!(r.contains("▁▔▁▔▁▔"), "{r}");
    }

    #[test]
    fn render_bus_values() {
        let mut t = Trace::new();
        t.sample(0, "cnt", 5);
        t.sample(1, "cnt", 6);
        let r = t.render();
        assert!(r.contains("[0]5"), "{r}");
        assert!(r.contains("[1]6"), "{r}");
    }

    #[test]
    fn render_holds_last_value_for_gaps() {
        let mut t = Trace::new();
        t.sample(0, "en", 1);
        t.sample(3, "en", 0);
        let r = t.render();
        // Cycles 1-2 hold the previous high level.
        assert!(r.contains("▔▔▔▁"), "{r}");
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(Trace::new().render(), "");
    }
}
