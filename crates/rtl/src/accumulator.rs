//! Signed saturating accumulator for the on-chip INL computation.
//!
//! §2: *"The INL of each transition is determined from the DNL test by
//! successively adding the determined DNL values of each code."* In
//! hardware the DNL of a code, in counter units, is `count − i_ideal`;
//! accumulating those signed residuals across the ramp yields the INL in
//! counter units. The accumulator saturates symmetrically: once the INL
//! bound is blown the exact value no longer matters, only the fail.

use std::fmt;

/// A signed accumulator with symmetric saturation at `±(2^(width−1)−1)`.
///
/// # Examples
///
/// ```
/// use bist_rtl::accumulator::Accumulator;
///
/// let mut acc = Accumulator::new(6); // range ±31
/// acc.add(20);
/// acc.add(20);
/// assert_eq!(acc.value(), 31); // saturated
/// assert!(acc.saturated());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accumulator {
    value: i64,
    limit: i64,
    saturated: bool,
}

impl Accumulator {
    /// A zeroed accumulator of `width` bits (two's complement).
    ///
    /// # Panics
    ///
    /// Panics if `width` is less than 2 or exceeds 63.
    pub fn new(width: u32) -> Self {
        assert!((2..=63).contains(&width), "width must be 2..=63");
        Accumulator {
            value: 0,
            limit: (1i64 << (width - 1)) - 1,
            saturated: false,
        }
    }

    /// Adds a signed residual, saturating at the width limits.
    /// Returns the updated value.
    pub fn add(&mut self, delta: i64) -> i64 {
        let next = self.value.saturating_add(delta);
        if next > self.limit {
            self.value = self.limit;
            self.saturated = true;
        } else if next < -self.limit {
            self.value = -self.limit;
            self.saturated = true;
        } else {
            self.value = next;
        }
        self.value
    }

    /// The current accumulated value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// The saturation bound (`+limit`/`−limit`).
    pub fn limit(&self) -> i64 {
        self.limit
    }

    /// Whether saturation has occurred since the last clear.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Clears the value and the saturation flag.
    pub fn clear(&mut self) {
        self.value = 0;
        self.saturated = false;
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.value,
            if self.saturated { " (sat)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_signed() {
        let mut a = Accumulator::new(8);
        assert_eq!(a.add(5), 5);
        assert_eq!(a.add(-8), -3);
        assert_eq!(a.value(), -3);
        assert!(!a.saturated());
    }

    #[test]
    fn saturates_positive_and_negative() {
        let mut a = Accumulator::new(4); // ±7
        a.add(100);
        assert_eq!(a.value(), 7);
        assert!(a.saturated());
        a.clear();
        a.add(-100);
        assert_eq!(a.value(), -7);
        assert!(a.saturated());
    }

    #[test]
    fn stays_saturated_flag_until_clear() {
        let mut a = Accumulator::new(4);
        a.add(100);
        a.add(-3);
        assert!(a.saturated(), "flag is sticky");
        a.clear();
        assert!(!a.saturated());
        assert_eq!(a.value(), 0);
    }

    #[test]
    fn limit_matches_width() {
        assert_eq!(Accumulator::new(6).limit(), 31);
        assert_eq!(Accumulator::new(2).limit(), 1);
    }

    #[test]
    #[should_panic(expected = "width must be 2..=63")]
    fn width_one_panics() {
        Accumulator::new(1);
    }

    #[test]
    fn extreme_delta_no_overflow() {
        let mut a = Accumulator::new(63);
        a.add(i64::MAX);
        a.add(i64::MAX);
        assert_eq!(a.value(), a.limit());
    }

    #[test]
    fn display_shows_saturation() {
        let mut a = Accumulator::new(3);
        a.add(50);
        assert!(a.to_string().contains("sat"));
    }
}
