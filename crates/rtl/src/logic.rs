//! Width-checked digital words.
//!
//! The on-chip datapath works with small fixed-width buses (a 4–7 bit
//! counter is the paper's central cost knob). [`Bus`] carries a value
//! together with its width and enforces the hardware behaviours —
//! wrapping or saturating arithmetic, truncation — that `u64` alone would
//! hide.

use std::fmt;

/// A fixed-width digital word (1..=64 bits).
///
/// # Examples
///
/// ```
/// use bist_rtl::logic::Bus;
///
/// let b = Bus::new(4, 0b1010);
/// assert_eq!(b.bit(1), true);
/// assert_eq!(b.wrapping_add(8).value(), 0b0010); // 4-bit wrap
/// assert_eq!(b.saturating_add(8).value(), 0b1111); // 4-bit saturate
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bus {
    width: u32,
    value: u64,
}

impl Bus {
    /// Creates a bus of `width` bits holding `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or if `value` does not fit.
    pub fn new(width: u32, value: u64) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let b = Bus { width, value: 0 };
        assert!(
            value <= b.max_value(),
            "value {value} does not fit in {width} bits"
        );
        Bus { width, value }
    }

    /// A zeroed bus of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn zero(width: u32) -> Self {
        Bus::new(width, 0)
    }

    /// Creates a bus truncating `value` to `width` bits (hardware bus
    /// assignment semantics).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn truncate(width: u32, value: u64) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        Bus {
            width,
            value: value & mask,
        }
    }

    /// The bus width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The largest representable value, `2^width − 1`.
    pub fn max_value(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Whether the bus holds its maximum value.
    pub fn is_max(&self) -> bool {
        self.value == self.max_value()
    }

    /// Bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range");
        (self.value >> i) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn with_bit(&self, i: u32, b: bool) -> Bus {
        assert!(i < self.width, "bit index {i} out of range");
        let mask = 1u64 << i;
        Bus {
            width: self.width,
            value: if b {
                self.value | mask
            } else {
                self.value & !mask
            },
        }
    }

    /// Wrapping addition within the bus width.
    pub fn wrapping_add(&self, rhs: u64) -> Bus {
        Bus::truncate(self.width, self.value.wrapping_add(rhs))
    }

    /// Saturating addition within the bus width.
    pub fn saturating_add(&self, rhs: u64) -> Bus {
        let sum = self.value.saturating_add(rhs);
        Bus {
            width: self.width,
            value: sum.min(self.max_value()),
        }
    }

    /// The bit slice `[hi:lo]` (inclusive, Verilog-style) as a new bus.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u32, lo: u32) -> Bus {
        assert!(hi >= lo, "hi must be >= lo");
        assert!(hi < self.width, "hi {hi} out of range");
        Bus::truncate(hi - lo + 1, self.value >> lo)
    }
}

impl fmt::Display for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.value)
    }
}

impl fmt::Binary for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.value, width = self.width as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_limits() {
        let b = Bus::new(4, 15);
        assert_eq!(b.max_value(), 15);
        assert!(b.is_max());
        assert_eq!(Bus::zero(7).value(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        Bus::new(3, 8);
    }

    #[test]
    #[should_panic(expected = "width must be 1..=64")]
    fn zero_width_panics() {
        Bus::new(0, 0);
    }

    #[test]
    fn truncate_masks_value() {
        assert_eq!(Bus::truncate(4, 0x1F).value(), 0xF);
        assert_eq!(Bus::truncate(64, u64::MAX).value(), u64::MAX);
    }

    #[test]
    fn bit_access() {
        let b = Bus::new(6, 0b100101);
        assert!(b.bit(0));
        assert!(!b.bit(1));
        assert!(b.bit(2));
        assert!(b.bit(5));
        assert_eq!(b.with_bit(1, true).value(), 0b100111);
        assert_eq!(b.with_bit(0, false).value(), 0b100100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        Bus::new(4, 0).bit(4);
    }

    #[test]
    fn wrapping_add_wraps() {
        let b = Bus::new(4, 14);
        assert_eq!(b.wrapping_add(1).value(), 15);
        assert_eq!(b.wrapping_add(2).value(), 0);
        assert_eq!(b.wrapping_add(18).value(), 0);
    }

    #[test]
    fn saturating_add_sticks_at_max() {
        let b = Bus::new(4, 14);
        assert_eq!(b.saturating_add(1).value(), 15);
        assert_eq!(b.saturating_add(100).value(), 15);
        // 64-bit edge: no overflow panic.
        let big = Bus::new(64, u64::MAX - 1);
        assert_eq!(big.saturating_add(5).value(), u64::MAX);
    }

    #[test]
    fn slice_extracts_fields() {
        let b = Bus::new(8, 0b1011_0110);
        assert_eq!(b.slice(7, 4).value(), 0b1011);
        assert_eq!(b.slice(3, 0).value(), 0b0110);
        assert_eq!(b.slice(4, 4).width(), 1);
        assert_eq!(b.slice(4, 4).value(), 1);
    }

    #[test]
    #[should_panic(expected = "hi must be >= lo")]
    fn slice_reversed_panics() {
        Bus::new(8, 0).slice(2, 3);
    }

    #[test]
    fn formatting() {
        let b = Bus::new(6, 37);
        assert_eq!(b.to_string(), "6'd37");
        assert_eq!(format!("{b:b}"), "100101");
    }
}
