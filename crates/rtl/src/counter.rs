//! The n-bit sample counter — the central cost/accuracy knob of the
//! paper.
//!
//! §2: *"The number of samples that can be taken per code is determined
//! by the size of the counter used in the LSB-processing block. The
//! larger the counter the more samples can be taken per code and the more
//! accurate the test will be."* The counter saturates rather than wraps
//! (a wrapped count would alias a grossly wide code onto a passing one)
//! and raises a sticky overflow flag.

use crate::logic::Bus;
use std::fmt;

/// An n-bit up-counter with enable, synchronous clear and saturation.
///
/// # Examples
///
/// ```
/// use bist_rtl::counter::Counter;
///
/// let mut c = Counter::new(4);
/// for _ in 0..20 {
///     c.tick(true, false);
/// }
/// assert_eq!(c.value().value(), 15); // saturated
/// assert!(c.overflowed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    value: Bus,
    overflow: bool,
}

impl Counter {
    /// A zeroed counter of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn new(width: u32) -> Self {
        Counter {
            value: Bus::zero(width),
            overflow: false,
        }
    }

    /// Clocks the counter.
    ///
    /// `clear` takes priority over `enable` (synchronous clear-on-use:
    /// the LSB monitor clears at each transition, then counts). Returns
    /// the registered (pre-update) value, which is what a downstream
    /// comparator sees during this cycle.
    pub fn tick(&mut self, enable: bool, clear: bool) -> Bus {
        let old = self.value;
        if clear {
            self.value = Bus::zero(self.value.width());
            self.overflow = false;
        } else if enable {
            if self.value.is_max() {
                self.overflow = true;
            } else {
                self.value = self.value.wrapping_add(1);
            }
        }
        old
    }

    /// The current count.
    pub fn value(&self) -> Bus {
        self.value
    }

    /// The counter width in bits.
    pub fn width(&self) -> u32 {
        self.value.width()
    }

    /// Whether the counter has hit its ceiling since the last clear.
    pub fn overflowed(&self) -> bool {
        self.overflow
    }

    /// The maximum representable count, `2^width − 1`.
    pub fn max_count(&self) -> u64 {
        self.value.max_value()
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.value,
            if self.overflow { " (ovf)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_when_enabled() {
        let mut c = Counter::new(4);
        c.tick(true, false);
        c.tick(true, false);
        c.tick(false, false);
        assert_eq!(c.value().value(), 2);
    }

    #[test]
    fn tick_returns_previous_value() {
        let mut c = Counter::new(4);
        assert_eq!(c.tick(true, false).value(), 0);
        assert_eq!(c.tick(true, false).value(), 1);
    }

    #[test]
    fn clear_takes_priority() {
        let mut c = Counter::new(4);
        for _ in 0..5 {
            c.tick(true, false);
        }
        c.tick(true, true);
        assert_eq!(c.value().value(), 0);
    }

    #[test]
    fn saturates_and_flags() {
        let mut c = Counter::new(3);
        for _ in 0..7 {
            c.tick(true, false);
        }
        assert_eq!(c.value().value(), 7);
        assert!(!c.overflowed());
        c.tick(true, false);
        assert_eq!(c.value().value(), 7);
        assert!(c.overflowed());
    }

    #[test]
    fn clear_resets_overflow() {
        let mut c = Counter::new(2);
        for _ in 0..5 {
            c.tick(true, false);
        }
        assert!(c.overflowed());
        c.tick(false, true);
        assert!(!c.overflowed());
        assert_eq!(c.value().value(), 0);
    }

    #[test]
    fn paper_counter_sizes() {
        // The paper sweeps 4..=7-bit counters; max counts 15..=127.
        for bits in 4..=7 {
            let c = Counter::new(bits);
            assert_eq!(c.max_count(), (1 << bits) - 1);
        }
    }

    #[test]
    fn display_shows_overflow() {
        let mut c = Counter::new(1);
        c.tick(true, false);
        c.tick(true, false);
        assert!(c.to_string().contains("ovf"));
    }
}
