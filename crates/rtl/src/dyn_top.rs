//! The on-chip **dynamic**-test top level: a fixed-point Goertzel bank
//! plus exact integer power accumulators, clocked one output code per
//! tick.
//!
//! §2 of the paper names Total Harmonic Distortion and introduced noise
//! power as the dynamic test parameters and argues for "simple digital
//! functions" on chip; a Goertzel resonator is exactly that — two
//! multipliers and an adder per tone. [`DynBistTop`] is the
//! gate-accurate counterpart of the behavioural
//! `bist_dsp::goertzel::GoertzelBank`: the same tone-bin plan (shared
//! via [`bist_dsp::goertzel::harmonic_plan`], so the two paths can never
//! disagree about harmonic aliasing), but with the per-sample arithmetic
//! in two's-complement fixed point, the way the silicon would build it.
//!
//! ## Datapath
//!
//! * Input conditioning: the `adc_bits`-wide code is centred to the
//!   signed **half-LSB** integer `v = 2·code + 1 − 2ⁿ` (an odd integer —
//!   no rounding anywhere on this path).
//! * Per tone bin, a resonator `s₀ = v + c·s₁ − s₂` with the coefficient
//!   `c = 2·cos ω` quantised to [`DynBistTop::FRAC_BITS`] fractional
//!   bits and the state registers in the same Q format. The multiplier
//!   output is truncated (arithmetic right shift — rounds toward −∞,
//!   like a hardware shifter).
//! * Exact integer side channels: `Σv` (DC) and `Σv²` (total power) in
//!   plain accumulators, and the sample counter for the completeness
//!   check. These carry **no** quantisation error at all.
//!
//! ## Sweep protocol
//!
//! Tick once per ADC sample with the output code; after the last sample
//! run [`DynBistTop::DRAIN_TICKS`] calls of [`DynBistTop::drain_tick`]
//! to flush the input pipeline register, then read
//! [`DynBistTop::report`]. The report exposes the accumulated powers as
//! `f64` — modelling the off-chip readout software that scans the
//! registers out and converts them; every quantisation effect is in the
//! fixed-point *accumulation*, bounded by the property tests in
//! `tests/dynamic_equivalence.rs`.

use crate::logic::Bus;
use bist_dsp::goertzel::{harmonic_plan, one_sided_factor};
use std::f64::consts::TAU;
use std::fmt;

/// Configuration of the dynamic-test top level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynBistTopConfig {
    /// Converter resolution in bits.
    pub adc_bits: u32,
    /// Samples in one coherent record (sets the resonator frequencies
    /// and the completeness expectation).
    pub record_len: usize,
    /// DFT bin of the fundamental within the record.
    pub fundamental_bin: usize,
    /// Harmonic orders `2..=harmonics+1` tracked for THD.
    pub harmonics: usize,
}

/// A configuration the fixed-point datapath cannot guarantee: some
/// resonator's worst-case excursion would not fit its 64-bit state
/// register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterOverflowError {
    /// The offending tone bin.
    pub bin: usize,
    /// The configuration's resolution.
    pub adc_bits: u32,
    /// The configuration's record length.
    pub record_len: usize,
}

impl fmt::Display for RegisterOverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resonator at bin {} would overflow its 64-bit register \
             (adc_bits {}, record_len {})",
            self.bin, self.adc_bits, self.record_len
        )
    }
}

impl std::error::Error for RegisterOverflowError {}

impl DynBistTopConfig {
    /// Register-width audit: a marginally-stable resonator driven by
    /// `|v| ≤ 2ⁿ` for `N` samples reaches at most `N·2ⁿ·min(N, 1/sin ω)`
    /// — the impulse-response envelope `|sin((k+1)ω)/sin ω|` is bounded
    /// both by `1/sin ω` and by `k+1`, so bins at or near DC/Nyquist
    /// grow polynomially, not unboundedly. Carried in Q·.FRAC with
    /// 2 bits of headroom below `i64::MAX`.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterOverflowError`] when any planned tone bin
    /// fails that budget (the behavioural judge `bist_core::dynamic`
    /// rejects such plans at configuration time, keeping the two
    /// backends symmetric).
    pub fn validate(&self) -> Result<(), RegisterOverflowError> {
        let plan = harmonic_plan(self.fundamental_bin, self.record_len, self.harmonics);
        for &bin in &plan.bins {
            let omega = TAU * bin as f64 / self.record_len as f64;
            let gain = (1.0 / omega.sin().abs().max(1e-12)).min(self.record_len as f64);
            let peak = self.record_len as f64
                * (1u64 << self.adc_bits) as f64
                * gain
                * (1u64 << DynBistTop::FRAC_BITS) as f64;
            if peak >= (i64::MAX / 4) as f64 {
                return Err(RegisterOverflowError {
                    bin,
                    adc_bits: self.adc_bits,
                    record_len: self.record_len,
                });
            }
        }
        Ok(())
    }
}

/// One fixed-point Goertzel resonator: Q-format state registers and the
/// quantised `2·cos ω` coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FixedResonator {
    /// `round(2·cos ω · 2^FRAC_BITS)`.
    coeff_q: i64,
    /// State registers in the same Q format as the input (`v · 2^FRAC`).
    s1: i64,
    s2: i64,
}

impl FixedResonator {
    fn new(bin: usize, n: usize) -> Self {
        let omega = TAU * bin as f64 / n as f64;
        FixedResonator {
            coeff_q: (2.0 * omega.cos() * (1i64 << DynBistTop::FRAC_BITS) as f64).round() as i64,
            s1: 0,
            s2: 0,
        }
    }

    /// Clocks the resonator with one centred sample (half-LSB integer).
    fn tick(&mut self, v: i64) {
        // Multiplier + arithmetic shifter: i64×i64 product in a double-
        // width (i128) intermediate, truncated back to the Q format.
        let prod = ((self.coeff_q as i128 * self.s1 as i128) >> DynBistTop::FRAC_BITS) as i64;
        let s0 = (v << DynBistTop::FRAC_BITS)
            .checked_add(prod)
            .and_then(|x| x.checked_sub(self.s2))
            .expect("resonator register overflow — widen FRAC_BITS budget");
        self.s2 = self.s1;
        self.s1 = s0;
    }

    /// `|X|²` from the final state, read out in `f64` (half-LSB²).
    fn power(&self) -> f64 {
        let scale = (1i64 << DynBistTop::FRAC_BITS) as f64;
        let s1 = self.s1 as f64 / scale;
        let s2 = self.s2 as f64 / scale;
        let coeff = self.coeff_q as f64 / scale;
        (s1 * s1 + s2 * s2 - coeff * s1 * s2).max(0.0)
    }

    fn reset(&mut self) {
        self.s1 = 0;
        self.s2 = 0;
    }
}

/// The sticky result registers of a finished dynamic self-test, as the
/// readout software sees them.
///
/// `sum_half_lsb` and `sum_sq_half_lsb2` are **exact** integers; the bin
/// powers carry the fixed-point accumulation error only. All powers are
/// one-sided and normalised by `n²`, i.e. directly comparable to
/// `bist_dsp::goertzel::TonePowers` fields in half-LSB² units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynBistReport {
    /// Samples processed through the datapath.
    pub samples: u64,
    /// Whether exactly `record_len` samples were processed.
    pub complete: bool,
    /// Exact Σv over the record (half-LSB).
    pub sum_half_lsb: i64,
    /// Exact Σv² over the record (half-LSB²).
    pub sum_sq_half_lsb2: u64,
    /// One-sided carrier-bin power, half-LSB².
    pub carrier_power: f64,
    /// Harmonic power summed per harmonic order (duplicated alias bins
    /// counted once per order), half-LSB².
    pub harmonic_power_by_order: f64,
    /// Harmonic power summed per distinct alias bin, half-LSB².
    pub harmonic_power_distinct: f64,
}

impl fmt::Display for DynBistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} samples, carrier {:.3e}, harmonics {:.3e}, ΣvΣv² {}/{}",
            if self.complete {
                "COMPLETE"
            } else {
                "INCOMPLETE"
            },
            self.samples,
            self.carrier_power,
            self.harmonic_power_by_order,
            self.sum_half_lsb,
            self.sum_sq_half_lsb2
        )
    }
}

/// The on-chip dynamic BIST: tick once per ADC sample with the output
/// code, drain, read the report.
#[derive(Debug, Clone, PartialEq)]
pub struct DynBistTop {
    config: DynBistTopConfig,
    /// Distinct tone bins (index 0 = fundamental) and their resonators.
    bins: Vec<usize>,
    resonators: Vec<FixedResonator>,
    /// Resonator index per harmonic order (see `harmonic_plan`).
    harmonic_slots: Vec<Option<usize>>,
    /// Input pipeline register (the MAC stage works one cycle behind the
    /// bus — drain flushes it).
    pipe: Option<i64>,
    sum: i64,
    sum_sq: u64,
    samples: u64,
}

impl DynBistTop {
    /// Fractional bits of the resonator Q format. 30 bits keep the
    /// coefficient error below 2⁻³¹ and the worst-case register
    /// excursion within `i64` for every configuration [`Self::new`]
    /// accepts.
    pub const FRAC_BITS: u32 = 30;

    /// Drain cycles after the last sample: one, for the input pipeline
    /// register in front of the MAC stage.
    pub const DRAIN_TICKS: u32 = 1;

    /// Builds the dynamic top level.
    ///
    /// # Panics
    ///
    /// Panics if the fundamental bin is not strictly between DC and
    /// Nyquist, or if the worst-case resonator excursion for this
    /// `(adc_bits, record_len)` point cannot be guaranteed to fit the
    /// 64-bit state registers.
    pub fn new(config: DynBistTopConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let plan = harmonic_plan(config.fundamental_bin, config.record_len, config.harmonics);
        let resonators = plan
            .bins
            .iter()
            .map(|&b| FixedResonator::new(b, config.record_len))
            .collect();
        DynBistTop {
            config,
            bins: plan.bins,
            resonators,
            harmonic_slots: plan.slots,
            pipe: None,
            sum: 0,
            sum_sq: 0,
            samples: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DynBistTopConfig {
        &self.config
    }

    /// Clocks the BIST with this sample's output code.
    ///
    /// # Panics
    ///
    /// Panics if `code` does not fit in `adc_bits`.
    pub fn tick(&mut self, code: u64) {
        let word = Bus::new(self.config.adc_bits, code);
        // Centre to the signed half-LSB integer 2·code + 1 − 2ⁿ.
        let v = (2 * word.value() as i64 + 1) - (1i64 << self.config.adc_bits);
        if let Some(prev) = self.pipe.replace(v) {
            self.process(prev);
        }
    }

    /// Drain cycle after the last sample: flushes the input pipeline so
    /// the final sample's MAC completes. Call [`Self::DRAIN_TICKS`]
    /// times before [`Self::report`].
    pub fn drain_tick(&mut self) {
        if let Some(v) = self.pipe.take() {
            self.process(v);
        }
    }

    fn process(&mut self, v: i64) {
        for r in &mut self.resonators {
            r.tick(v);
        }
        self.sum += v;
        self.sum_sq += (v * v) as u64;
        self.samples += 1;
    }

    /// The result registers as the readout software would scan them out
    /// (read after the drain cycles).
    pub fn report(&self) -> DynBistReport {
        let n = self.config.record_len;
        let n2 = (n * n) as f64;
        let bin_power =
            |slot: usize| one_sided_factor(self.bins[slot], n) * self.resonators[slot].power() / n2;
        let mut by_order = 0.0;
        for slot in self.harmonic_slots.iter().flatten() {
            by_order += bin_power(*slot);
        }
        let mut distinct = 0.0;
        for slot in 1..self.bins.len() {
            distinct += bin_power(slot);
        }
        DynBistReport {
            samples: self.samples,
            complete: self.samples == n as u64,
            sum_half_lsb: self.sum,
            sum_sq_half_lsb2: self.sum_sq,
            carrier_power: bin_power(0),
            harmonic_power_by_order: by_order,
            harmonic_power_distinct: distinct,
        }
    }

    /// Resets all state for a new record, in place: registers clear but
    /// nothing is reconstructed, so a backend caching one `DynBistTop`
    /// screens a whole batch without per-device heap allocations.
    pub fn reset(&mut self) {
        for r in &mut self.resonators {
            r.reset();
        }
        self.pipe = None;
        self.sum = 0;
        self.sum_sq = 0;
        self.samples = 0;
    }
}

impl fmt::Display for DynBistTop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dynamic BIST top: {}", self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DynBistTopConfig {
        DynBistTopConfig {
            adc_bits: 6,
            record_len: 1024,
            fundamental_bin: 101,
            harmonics: 5,
        }
    }

    /// Quantised full-scale sine codes at the configured coherent bin.
    fn sine_codes(cfg: &DynBistTopConfig, amplitude: f64) -> Vec<u64> {
        let levels = (1u64 << cfg.adc_bits) as f64;
        (0..cfg.record_len)
            .map(|i| {
                let v = amplitude
                    * (TAU * cfg.fundamental_bin as f64 * i as f64 / cfg.record_len as f64).sin();
                (((v + 1.0) / 2.0 * levels).floor()).clamp(0.0, levels - 1.0) as u64
            })
            .collect()
    }

    fn run(top: &mut DynBistTop, codes: &[u64]) -> DynBistReport {
        for &c in codes {
            top.tick(c);
        }
        for _ in 0..DynBistTop::DRAIN_TICKS {
            top.drain_tick();
        }
        top.report()
    }

    #[test]
    fn integer_side_channels_are_exact() {
        let cfg = config();
        let codes = sine_codes(&cfg, 1.01);
        let mut top = DynBistTop::new(cfg);
        let report = run(&mut top, &codes);
        assert!(report.complete);
        assert_eq!(report.samples, 1024);
        let expected_sum: i64 = codes.iter().map(|&c| 2 * c as i64 + 1 - 64).sum();
        let expected_sq: u64 = codes
            .iter()
            .map(|&c| {
                let v = 2 * c as i64 + 1 - 64;
                (v * v) as u64
            })
            .sum();
        assert_eq!(report.sum_half_lsb, expected_sum);
        assert_eq!(report.sum_sq_half_lsb2, expected_sq);
    }

    #[test]
    fn carrier_power_tracks_float_goertzel() {
        use bist_dsp::goertzel::GoertzelBank;
        let cfg = config();
        let codes = sine_codes(&cfg, 1.01);
        let mut top = DynBistTop::new(cfg);
        let report = run(&mut top, &codes);
        // The behavioural bank on the *same* half-LSB integers.
        let mut bank = GoertzelBank::new(cfg.fundamental_bin, cfg.record_len, cfg.harmonics);
        for &c in &codes {
            bank.push((2 * c as i64 + 1 - 64) as f64);
        }
        let p = bank.powers();
        let rel = (report.carrier_power - p.carrier).abs() / p.carrier;
        assert!(rel < 1e-9, "carrier relative error {rel}");
        let rel_h = (report.harmonic_power_by_order - p.harmonics_by_order).abs()
            / p.harmonics_by_order.max(1e-30);
        assert!(rel_h < 1e-4, "harmonic relative error {rel_h}");
    }

    #[test]
    fn incomplete_record_reported() {
        let cfg = config();
        let codes = sine_codes(&cfg, 1.0);
        let mut top = DynBistTop::new(cfg);
        let report = run(&mut top, &codes[..1000]);
        assert!(!report.complete);
        assert_eq!(report.samples, 1000);
    }

    #[test]
    fn drain_flushes_exactly_the_pipeline() {
        let cfg = config();
        let mut top = DynBistTop::new(cfg);
        top.tick(31);
        // The sample sits in the pipeline register until drained.
        assert_eq!(top.report().samples, 0);
        top.drain_tick();
        assert_eq!(top.report().samples, 1);
        // Extra drains are no-ops.
        top.drain_tick();
        assert_eq!(top.report().samples, 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let cfg = config();
        let codes = sine_codes(&cfg, 1.0);
        let mut top = DynBistTop::new(cfg);
        run(&mut top, &codes);
        top.reset();
        assert_eq!(top, DynBistTop::new(cfg));
        let again = run(&mut top, &codes);
        let fresh = run(&mut DynBistTop::new(cfg), &codes);
        assert_eq!(again, fresh);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_panics() {
        let mut top = DynBistTop::new(config());
        top.tick(64);
    }

    #[test]
    #[should_panic(expected = "strictly between DC and Nyquist")]
    fn dc_fundamental_panics() {
        DynBistTop::new(DynBistTopConfig {
            adc_bits: 6,
            record_len: 64,
            fundamental_bin: 0,
            harmonics: 2,
        });
    }

    #[test]
    #[should_panic(expected = "would overflow")]
    fn register_width_audit_rejects_huge_records() {
        // 2²⁴ samples of a 20-bit converter at a near-Nyquist alias bin
        // cannot be guaranteed to fit the 64-bit state registers.
        DynBistTop::new(DynBistTopConfig {
            adc_bits: 20,
            record_len: 1 << 24,
            fundamental_bin: (1 << 23) - 1,
            harmonics: 2,
        });
    }

    #[test]
    fn display_mentions_completeness() {
        let top = DynBistTop::new(config());
        assert!(top.to_string().contains("INCOMPLETE"));
    }
}
