//! The pass/fail window comparator of Figure 4.
//!
//! At each LSB transition the sample count for the just-finished code is
//! compared against the limits `i_min` and `i_max` derived from the DNL
//! specification (Eqs. 3–4): `i < i_min` means the code was too narrow,
//! `i > i_max` too wide. This is a purely combinational block.

use crate::logic::Bus;
use std::fmt;

/// Outcome of a window comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowVerdict {
    /// `i_min ≤ count ≤ i_max`.
    Pass,
    /// `count < i_min` — code too narrow (DNL below lower limit).
    TooNarrow,
    /// `count > i_max` — code too wide (DNL above upper limit).
    TooWide,
}

impl WindowVerdict {
    /// Whether the verdict is a pass.
    pub fn is_pass(&self) -> bool {
        matches!(self, WindowVerdict::Pass)
    }
}

impl fmt::Display for WindowVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WindowVerdict::Pass => "pass",
            WindowVerdict::TooNarrow => "too narrow",
            WindowVerdict::TooWide => "too wide",
        };
        f.write_str(s)
    }
}

/// Combinational window comparator with programmable limits.
///
/// The comparator itself accepts any limits; reachability of the
/// ceiling is the datapath's concern —
/// [`LsbProcessorConfig::validate`](crate::datapath::LsbProcessorConfig::validate)
/// rejects configurations whose `i_max` exceeds the counter capacity
/// `2^k` (the counter stores `count − 1`), so a saturated counter is
/// always genuinely "too wide".
///
/// # Examples
///
/// ```
/// use bist_rtl::window_compare::{WindowComparator, WindowVerdict};
///
/// // 4-bit counter, paper's stringent spec at Δs = 0.091 LSB:
/// // i_min = 6, i_max = 16 (the full capacity of a counter that
/// // stores count − 1).
/// let cmp = WindowComparator::new(6, 16);
/// assert_eq!(cmp.compare(5), WindowVerdict::TooNarrow);
/// assert_eq!(cmp.compare(10), WindowVerdict::Pass);
/// assert_eq!(cmp.compare(17), WindowVerdict::TooWide);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowComparator {
    i_min: u64,
    i_max: u64,
}

impl WindowComparator {
    /// Creates a comparator accepting counts in `i_min..=i_max`.
    ///
    /// # Panics
    ///
    /// Panics if `i_min > i_max`.
    pub fn new(i_min: u64, i_max: u64) -> Self {
        assert!(
            i_min <= i_max,
            "i_min ({i_min}) must not exceed i_max ({i_max})"
        );
        WindowComparator { i_min, i_max }
    }

    /// The lower limit.
    pub fn i_min(&self) -> u64 {
        self.i_min
    }

    /// The upper limit.
    pub fn i_max(&self) -> u64 {
        self.i_max
    }

    /// Classifies a raw count.
    pub fn compare(&self, count: u64) -> WindowVerdict {
        if count < self.i_min {
            WindowVerdict::TooNarrow
        } else if count > self.i_max {
            WindowVerdict::TooWide
        } else {
            WindowVerdict::Pass
        }
    }

    /// Classifies a counter value, treating a saturated/overflowed count
    /// as "too wide" (the width could not be measured but certainly
    /// exceeded the window).
    pub fn compare_bus(&self, count: Bus, overflowed: bool) -> WindowVerdict {
        if overflowed {
            WindowVerdict::TooWide
        } else {
            self.compare(count.value())
        }
    }
}

impl fmt::Display for WindowComparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window [{}, {}]", self.i_min, self.i_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_inclusive() {
        let c = WindowComparator::new(6, 16);
        assert_eq!(c.compare(6), WindowVerdict::Pass);
        assert_eq!(c.compare(16), WindowVerdict::Pass);
        assert_eq!(c.compare(5), WindowVerdict::TooNarrow);
        assert_eq!(c.compare(17), WindowVerdict::TooWide);
    }

    #[test]
    fn degenerate_window_single_count() {
        let c = WindowComparator::new(10, 10);
        assert!(c.compare(10).is_pass());
        assert!(!c.compare(9).is_pass());
        assert!(!c.compare(11).is_pass());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_window_panics() {
        WindowComparator::new(5, 4);
    }

    #[test]
    fn overflow_is_too_wide() {
        let c = WindowComparator::new(1, 100);
        let full = Bus::new(4, 15);
        assert_eq!(c.compare_bus(full, true), WindowVerdict::TooWide);
        assert_eq!(c.compare_bus(full, false), WindowVerdict::Pass);
    }

    #[test]
    fn zero_count_too_narrow_unless_allowed() {
        let c = WindowComparator::new(1, 5);
        assert_eq!(c.compare(0), WindowVerdict::TooNarrow);
        let c0 = WindowComparator::new(0, 5);
        assert!(c0.compare(0).is_pass());
    }

    #[test]
    fn accessors_and_display() {
        let c = WindowComparator::new(6, 16);
        assert_eq!(c.i_min(), 6);
        assert_eq!(c.i_max(), 16);
        assert_eq!(c.to_string(), "window [6, 16]");
        assert_eq!(WindowVerdict::TooNarrow.to_string(), "too narrow");
    }
}
